#!/usr/bin/env python3
"""Figure 5/6 at laptop scale: DDM vs DLB-DDM on real MD dynamics.

Runs the scaled Figure 5 workload (configurable panel and length), prints
both per-step time series and the Figure 6 breakdown (Tt, Fmax, Fave, Fmin),
and writes CSVs with the full series.

Run:  python examples/load_balancing_comparison.py [--panel a|b] [--steps N]

Panel b (m=2, N=1000) takes ~1 minute; panel a (m=4, N=8000) several minutes.
"""

import argparse
from pathlib import Path

import numpy as np

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import fig6_from_fig5
from repro.reporting import comparison_report, format_table, write_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--panel", choices=["a", "b"], default="b",
                        help="Figure 5 panel: a (m=4) or b (m=2)")
    parser.add_argument("--steps", type=int, default=None,
                        help="override the preset's step count")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=Path("examples/out"))
    args = parser.parse_args()

    preset_name = f"fig5{args.panel}-scaled"
    print(f"running {preset_name} (both curves) ...")
    fig5 = run_fig5(preset_name, steps=args.steps, seed=args.seed)
    fig6 = fig6_from_fig5(fig5)

    print()
    print(comparison_report(fig5.ddm, fig5.dlb,
                            title=f"Figure 5({args.panel}) -- {fig5.preset.description}"))

    growth_ddm, growth_dlb = fig5.growth()
    print(f"\nper-step time growth: DDM x{growth_ddm:.2f}, DLB-DDM x{growth_dlb:.2f}")
    print(f"gap (Fmax - Fmin) growth: DDM x{fig6.ddm.gap_growth():.2f}, "
          f"DLB-DDM x{fig6.dlb.gap_growth():.2f}")

    # Down-sampled Figure 6 table for the terminal.
    idx = np.unique(np.linspace(0, len(fig6.ddm.steps) - 1, 12).astype(int))
    rows = [
        (int(fig6.ddm.steps[i]),
         fig6.ddm.tt[i], fig6.ddm.fmax[i], fig6.ddm.fmin[i],
         fig6.dlb.tt[i], fig6.dlb.fmax[i], fig6.dlb.fmin[i])
        for i in idx
    ]
    print()
    print(format_table(
        ["step", "DDM Tt", "DDM Fmax", "DDM Fmin", "DLB Tt", "DLB Fmax", "DLB Fmin"],
        rows,
        title="Figure 6 series (both panels)",
    ))

    args.out.mkdir(parents=True, exist_ok=True)
    for label, panel in (("ddm", fig6.ddm), ("dlb", fig6.dlb)):
        path = write_csv(
            args.out / f"fig5{args.panel}_{label}.csv",
            {"step": panel.steps, "tt": panel.tt, "fmax": panel.fmax,
             "fave": panel.fave, "fmin": panel.fmin},
        )
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
