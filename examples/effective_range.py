#!/usr/bin/env python3
"""Figure 9/10 in miniature: where does DLB stop being able to balance?

Sweeps concentration quasi-statically (droplet nucleation + coarsening) at
several densities, detects each run's boundary point -- the step where
``Fmax - Fmin`` begins a sustained rise -- and compares the points against
the theoretical upper bound f(m, n) of Section 4.

Run:  python examples/effective_range.py [--m 3] [--pes 9] [--reps 4]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_boundary_experiment
from repro.theory.bounds import upper_bound
from repro.theory.fitting import fit_boundary_scale
from repro.reporting import format_table, write_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=3, help="pillar cross-section")
    parser.add_argument("--pes", type=int, default=9, help="PE count (square)")
    parser.add_argument("--reps", type=int, default=4, help="repetitions per density")
    parser.add_argument("--steps", type=int, default=110)
    parser.add_argument("--out", type=Path, default=Path("examples/out"))
    args = parser.parse_args()

    # --- one trajectory (Figure 9) ----------------------------------------
    print(f"Figure 9: one (n, C0/C) trajectory at m={args.m}, P={args.pes}")
    fig9 = run_fig9(m=args.m, n_pes=args.pes, n_steps=args.steps)
    trajectory = fig9.trajectory
    idx = np.unique(np.linspace(0, len(trajectory) - 1, 10).astype(int))
    print(format_table(
        ["record", "n", "C0/C"],
        [(int(trajectory.steps[i]), trajectory.n[i], trajectory.c0_ratio[i]) for i in idx],
    ))
    if fig9.boundary:
        b = fig9.boundary
        print(f"boundary point: step {b.step}, n = {b.n:.2f}, C0/C = {b.c0_ratio:.3f}")
    else:
        print("no divergence within this sweep (DLB held to the end)")

    # --- boundary points across densities (Figure 10) ---------------------
    densities = (0.128, 0.256, 0.384, 0.512)
    print(f"\nFigure 10 panel: m={args.m}, P={args.pes}, "
          f"{args.reps} repetitions per density")
    rows = []
    points = []
    for density in densities:
        exp = run_boundary_experiment(
            args.m, args.pes, density, n_repetitions=args.reps, n_steps=args.steps
        )
        if exp.mean_point is None:
            rows.append((density, "-", "-", "-", "-", f"{exp.n_failed} failed"))
            continue
        p = exp.mean_point
        theory = float(upper_bound(args.m, p.n))
        rows.append((density, f"{p.n:.2f}", f"{p.c0_ratio:.3f}", f"{theory:.3f}",
                     f"{p.c0_ratio / theory:.2f}", f"{len(exp.points)}/{args.reps} ok"))
        points.append(p)
    print(format_table(
        ["density", "n", "C0/C (E)", "f(m,n) (T)", "E/T", "runs"],
        rows,
    ))

    if points:
        fit = fit_boundary_scale(points, args.m)
        print(f"\nleast-squares experimental boundary: "
              f"E(n) = {fit.ratio:.2f} * f({args.m}, n)  "
              f"(rms residual {fit.residual_rms:.3f})")
        print("every experimental point lies BELOW the theoretical bound, "
              "as the paper reports.")

    args.out.mkdir(parents=True, exist_ok=True)
    path = write_csv(
        args.out / f"fig9_trajectory_m{args.m}.csv",
        {"step": trajectory.steps, "n": trajectory.n, "c0_ratio": trajectory.c0_ratio},
    )
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
