#!/usr/bin/env python3
"""Serial Lennard-Jones molecular dynamics of supercooled Argon.

Exercises the MD substrate on its own: velocity-form Verlet, linked cells,
the paper's physical conditions (T* = 0.722, rho* = 0.256), and checks the
two properties any MD code must have -- energy conservation without a
thermostat and temperature control with one. Also maps the reduced results
back to SI units for Argon.

Run:  python examples/serial_argon_md.py
"""

from repro import MDConfig, SerialSimulation
from repro.md.observables import pressure
from repro.reporting import format_table
from repro.units import ARGON


def main() -> None:
    n_particles = 512

    # --- NVE: no thermostat; total energy must be conserved ---------------
    nve = SerialSimulation(
        MDConfig(n_particles=n_particles, density=0.256, rescale_interval=0), seed=1
    )
    result = nve.run(400, record_interval=20)
    energies = result.total_energies
    drift = abs(energies[-1] - energies[0]) / abs(energies[0])
    print(f"NVE run: {n_particles} particles, 400 steps")
    print(f"  total energy {energies[0]:.4f} -> {energies[-1]:.4f} "
          f"(relative drift {drift:.2e})")

    # --- NVT-ish: the paper's velocity rescaling every 50 steps -----------
    nvt = SerialSimulation(MDConfig(n_particles=n_particles, density=0.256), seed=2)
    result = nvt.run(400, record_interval=20)
    temps = result.temperatures
    print(f"\nThermostatted run (rescale every 50 steps):")
    print(f"  temperature mean {temps.mean():.4f} (target 0.722), "
          f"std {temps.std():.4f}")

    # --- Observables table, reduced and SI --------------------------------
    obs = nvt.observe()
    last_force = nvt._last_force
    p_reduced = pressure(nvt.system, last_force.virial)
    rows = [
        ("temperature", f"{obs.temperature:.4f} (reduced)",
         f"{ARGON.temperature_from_reduced(obs.temperature):.1f} K"),
        ("potential energy / N", f"{obs.potential_energy / n_particles:.4f} eps",
         f"{obs.potential_energy / n_particles * ARGON.epsilon_j:.3e} J"),
        ("pressure", f"{p_reduced:.4f} (reduced)",
         f"{p_reduced * ARGON.epsilon_j / ARGON.sigma_m ** 3:.3e} Pa"),
        ("time simulated", "0.4 tau",
         f"{ARGON.time_from_reduced(0.4) * 1e12:.2f} ps"),
    ]
    print()
    print(format_table(["observable", "reduced units", "Argon SI"], rows))

    # --- concentration indicator ------------------------------------------
    from repro.md.celllist import CellList

    cl = CellList(nvt.system.box_length, max(3, int(nvt.system.box_length // 2.5)))
    counts = cl.counts(nvt.system.positions)
    print(f"\ncell occupancy: max {counts.max()}, empty cells "
          f"{(counts == 0).sum()} / {counts.size}")
    print("(the supercooled gas empties cells slowly; the parallel "
          "experiments accelerate this -- see examples/load_balancing_comparison.py)")


if __name__ == "__main__":
    main()
