#!/usr/bin/env python3
"""Quickstart: run a small DLB-DDM simulation and inspect the results.

Builds the paper's supercooled-gas workload at laptop scale, runs it twice --
once as plain domain decomposition (DDM), once with the permanent-cell
dynamic load balancer (DLB-DDM) -- and prints the comparison the paper's
Figure 5 makes: DDM's per-step time grows as the gas concentrates, DLB-DDM's
stays nearly flat.

Run:  python examples/quickstart.py
"""

from repro import ParallelMDRunner, RunConfig, get_preset
from repro.reporting import comparison_report, series_preview


def main() -> None:
    preset = get_preset("bench-m2")
    print(f"Workload: {preset.description}")
    print(f"  N = {preset.n_particles} particles, P = {preset.n_pes} PEs, "
          f"m = {preset.m}, steps = {preset.steps}")
    print()

    results = {}
    for dlb_enabled in (False, True):
        label = "DLB-DDM" if dlb_enabled else "DDM"
        print(f"running {label} ...")
        runner = ParallelMDRunner(
            preset.simulation_config(dlb_enabled=dlb_enabled),
            RunConfig(steps=preset.steps, seed=7, record_interval=10),
        )
        results[label] = runner.run()

    print()
    print(comparison_report(results["DDM"], results["DLB-DDM"]))
    print()
    print(series_preview(results["DDM"].steps, results["DDM"].tt, label="DDM Tt [s]"))
    print()
    print(series_preview(results["DLB-DDM"].steps, results["DLB-DDM"].tt,
                         label="DLB-DDM Tt [s]"))


if __name__ == "__main__":
    main()
