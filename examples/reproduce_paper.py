#!/usr/bin/env python3
"""Reproduce every table and figure of the paper's evaluation in one run.

Drives the same experiment code as the benchmark suite, at a selectable
scale, and prints a consolidated report (plus CSVs under examples/out/):

  Figure 5(a)/(b)  -- execution time per step, DDM vs DLB-DDM
  Figure 6(a)/(b)  -- Tt / Fmax / Fave / Fmin breakdown
  Figure 9         -- (n, C0/C) trajectory
  Figure 10(a)-(c) -- theoretical bound vs experimental boundary points
  Table 1          -- E/T ratios across machine sizes

Run:  python examples/reproduce_paper.py --scale quick    (~5 min)
      python examples/reproduce_paper.py --scale medium   (~30 min)
      python examples/reproduce_paper.py --scale paper    (hours)
"""

import argparse
import time
from pathlib import Path

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import fig6_from_fig5
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.table1 import run_table1
from repro.reporting import format_table, write_csv
from repro.theory.bounds import upper_bound
from repro.units import PAPER_RHO_SWEEP

SCALES = {
    # (fig5 steps b/a, fig9 steps, fig10 n_pes, reps, sweep steps, table1 PEs)
    "quick": dict(fig5b=1500, fig5a=700, fig9=90, pes=9, reps=3, steps=100,
                  table1_pes=(9, 16)),
    "medium": dict(fig5b=2500, fig5a=2200, fig9=130, pes=16, reps=5, steps=120,
                   table1_pes=(9, 16, 25)),
    "paper": dict(fig5b=10000, fig5a=10000, fig9=150, pes=36, reps=10, steps=130,
                  table1_pes=(16, 36, 64)),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--out", type=Path, default=Path("examples/out"))
    args = parser.parse_args()
    p = SCALES[args.scale]
    args.out.mkdir(parents=True, exist_ok=True)
    started = time.time()

    # ---- Figure 5 / 6 -----------------------------------------------------
    for panel, preset, steps in (("b", "bench-m2", p["fig5b"]),
                                 ("a", "bench-m4", p["fig5a"])):
        print(f"\n=== Figure 5({panel}) / 6: {preset}, {steps} steps "
              f"[{time.time() - started:.0f}s] ===")
        fig5 = run_fig5(preset, steps=steps, seed=7, record_interval=20)
        fig6 = fig6_from_fig5(fig5)
        g_ddm, g_dlb = fig5.growth()
        print(f"  Tt growth: DDM x{g_ddm:.2f}  DLB-DDM x{g_dlb:.2f}")
        k = max(1, len(fig5.ddm.spread) // 8)
        print(f"  late Fmax-Fmin: DDM {fig5.ddm.spread[-k:].mean():.2e}  "
              f"DLB-DDM {fig5.dlb.spread[-k:].mean():.2e}")
        for label, run in (("ddm", fig6.ddm), ("dlb", fig6.dlb)):
            write_csv(args.out / f"fig5{panel}_{label}.csv",
                      {"step": run.steps, "tt": run.tt, "fmax": run.fmax,
                       "fave": run.fave, "fmin": run.fmin})

    # ---- Figure 9 ----------------------------------------------------------
    print(f"\n=== Figure 9: trajectory [{time.time() - started:.0f}s] ===")
    fig9 = run_fig9(m=3, n_pes=p["pes"], n_steps=p["fig9"], seed=1)
    trajectory = fig9.trajectory
    print(f"  {len(trajectory)} records; C0/C "
          f"{trajectory.c0_ratio[0]:.3f} -> {trajectory.c0_ratio[-1]:.3f}")
    if fig9.boundary:
        print(f"  boundary at step {fig9.boundary.step}: "
              f"n={fig9.boundary.n:.2f}, C0/C={fig9.boundary.c0_ratio:.3f}")
    write_csv(args.out / "fig9.csv",
              {"step": trajectory.steps, "n": trajectory.n,
               "c0_ratio": trajectory.c0_ratio})

    # ---- Figure 10 ---------------------------------------------------------
    print(f"\n=== Figure 10: effective ranges (P={p['pes']}) "
          f"[{time.time() - started:.0f}s] ===")
    fig10 = run_fig10(m_values=(2, 3, 4), densities=PAPER_RHO_SWEEP,
                      n_pes=p["pes"], n_repetitions=p["reps"], n_steps=p["steps"])
    for m, panel in sorted(fig10.panels.items()):
        rows = []
        for e in panel.experiments:
            if e.mean_point is None:
                rows.append((e.geometry.density, "-", "-", "-", "-"))
                continue
            pt = e.mean_point
            theory = float(upper_bound(m, pt.n))
            rows.append((e.geometry.density, f"{pt.n:.2f}", f"{pt.c0_ratio:.3f}",
                         f"{theory:.3f}", f"{pt.c0_ratio / theory:.2f}"))
        title = f"Figure 10, m={m}"
        if panel.fit:
            title += f"  (fitted E/T = {panel.fit.ratio:.2f})"
        print(format_table(["rho", "n", "C0/C (E)", "f(m,n) (T)", "E/T"],
                           rows, title=title))

    # ---- Table 1 -----------------------------------------------------------
    print(f"\n=== Table 1: E/T across machines [{time.time() - started:.0f}s] ===")
    table1 = run_table1(m_values=(2, 3, 4), pe_counts=p["table1_pes"],
                        n_repetitions=p["reps"], n_steps=p["steps"])
    rows = []
    for m in (2, 3, 4):
        rows.append([f"m={m}"] + [f"{v:.2f}" if v is not None else "-"
                                  for v in table1.row(m)])
    print(format_table(["", *[f"{q} PEs" for q in p["table1_pes"]]], rows))
    csv = {"m": [], "n_pes": [], "et": []}
    for (m, q), v in sorted(table1.ratios.items()):
        csv["m"].append(m); csv["n_pes"].append(q); csv["et"].append(v)
    if csv["m"]:
        write_csv(args.out / "table1.csv", csv)

    print(f"\nall experiments done in {time.time() - started:.0f}s; "
          f"CSVs under {args.out}/")


if __name__ == "__main__":
    main()
