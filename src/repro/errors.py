"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent.

    Examples: a cell size smaller than the cutoff, a PE count that is not a
    perfect square for a square-pillar decomposition, or a cell grid that does
    not divide evenly among PEs.
    """


class GeometryError(ReproError):
    """Raised for invalid spatial inputs (out-of-box positions, bad cell ids)."""


class DecompositionError(ReproError):
    """Raised when a cell-to-PE assignment violates a structural invariant."""


class ProtocolError(ReproError):
    """Raised when the DLB redistribution protocol is asked to do an illegal
    move (e.g. migrating a permanent cell or lending a cell that is already
    lent out)."""


class SimulationError(ReproError):
    """Raised when a simulation reaches a non-physical state (NaN forces,
    particle escaping the periodic box after wrapping, ...)."""


class AnalysisError(ReproError):
    """Raised by the theory/analysis layer (e.g. boundary detection on a
    series that never diverges, fitting with no data points)."""


class CampaignError(ReproError):
    """Raised by the campaign engine (unknown campaign name, malformed run
    spec, store schema mismatch, or a run exceeding its time budget)."""


class FaultInjectionError(ReproError):
    """Raised for an invalid fault plan (negative probability, unknown fault
    field, a rule naming a PE outside the machine) or a fault the injector
    cannot apply to the requested hook."""


class InvariantViolation(ReproError):
    """Raised by the invariant auditor when a structural guarantee of the
    permanent-cell protocol is broken at runtime: a permanent cell away from
    home, a cell with zero or two holders, a borrowed-cell ledger that does
    not round-trip, particle-count loss, or non-finite forces."""


class EngineError(ReproError):
    """Raised by the execution-engine layer (unknown engine name, a worker
    process that died or raised, an engine bound to a mismatched workload,
    or use of an engine after :meth:`close`)."""


class ServiceError(ReproError):
    """Raised by the simulation service layer (malformed HTTP request, a
    route that does not exist, a worker pool used after shutdown, or a
    submission the queue cannot accept)."""


class SchemaError(ReproError):
    """Raised when a persisted artifact (result JSON, campaign payload,
    checkpoint metadata) declares a schema version this library cannot
    read — i.e. an unknown major version."""


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, found, or restored (no
    snapshot in the directory, corrupt/truncated file, or a snapshot taken
    under an incompatible configuration)."""
