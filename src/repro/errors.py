"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent.

    Examples: a cell size smaller than the cutoff, a PE count that is not a
    perfect square for a square-pillar decomposition, or a cell grid that does
    not divide evenly among PEs.
    """


class GeometryError(ReproError):
    """Raised for invalid spatial inputs (out-of-box positions, bad cell ids)."""


class DecompositionError(ReproError):
    """Raised when a cell-to-PE assignment violates a structural invariant."""


class ProtocolError(ReproError):
    """Raised when the DLB redistribution protocol is asked to do an illegal
    move (e.g. migrating a permanent cell or lending a cell that is already
    lent out)."""


class SimulationError(ReproError):
    """Raised when a simulation reaches a non-physical state (NaN forces,
    particle escaping the periodic box after wrapping, ...)."""


class AnalysisError(ReproError):
    """Raised by the theory/analysis layer (e.g. boundary detection on a
    series that never diverges, fitting with no data points)."""


class CampaignError(ReproError):
    """Raised by the campaign engine (unknown campaign name, malformed run
    spec, store schema mismatch, or a run exceeding its time budget)."""
