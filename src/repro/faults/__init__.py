"""Deterministic fault injection, invariant auditing and chaos tooling.

The paper's central claim is structural: permanent cells make the DLB
protocol safe under *any* redistribution sequence. This package exercises
that claim under adversity instead of assuming perfect hardware:

``repro.faults.plan``
    Declarative, seeded :class:`FaultPlan`: per-PE slowdowns and jitter,
    transient stalls, per-tag message delay/loss/duplication, and dropped or
    stale neighbour timing reports.
``repro.faults.injector``
    :class:`FaultInjector`: a *stateless* (counter-free) deterministic
    interpreter of a plan. Every perturbation is derived by hashing
    ``(seed, kind, step, endpoints)``, so two runs with the same plan -- or
    a run killed and resumed from a checkpoint -- observe byte-identical
    faults.
``repro.faults.audit``
    :class:`InvariantAuditor`: validates the paper's structural invariants
    at a configurable cadence and either raises
    :class:`~repro.errors.InvariantViolation` or logs to metrics.
``repro.faults.chaos``
    Process-level chaos: :class:`Fleet` / :class:`ServerProcess` launch real
    ``repro serve`` children over one store and SIGKILL the run's owner, so
    the fleet tests prove failover with genuine process death rather than
    simulated faults.

Checkpoint/restart lives in :mod:`repro.core.checkpoint`; the CLI surface is
``repro run --faults PLAN --audit-invariants --checkpoint-every N``.
"""

from .audit import InvariantAuditor
from .chaos import Fleet, ServerProcess, free_port, owner_pid
from .injector import FaultInjector, MessagePerturbation
from .plan import (
    FaultPlan,
    MessageFaultRule,
    SlowdownRule,
    StallRule,
    TimingFaultRule,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "Fleet",
    "InvariantAuditor",
    "MessageFaultRule",
    "MessagePerturbation",
    "ServerProcess",
    "SlowdownRule",
    "StallRule",
    "TimingFaultRule",
    "free_port",
    "owner_pid",
]
