"""Declarative, seeded fault plans.

A :class:`FaultPlan` is pure data: what goes wrong, where, how often. The
:class:`~repro.faults.injector.FaultInjector` interprets it deterministically
from the plan's seed, so a plan + seed fully determines every perturbation of
a run (and of its resumed-from-checkpoint continuation).

Plans round-trip through JSON (``FaultPlan.from_dict`` / ``to_dict`` /
``from_json_file``), which is what the CLI's ``--faults PLAN.json`` loads.
Validation is strict: unknown keys and out-of-range values raise
:class:`~repro.errors.FaultInjectionError` at construction time, never deep
inside a simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from ..errors import FaultInjectionError


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must be a probability in [0, 1], got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise FaultInjectionError(f"{name} must be non-negative, got {value}")


def _from_dict(cls, data: dict, label: str):
    """Build a rule dataclass from a dict, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise FaultInjectionError(f"{label} must be an object, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise FaultInjectionError(
            f"unknown {label} field(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    return cls(**data)


@dataclass(frozen=True)
class SlowdownRule:
    """A sustained per-PE compute slowdown (OS jitter victim, slow node).

    ``pe`` is the flat PE id; every compute second on it costs ``factor``
    seconds while ``start <= step < stop`` (``stop=None`` means forever).
    """

    pe: int
    factor: float
    start: int = 0
    stop: int | None = None

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise FaultInjectionError(f"slowdown pe must be non-negative, got {self.pe}")
        if self.factor <= 0:
            raise FaultInjectionError(f"slowdown factor must be positive, got {self.factor}")
        if self.start < 0:
            raise FaultInjectionError(f"slowdown start must be non-negative, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise FaultInjectionError(
                f"slowdown stop {self.stop} must exceed start {self.start}"
            )

    def active(self, step: int) -> bool:
        """Whether this rule perturbs ``step``."""
        return self.start <= step and (self.stop is None or step < self.stop)


@dataclass(frozen=True)
class StallRule:
    """A transient stall: one PE loses ``extra`` seconds per step for a
    window of ``duration`` steps starting at ``step`` (preemption, page
    fault storm, checkpointing daemon)."""

    pe: int
    step: int
    duration: int = 1
    extra: float = 0.0

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise FaultInjectionError(f"stall pe must be non-negative, got {self.pe}")
        if self.step < 0:
            raise FaultInjectionError(f"stall step must be non-negative, got {self.step}")
        if self.duration <= 0:
            raise FaultInjectionError(f"stall duration must be positive, got {self.duration}")
        _check_non_negative("stall extra", self.extra)

    def active(self, step: int) -> bool:
        """Whether this rule perturbs ``step``."""
        return self.step <= step < self.step + self.duration


@dataclass(frozen=True)
class MessageFaultRule:
    """Per-tag message faults (halo exchange, cell migration, bookkeeping).

    Attributes
    ----------
    tag:
        Traffic tag the rule applies to (``"halo"``, ``"migration"``,
        ``"dlb-bookkeeping"``); ``"*"`` matches every tag.
    loss:
        Probability a message is lost and must be retransmitted. The cost
        model charges each lost attempt plus ``loss_timeout`` seconds of
        detection time, then the successful resend (reliable delivery: the
        protocol never observes a hole, only the delay).
    loss_timeout:
        Seconds to detect one lost message before retransmitting.
    delay_prob / delay:
        Probability of, and magnitude (seconds, exponential mean) of, an
        extra queueing delay on top of the postal-model time.
    duplicate:
        Probability a message is delivered twice (and charged twice).
    """

    tag: str = "*"
    loss: float = 0.0
    loss_timeout: float = 1e-4
    delay_prob: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0

    def __post_init__(self) -> None:
        if not self.tag:
            raise FaultInjectionError("message fault tag must be non-empty ('*' for all)")
        _check_probability("message loss", self.loss)
        _check_probability("message delay_prob", self.delay_prob)
        _check_probability("message duplicate", self.duplicate)
        _check_non_negative("message loss_timeout", self.loss_timeout)
        _check_non_negative("message delay", self.delay)


@dataclass(frozen=True)
class TimingFaultRule:
    """Faults on the DLB protocol's step-1 timing reports.

    ``drop`` is the per-report probability that a PE's last-step time never
    reaches one of its 8 neighbours that step. The receiver then falls back
    to the last value it saw, up to ``max_staleness`` steps old; beyond that
    the neighbour is treated as unknown and excluded from the fastest-PE
    selection (the safe no-move degradation).
    """

    drop: float = 0.0
    max_staleness: int = 3

    def __post_init__(self) -> None:
        _check_probability("timing drop", self.drop)
        if self.max_staleness < 0:
            raise FaultInjectionError(
                f"timing max_staleness must be non-negative, got {self.max_staleness}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic chaos scenario.

    Attributes
    ----------
    seed:
        Root seed of every random draw the injector makes. Same plan + seed
        => byte-identical perturbations, including across checkpoint/resume.
    slowdowns:
        Sustained per-PE compute slowdown rules.
    jitter:
        Relative log-normal compute jitter applied to every PE every step
        (sigma of the underlying normal; 0 disables).
    stalls:
        Transient stall rules.
    messages:
        Per-tag message fault rules (first matching rule wins; an exact tag
        match beats the ``"*"`` wildcard).
    timing:
        Faults on the DLB timing reports (None = reports always delivered).
    """

    seed: int = 0
    slowdowns: tuple[SlowdownRule, ...] = ()
    jitter: float = 0.0
    stalls: tuple[StallRule, ...] = ()
    messages: tuple[MessageFaultRule, ...] = ()
    timing: TimingFaultRule | None = None

    def __post_init__(self) -> None:
        # numpy's SeedSequence rejects negative entries, so catch a bad seed
        # at plan load instead of deep inside the first random draw.
        _check_non_negative("seed", self.seed)
        _check_non_negative("jitter", self.jitter)
        # Normalise list inputs (e.g. straight from JSON) to tuples.
        for name in ("slowdowns", "stalls", "messages"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def is_null(self) -> bool:
        """True when the plan perturbs nothing at all."""
        return (
            not self.slowdowns
            and self.jitter == 0.0
            and not self.stalls
            and not self.messages
            and (self.timing is None or self.timing.drop == 0.0)
        )

    def max_pe(self) -> int:
        """Largest PE id named by any rule (-1 when none name a PE)."""
        pes = [r.pe for r in self.slowdowns] + [r.pe for r in self.stalls]
        return max(pes) if pes else -1

    def message_rule(self, tag: str) -> MessageFaultRule | None:
        """The rule governing ``tag`` (exact match first, then ``"*"``)."""
        wildcard = None
        for rule in self.messages:
            if rule.tag == tag:
                return rule
            if rule.tag == "*":
                wildcard = wildcard or rule
        return wildcard

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        out: dict = {"seed": self.seed}
        if self.slowdowns:
            out["slowdowns"] = [asdict(r) for r in self.slowdowns]
        if self.jitter:
            out["jitter"] = self.jitter
        if self.stalls:
            out["stalls"] = [asdict(r) for r in self.stalls]
        if self.messages:
            out["messages"] = [asdict(r) for r in self.messages]
        if self.timing is not None:
            out["timing"] = asdict(self.timing)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from a (JSON-decoded) dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise FaultInjectionError(
                f"fault plan must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultInjectionError(
                f"unknown fault plan field(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs: dict = {}
        if "seed" in data:
            kwargs["seed"] = int(data["seed"])
        if "jitter" in data:
            kwargs["jitter"] = float(data["jitter"])
        if "slowdowns" in data:
            kwargs["slowdowns"] = tuple(
                _from_dict(SlowdownRule, r, "slowdown") for r in data["slowdowns"]
            )
        if "stalls" in data:
            kwargs["stalls"] = tuple(
                _from_dict(StallRule, r, "stall") for r in data["stalls"]
            )
        if "messages" in data:
            kwargs["messages"] = tuple(
                _from_dict(MessageFaultRule, r, "message fault") for r in data["messages"]
            )
        if "timing" in data and data["timing"] is not None:
            kwargs["timing"] = _from_dict(TimingFaultRule, data["timing"], "timing fault")
        return cls(**kwargs)

    @classmethod
    def from_json_file(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--faults`` argument)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise FaultInjectionError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
