"""Process-level chaos harness: real server fleets, real SIGKILLs.

Where :mod:`repro.faults.plan` injects faults *inside* one simulation, this
module injects them *between* processes: it launches genuine
``python -m repro serve`` instances against one shared run store, lets a
test (or an operator rehearsing failover) kill the instance that owns a
run, and exposes enough introspection — per-instance clients, owner lookup
by store lease, captured logs — to prove the survivors finish the work
with a byte-identical digest and exactly one stored payload.

Nothing here is test-framework specific; ``tests/service/fleet/`` and the
CI ``fleet-smoke`` job drive the same classes.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from ..errors import ServiceError

__all__ = ["Fleet", "ServerProcess", "free_port", "owner_pid"]

#: Seconds :meth:`ServerProcess.wait_ready` polls before giving up.
READY_TIMEOUT_S = 30.0


def free_port() -> int:
    """An OS-assigned free TCP port (racy by nature, fine for tests)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def owner_pid(instance_id: str) -> int | None:
    """The OS pid embedded in a store instance id (``host-pid-nonce``)."""
    parts = instance_id.split("-")
    if len(parts) < 3:
        return None
    try:
        return int(parts[-2])
    except ValueError:
        return None


class ServerProcess:
    """One real ``repro serve`` child process.

    The child is started with ``-u`` (unbuffered) and its stdout+stderr
    captured to a log file, so a failed chaos test can show what the
    instance was doing when it died.
    """

    def __init__(
        self,
        store_dir: str | Path,
        port: int | None = None,
        *,
        workers: int = 1,
        lease_ttl: float = 2.0,
        reap_interval: float | None = 0.5,
        max_attempts: int = 3,
        checkpoint_every: int = 0,
        run_timeout: float | None = None,
        retries: int = 0,
        log_dir: str | Path | None = None,
        name: str = "server",
        extra_args: list[str] | None = None,
    ) -> None:
        self.store_dir = str(store_dir)
        self.port = port if port is not None else free_port()
        self.name = name
        self.log_path = (
            Path(log_dir) / f"{name}.log" if log_dir is not None else None
        )
        self._log_handle = None
        args = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--host", "127.0.0.1",
            "--port", str(self.port),
            "--dir", self.store_dir,
            "--workers", str(workers),
            "--retries", str(retries),
            "--lease-ttl", str(lease_ttl),
            "--max-attempts", str(max_attempts),
        ]
        if reap_interval is not None:
            args += ["--reap-interval", str(reap_interval)]
        if checkpoint_every:
            args += ["--checkpoint-every", str(checkpoint_every)]
        if run_timeout is not None:
            args += ["--timeout", str(run_timeout)]
        if extra_args:
            args += list(extra_args)
        self.args = args
        self.process: subprocess.Popen | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServerProcess":
        if self.process is not None:
            raise ServiceError(f"{self.name} already started")
        stdout = subprocess.DEVNULL
        if self.log_path is not None:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_handle = open(self.log_path, "ab")
            stdout = self._log_handle
        env = dict(os.environ)
        env.setdefault(
            "PYTHONPATH", str(Path(__file__).resolve().parents[2])
        )
        self.process = subprocess.Popen(
            self.args, stdout=stdout, stderr=subprocess.STDOUT, env=env
        )
        return self

    @property
    def pid(self) -> int:
        if self.process is None:
            raise ServiceError(f"{self.name} is not running")
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def client(self):
        from ..service.client import ServiceClient

        return ServiceClient(port=self.port)

    def wait_ready(self, timeout: float = READY_TIMEOUT_S) -> None:
        """Block until ``/healthz`` answers (the listener is up)."""
        deadline = time.monotonic() + timeout
        client = self.client()
        while time.monotonic() < deadline:
            if not self.alive:
                raise ServiceError(
                    f"{self.name} exited with {self.process.returncode} "
                    f"before becoming ready{self._log_tail()}"
                )
            try:
                if client.health().ok:
                    return
            except OSError:
                pass
            time.sleep(0.05)
        raise ServiceError(
            f"{self.name} not ready after {timeout}s{self._log_tail()}"
        )

    # -- chaos -------------------------------------------------------------

    def sigkill(self) -> None:
        """Kill the instance without any chance to clean up (the chaos move)."""
        if self.process is None:
            raise ServiceError(f"{self.name} is not running")
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)

    def terminate(self, timeout: float = 15.0) -> int | None:
        """Graceful SIGTERM shutdown; returns the exit code."""
        if self.process is None:
            return None
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
        return self.process.returncode

    def logs(self) -> str:
        if self.log_path is None or not self.log_path.exists():
            return ""
        return self.log_path.read_text(errors="replace")

    def _log_tail(self, lines: int = 20) -> str:
        tail = "\n".join(self.logs().splitlines()[-lines:])
        return f"\nlast log lines:\n{tail}" if tail else ""


class Fleet:
    """N server processes over one shared run store."""

    def __init__(
        self,
        store_dir: str | Path,
        size: int = 2,
        log_dir: str | Path | None = None,
        **server_kwargs,
    ) -> None:
        self.store_dir = str(store_dir)
        self.servers = [
            ServerProcess(
                store_dir, log_dir=log_dir, name=f"server-{i}", **server_kwargs
            )
            for i in range(size)
        ]

    def start(self) -> "Fleet":
        for server in self.servers:
            server.start()
        for server in self.servers:
            server.wait_ready()
        return self

    def stop(self) -> None:
        for server in self.servers:
            server.terminate()

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def alive(self) -> list[ServerProcess]:
        return [server for server in self.servers if server.alive]

    def owner_of(self, run_hash: str) -> ServerProcess | None:
        """The fleet member whose lease currently covers ``run_hash``.

        Resolved through the store: the lease's owner id embeds the OS pid
        (``host-pid-nonce``), which is matched against the children.
        """
        from ..campaign.store import RunStore

        with RunStore(self.store_dir, takeover=False) as store:
            stored = store.get(run_hash)
        if stored is None or stored.owner is None:
            return None
        pid = owner_pid(stored.owner)
        if pid is None:
            return None
        for server in self.servers:
            if server.process is not None and server.process.pid == pid:
                return server
        return None

    def wait_for_owner(
        self, run_hash: str, timeout: float = 15.0
    ) -> ServerProcess:
        """Block until some instance holds the run's lease; returns it."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            owner = self.owner_of(run_hash)
            if owner is not None:
                return owner
            time.sleep(0.05)
        raise ServiceError(
            f"no fleet member took ownership of {run_hash} within {timeout}s"
        )

    def kill_owner(self, run_hash: str, timeout: float = 15.0) -> ServerProcess:
        """SIGKILL the instance owning ``run_hash``; returns the victim."""
        owner = self.wait_for_owner(run_hash, timeout=timeout)
        owner.sigkill()
        return owner
