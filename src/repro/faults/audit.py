"""Runtime auditing of the permanent-cell protocol's structural invariants.

The paper's correctness argument rests on invariants the code can check
cheaply at runtime: permanent cells never migrate; every cell has exactly
one holder; lent cells sit only at a lower (Case 1) neighbour of their home;
Case 3 only returns what Case 1 lent; particles are conserved; forces stay
finite. The :class:`InvariantAuditor` validates these at a configurable
cadence and, per policy, either raises
:class:`~repro.errors.InvariantViolation` (fail fast -- the chaos suite's
mode) or records violations to a :class:`~repro.obs.metrics.MetricsRegistry`
counter and a logger (observe-and-continue -- production-style).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..errors import ConfigurationError, InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..decomp.assignment import CellAssignment
    from ..dlb.protocol import Move
    from ..obs.metrics import MetricsRegistry

logger = logging.getLogger("repro.faults")

#: Keep at most this many violation messages for post-mortem inspection.
_MAX_KEPT = 64


class InvariantAuditor:
    """Validates structural invariants of a running simulation.

    Parameters
    ----------
    assignment:
        The live :class:`~repro.decomp.assignment.CellAssignment` to audit.
    n_particles:
        Expected total particle count (None disables conservation checks).
    every:
        Audit cadence in steps (1 = every step). :meth:`maybe_audit` is a
        no-op on other steps; :meth:`audit` always runs.
    policy:
        ``"raise"`` raises :class:`InvariantViolation` on the first failing
        audit; ``"log"`` records to ``metrics``/the ``repro.faults`` logger
        and keeps going.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; violations
        increment ``repro_invariant_violations_total{invariant=...}`` and
        audits increment ``repro_invariant_audits_total``.
    events:
        Optional :class:`~repro.obs.events.EventLog`; every executed audit
        is recorded as an ``audit`` event carrying its problem count.
    strategy:
        The active balancer strategy name. The permanent-cell invariants
        (permanent pinning, Case 1 adjacency, the Case 1/3 move ledger) are
        *protocol* properties, so they are enforced only for
        ``"permanent"`` (and vacuously hold for ``"none"``); unconstrained
        rivals (``"diffusion"``, ``"sfc"``) keep the strategy-independent
        checks -- ownership totals, holder range, particle conservation,
        finite forces.
    """

    #: Strategies whose moves must obey the paper's protocol invariants.
    _PROTOCOL_STRATEGIES = ("permanent", "none")

    def __init__(
        self,
        assignment: "CellAssignment",
        n_particles: int | None = None,
        every: int = 1,
        policy: str = "raise",
        metrics: "MetricsRegistry | None" = None,
        events=None,
        strategy: str = "permanent",
    ) -> None:
        if every <= 0:
            raise ConfigurationError(f"audit cadence must be positive, got {every}")
        if policy not in ("raise", "log"):
            raise ConfigurationError(
                f"audit policy must be 'raise' or 'log', got {policy!r}"
            )
        self.assignment = assignment
        self.n_particles = None if n_particles is None else int(n_particles)
        self.every = int(every)
        self.policy = policy
        self.metrics = metrics
        self.events = events
        self.strategy = strategy
        self.audits = 0
        self.violation_count = 0
        self.violations: list[str] = []

    @property
    def _protocol_checks(self) -> bool:
        return self.strategy in self._PROTOCOL_STRATEGIES

    # -- individual checks ---------------------------------------------------

    def _check_assignment(self) -> list[str]:
        """Permanent pinning, single ownership, and Case 1 adjacency."""
        out: list[str] = []
        a = self.assignment
        if a.holder.shape != a.home.shape:
            out.append("holder/home maps have diverged in shape")
            return out
        if self._protocol_checks:
            bad = np.flatnonzero(a.permanent & (a.holder != a.home))
            if bad.size:
                out.append(
                    f"permanent cell(s) {bad[:8].tolist()} migrated away from home"
                )
        outside = np.flatnonzero((a.holder < 0) | (a.holder >= a.n_pes))
        if outside.size:
            out.append(
                f"cell(s) {outside[:8].tolist()} held by a PE outside the machine"
            )
        # The holder map structurally gives each cell exactly one holder;
        # what can break is the total: every cell must be accounted exactly
        # once across the per-PE counts.
        counts = a.cell_counts_per_pe()
        if int(counts.sum()) != a.n_cells:
            out.append(
                f"cells owned {int(counts.sum())} times in total, expected {a.n_cells}"
            )
        if self._protocol_checks:
            for cell in np.flatnonzero(a.holder != a.home):
                home = int(a.home[cell])
                holder = int(a.holder[cell])
                if holder not in a.lower_neighbors(home):
                    out.append(
                        f"cell {int(cell)} (home {home}) lent to non-lower PE {holder}"
                    )
        return out

    def _check_moves(self, moves: Iterable["Move"]) -> list[str]:
        """The ledger round-trips: Case 3 only returns what Case 1 lent.

        A protocol property: only enforced for the ``permanent`` strategy
        (rival strategies reuse the Move kinds as plain lend/return labels).
        """
        if not self._protocol_checks:
            return []
        out: list[str] = []
        a = self.assignment
        for move in moves:
            home = int(a.home[move.cell])
            kind = getattr(move.kind, "value", move.kind)
            if kind == "send_own":
                if move.src != home:
                    out.append(
                        f"Case 1 move of cell {move.cell} from PE {move.src}, "
                        f"but its home is PE {home} (only homes lend)"
                    )
                if move.dst not in a.lower_neighbors(home):
                    out.append(
                        f"Case 1 move of cell {move.cell} to PE {move.dst}, "
                        f"not a lower neighbour of home PE {home}"
                    )
            elif kind == "return_borrowed":
                if move.dst != home:
                    out.append(
                        f"Case 3 return of cell {move.cell} to PE {move.dst}, "
                        f"but Case 1 lent it from home PE {home}"
                    )
                if move.src not in a.lower_neighbors(home):
                    out.append(
                        f"Case 3 return of cell {move.cell} from PE {move.src}, "
                        f"which home PE {home} never lent to"
                    )
            else:
                out.append(f"move of cell {move.cell} has unknown kind {kind!r}")
        return out

    def _check_particles(self, counts: np.ndarray) -> list[str]:
        """Particle-count conservation across the cell grid."""
        out: list[str] = []
        if np.any(np.asarray(counts) < 0):
            out.append("negative particle count in a cell")
        if self.n_particles is not None:
            total = int(np.asarray(counts).sum())
            if total != self.n_particles:
                out.append(
                    f"particle count {total} != initial {self.n_particles} "
                    "(particles lost or duplicated)"
                )
        return out

    @staticmethod
    def _check_forces(forces: np.ndarray) -> list[str]:
        """Forces must stay finite."""
        if not np.all(np.isfinite(forces)):
            bad = int(np.count_nonzero(~np.isfinite(forces).all(axis=-1)))
            return [f"non-finite forces on {bad} particle(s)"]
        return []

    # -- driving -------------------------------------------------------------

    def audit(
        self,
        step: int,
        counts: np.ndarray | None = None,
        forces: np.ndarray | None = None,
        moves: Iterable["Move"] | None = None,
    ) -> list[str]:
        """Run every applicable check; returns (and handles) the violations."""
        problems = self._check_assignment()
        if moves:
            problems.extend(self._check_moves(moves))
        if counts is not None:
            problems.extend(self._check_particles(counts))
        if forces is not None:
            problems.extend(self._check_forces(forces))
        self.audits += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_invariant_audits_total", "Invariant audits executed"
            ).inc()
        if self.events is not None:
            self.events.emit(
                step, "audit",
                ok=not problems,
                problems=len(problems),
                messages=problems[:8],
            )
        if problems:
            self._handle(step, problems)
        return problems

    def maybe_audit(
        self,
        step: int,
        counts: np.ndarray | None = None,
        forces: np.ndarray | None = None,
        moves: Iterable["Move"] | None = None,
    ) -> list[str] | None:
        """Audit when the cadence says so; None when this step is skipped."""
        if step % self.every != 0:
            return None
        return self.audit(step, counts=counts, forces=forces, moves=moves)

    def _handle(self, step: int, problems: list[str]) -> None:
        self.violation_count += len(problems)
        for message in problems:
            if len(self.violations) < _MAX_KEPT:
                self.violations.append(f"step {step}: {message}")
        if self.metrics is not None:
            counter = self.metrics.counter(
                "repro_invariant_violations_total", "Structural invariant violations"
            )
            for _ in problems:
                counter.inc()
        if self.policy == "raise":
            raise InvariantViolation(
                f"step {step}: {len(problems)} invariant violation(s): "
                + "; ".join(problems)
            )
        for message in problems:
            logger.warning("invariant violation at step %d: %s", step, message)

    def summary(self) -> dict:
        """Small JSON-friendly report for CLI output and result files."""
        return {
            "audits": self.audits,
            "violations": self.violation_count,
            "messages": list(self.violations),
        }
