"""Deterministic, stateless interpretation of a fault plan.

The injector carries **no mutable random state**: every draw comes from a
fresh :class:`numpy.random.Generator` seeded by
``(plan.seed, KIND, step, endpoints...)``. Consequences:

* two runs with the same plan observe byte-identical perturbations;
* a run killed at step ``k`` and resumed from a checkpoint replays the
  exact faults an uninterrupted run would have seen (no RNG cursor to
  restore);
* the centralised balancer and the SPMD protocol, consulting the injector
  with the same ``(step, src, dst)``, observe the *same* dropped reports --
  which is what keeps the two implementations provably equivalent under
  faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from zlib import crc32

import numpy as np

from ..errors import FaultInjectionError
from .plan import FaultPlan

#: Stream discriminators: independent sub-streams of the plan's seed.
_KIND_COMPUTE = 1
_KIND_MESSAGE = 2
_KIND_TIMING = 3

#: Cap on consecutive retransmissions of one lost message (keeps a
#: pathological loss=1.0 plan terminating instead of looping forever).
MAX_RETRANSMITS = 5


def _rng(*key: int) -> np.random.Generator:
    """A fresh generator for one (seed, kind, ...) event key."""
    return np.random.default_rng(key)


@dataclass(frozen=True)
class MessagePerturbation:
    """What the injector did to one message (or aggregated exchange).

    Attributes
    ----------
    copies:
        Deliveries that occur (1 normal, 2 duplicated).
    retransmits:
        Lost attempts that preceded the successful delivery.
    delay:
        Extra queueing delay in seconds.
    loss_timeout:
        Seconds charged per lost attempt for loss detection.
    """

    copies: int = 1
    retransmits: int = 0
    delay: float = 0.0
    loss_timeout: float = 0.0

    @property
    def attempts(self) -> int:
        """Wire transmissions: copies delivered plus lost attempts."""
        return self.copies + self.retransmits

    def perturbed_time(self, base: float) -> float:
        """Charged duration for a message whose fault-free cost is ``base``."""
        return self.attempts * base + self.retransmits * self.loss_timeout + self.delay


#: The identity perturbation (shared: the no-fault fast path allocates nothing).
NO_PERTURBATION = MessagePerturbation()


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to a virtual machine.

    Parameters
    ----------
    plan:
        The scenario to interpret.
    n_pes:
        Number of PEs of the machine the plan is applied to; rules naming a
        PE outside the machine are rejected here.
    """

    def __init__(self, plan: FaultPlan, n_pes: int) -> None:
        if n_pes <= 0:
            raise FaultInjectionError(f"n_pes must be positive, got {n_pes}")
        if plan.max_pe() >= n_pes:
            raise FaultInjectionError(
                f"fault plan names PE {plan.max_pe()} but the machine has "
                f"{n_pes} PEs"
            )
        self.plan = plan
        self.n_pes = int(n_pes)
        self._seed = int(plan.seed)
        #: Nullable :class:`~repro.obs.events.EventLog`; when set, every
        #: perturbation that actually happened is recorded as a
        #: ``fault.message`` / ``fault.compute`` event. The injector itself
        #: stays stateless — emission is a side record, never an input.
        self.events = None
        # Per-step memo of the timing-report delivery matrix (pure function
        # of the step; cached so P^2 draws happen once per step, not per PE).
        self._report_step: int | None = None
        self._report_matrix: np.ndarray | None = None

    # -- compute faults ----------------------------------------------------

    def compute_factors(self, step: int) -> np.ndarray:
        """Per-PE multiplicative slowdown of compute time at ``step``."""
        factors = np.ones(self.n_pes, dtype=np.float64)
        for rule in self.plan.slowdowns:
            if rule.active(step):
                factors[rule.pe] *= rule.factor
        if self.plan.jitter > 0.0:
            noise = _rng(self._seed, _KIND_COMPUTE, step).normal(
                0.0, self.plan.jitter, self.n_pes
            )
            factors *= np.exp(noise)
        return factors

    def compute_extra(self, step: int) -> np.ndarray | None:
        """Per-PE additive stall seconds at ``step`` (None when no stall)."""
        extra = None
        for rule in self.plan.stalls:
            if rule.active(step):
                if extra is None:
                    extra = np.zeros(self.n_pes, dtype=np.float64)
                extra[rule.pe] += rule.extra
        return extra

    def perturb_compute(
        self, step: int, *component_arrays: np.ndarray
    ) -> tuple[np.ndarray, ...]:
        """Scale compute-time arrays by the step's factors, adding stalls.

        Every array is scaled by the same per-PE factor; the stall seconds
        are added to the *first* array only (a stall delays the PE once, not
        once per accounting bucket). Inputs are not mutated.
        """
        factors = self.compute_factors(step)
        out = tuple(np.asarray(a, dtype=np.float64) * factors for a in component_arrays)
        extra = self.compute_extra(step)
        if extra is not None and out:
            out[0][...] += extra
            if self.events is not None:
                stalled = np.flatnonzero(extra > 0.0)
                self.events.emit(
                    step, "fault.compute",
                    pes=stalled.tolist(),
                    extra_seconds=extra[stalled].tolist(),
                )
        return out

    # -- message faults ----------------------------------------------------

    def perturb_message(
        self, step: int, src: int, dst: int, tag: str
    ) -> MessagePerturbation:
        """Loss/delay/duplication outcome for one message (or aggregated
        exchange) between ``src`` and ``dst`` carrying ``tag`` at ``step``."""
        rule = self.plan.message_rule(tag)
        if rule is None:
            return NO_PERTURBATION
        rng = _rng(self._seed, _KIND_MESSAGE, step, src, dst, crc32(tag.encode()))
        # Fixed draw order: loss chain, delay gate, delay size, duplicate.
        retransmits = 0
        while retransmits < MAX_RETRANSMITS and rng.random() < rule.loss:
            retransmits += 1
        delay = 0.0
        if rng.random() < rule.delay_prob:
            delay = float(rng.exponential(rule.delay)) if rule.delay > 0 else 0.0
        copies = 2 if rng.random() < rule.duplicate else 1
        if retransmits == 0 and delay == 0.0 and copies == 1:
            return NO_PERTURBATION
        if self.events is not None:
            self.events.emit(
                step, "fault.message",
                src=int(src), dst=int(dst), tag=tag,
                retransmits=retransmits, delay=delay, copies=copies,
            )
        return MessagePerturbation(
            copies=copies,
            retransmits=retransmits,
            delay=delay,
            loss_timeout=rule.loss_timeout,
        )

    # -- timing-report faults ----------------------------------------------

    @property
    def max_staleness(self) -> int:
        """Steps a last-known timing report stays usable (plan's setting)."""
        timing = self.plan.timing
        return timing.max_staleness if timing is not None else 0

    def _delivery_matrix(self, step: int) -> np.ndarray:
        if self._report_step != step:
            timing = self.plan.timing
            if timing is None or timing.drop == 0.0:
                matrix = np.ones((self.n_pes, self.n_pes), dtype=bool)
            else:
                draws = _rng(self._seed, _KIND_TIMING, step).random(
                    (self.n_pes, self.n_pes)
                )
                matrix = draws >= timing.drop
            self._report_step = step
            self._report_matrix = matrix
        assert self._report_matrix is not None
        return self._report_matrix

    def report_delivered(self, step: int, src: int, dst: int) -> bool:
        """Whether ``src``'s timing report reaches ``dst`` at ``step``.

        Self-reports always arrive (a PE knows its own time). Both the
        centralised balancer and the SPMD protocol consult this with the
        same arguments, so they observe identical drop patterns.
        """
        if src == dst:
            return True
        return bool(self._delivery_matrix(step)[src, dst])
