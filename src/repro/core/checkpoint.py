"""Crash-safe checkpoint/restart for long runs.

A checkpoint is a single pickle file written atomically: serialise to a
temporary file in the target directory, ``fsync`` it, then ``os.replace``
onto the final name (and ``fsync`` the directory so the rename itself is
durable). A run killed mid-write therefore leaves either the previous
complete snapshot or a stray ``.tmp`` file -- never a truncated checkpoint
under the real name.

Restores are bit-identical: the snapshot carries every piece of mutable
runner state (system arrays, holder map, balancer ledger and timing view,
pending migration charges, Verlet cache including its cached pair *order*,
simulated clocks, partial records), and the fault injector is stateless by
construction, so replaying steps ``k+1..n`` after a restore at ``k``
produces the same bytes an uninterrupted run would have.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from ..errors import CheckpointError, SchemaError
from .results import RESULT_SCHEMA_VERSION, check_schema_version

#: Bump when the snapshot layout changes incompatibly.
CHECKPOINT_VERSION = 1

_PREFIX = "ckpt-"
_SUFFIX = ".pkl"
_TMP_PREFIX = ".tmp-"


def _fsync_dir(directory: Path) -> None:
    """Make a rename in ``directory`` durable (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointManager:
    """Writes and restores atomic snapshots in one directory.

    Parameters
    ----------
    directory:
        Where snapshots live (created on first save).
    every:
        Cadence in steps for :meth:`due` (0 disables cadence-driven saves;
        explicit :meth:`save` calls still work).
    keep:
        Completed snapshots to retain; older ones are pruned after each
        successful save (at least 1).
    """

    def __init__(self, directory: str | Path, every: int = 0, keep: int = 2) -> None:
        if every < 0:
            raise CheckpointError(f"checkpoint cadence must be >= 0, got {every}")
        if keep < 1:
            raise CheckpointError(f"must keep at least one checkpoint, got {keep}")
        self.directory = Path(directory)
        self.every = int(every)
        self.keep = int(keep)

    # -- cadence -------------------------------------------------------------

    def due(self, step: int) -> bool:
        """Whether the cadence asks for a snapshot after ``step``."""
        return self.every > 0 and step > 0 and step % self.every == 0

    # -- writing -------------------------------------------------------------

    def _path(self, step: int) -> Path:
        return self.directory / f"{_PREFIX}{step:09d}{_SUFFIX}"

    def save(self, step: int, state: dict) -> Path:
        """Atomically write one snapshot; returns its path."""
        if step < 0:
            raise CheckpointError(f"checkpoint step must be >= 0, got {step}")
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self._path(step)
        tmp = self.directory / f"{_TMP_PREFIX}{final.name}.{os.getpid()}"
        payload = {
            "version": CHECKPOINT_VERSION,
            "schema_version": RESULT_SCHEMA_VERSION,
            "step": int(step),
            "state": state,
        }
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint {final}: {exc}") from exc
        _fsync_dir(self.directory)
        self._prune()
        return final

    def _prune(self) -> None:
        for stale in self.snapshots()[: -self.keep]:
            stale.unlink(missing_ok=True)
        for tmp in self.directory.glob(f"{_TMP_PREFIX}{_PREFIX}*"):
            tmp.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------------

    def snapshots(self) -> list[Path]:
        """Completed snapshot files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))

    def latest_step(self) -> int | None:
        """Step of the newest snapshot (None when the directory is empty)."""
        snaps = self.snapshots()
        if not snaps:
            return None
        return int(snaps[-1].name[len(_PREFIX) : -len(_SUFFIX)])

    def clear(self) -> int:
        """Delete every snapshot (and stray tmp file); returns the count.

        Called once a run's result is durably committed -- the snapshots
        have served their purpose and a later re-execution of the same hash
        (after eviction) must start from step 0, not a stale state.
        """
        removed = 0
        for path in self.snapshots():
            path.unlink(missing_ok=True)
            removed += 1
        if self.directory.is_dir():
            for tmp in self.directory.glob(f"{_TMP_PREFIX}{_PREFIX}*"):
                tmp.unlink(missing_ok=True)
        return removed

    def load_latest(self) -> dict:
        """The newest readable snapshot payload (``version``/``step``/``state``).

        A corrupt newest file (e.g. disk full during a pre-atomic-rename
        filesystem glitch) falls back to the next older snapshot; only when
        no snapshot is loadable does this raise :class:`CheckpointError`.
        """
        snaps = self.snapshots()
        if not snaps:
            raise CheckpointError(f"no checkpoint found in {self.directory}")
        errors: list[str] = []
        for path in reversed(snaps):
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
                errors.append(f"{path.name}: {exc}")
                continue
            if not isinstance(payload, dict) or "state" not in payload:
                errors.append(f"{path.name}: not a checkpoint payload")
                continue
            if payload.get("version") != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint {path} has version {payload.get('version')}, "
                    f"this build reads version {CHECKPOINT_VERSION}"
                )
            if "schema_version" in payload:
                try:
                    check_schema_version(payload, source=f"checkpoint {path}")
                except SchemaError as exc:
                    raise CheckpointError(str(exc)) from exc
            return payload
        raise CheckpointError(
            f"no readable checkpoint in {self.directory}: " + "; ".join(errors)
        )
