"""Exact decomposed force computation: each PE computes its own cells.

This is the real DDM force pass (as opposed to the cost model's estimate of
it): every PE gathers its owned cells plus the adjacent ghost cells, finds
local pairs, and accumulates forces on its owned particles only. Merging the
per-PE contributions must reproduce the global kernel bit-for-bit modulo
summation order -- the integration tests assert exactly that -- and the
per-PE wall-clock times drive the runner's ``"measured"`` mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import DecompositionError
from ..md.celllist import FULL_STENCIL, CellList
from ..md.kernels import KernelBackend, NumpyKernel
from ..md.neighbors import pairs_kdtree
from ..md.pbc import minimum_image_inplace
from ..md.potential import LennardJones
from ..md.system import ParticleSystem
from ..obs.profiler import profiled


@dataclass(frozen=True)
class DecomposedForceResult:
    """Merged output of a decomposed force pass.

    Attributes
    ----------
    forces:
        ``(N, 3)`` merged forces (identical to the global kernel's).
    potential_energy:
        Total pair energy (each pair counted once).
    per_pe_seconds:
        ``(P,)`` wall-clock seconds each PE's pass took on this host.
    per_pe_pairs:
        ``(P,)`` pairs each PE evaluated (owned-owned and owned-ghost).
    virial:
        Pair virial ``sum(f_ij . r_ij)`` with the same 1.0/0.5 ownership
        weights as the energy (so the merged value matches the global
        kernel's modulo summation order).
    """

    forces: np.ndarray
    potential_energy: float
    per_pe_seconds: np.ndarray
    per_pe_pairs: np.ndarray
    virial: float = 0.0


@dataclass(frozen=True)
class PEForceSlice:
    """One PE's share of a decomposed force pass.

    The slice is self-contained: ``forces[k]`` is the full force on particle
    ``owned_ids[k]`` (every pair touching an owned particle is evaluated by
    its owner), so merging slices is plain disjoint assignment into the
    global array. Scalars carry the ownership-weighted energy/virial
    contributions; summing them over PEs in rank order reproduces
    :func:`decomposed_force_pass` bit-for-bit — which is what lets an
    execution engine compute slices in any process and still produce a
    digest-identical run (see ``repro.engine``).
    """

    pe: int
    owned_ids: np.ndarray
    forces: np.ndarray
    energy: float
    virial: float
    n_pairs: int
    seconds: float


_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_FORCES = np.empty((0, 3), dtype=np.float64)

#: Shared fallback kernel tier for callers that do not pass one.
_REFERENCE_KERNEL = NumpyKernel()


def pe_force_slice(
    pe: int,
    positions: np.ndarray,
    box_length: float,
    cell_list: CellList,
    cell_owner: np.ndarray,
    particle_cell: np.ndarray,
    particle_owner: np.ndarray,
    potential: LennardJones,
    kernel: KernelBackend | None = None,
) -> PEForceSlice:
    """Compute PE ``pe``'s force slice from shared read-only inputs.

    This is the kernel both execution engines run: a sequential engine calls
    it for every PE in rank order in one process, a multiprocess engine calls
    it for its shard of PEs in a worker. All inputs are plain arrays so the
    call is cheap to make against shared memory.

    ``kernel`` picks the force-kernel tier for the per-pair math (default:
    the full-list NumPy reference). The ownership weighting and the Newton-3
    scatter stay here, and every tier's :meth:`pair_terms` preserves the
    original pair order, so the slice -- and hence the engine's run digest --
    is bit-identical across the ``numpy`` and ``half`` tiers.
    """
    start = time.perf_counter()
    owned_cells = cell_owner == pe
    local_cells = owned_cells | ghost_cell_mask(cell_owner, cell_list, pe)
    local_ids = np.flatnonzero(local_cells[particle_cell])
    if len(local_ids) == 0:
        return PEForceSlice(
            pe, _EMPTY_IDS, _EMPTY_FORCES, 0.0, 0.0, 0,
            time.perf_counter() - start,
        )
    local_pos = positions[local_ids]
    owned_local = particle_owner[local_ids] == pe

    pairs = pairs_kdtree(local_pos, box_length, potential.cutoff)
    if len(pairs):
        keep = owned_local[pairs[:, 0]] | owned_local[pairs[:, 1]]
        pairs = pairs[keep]
    owned_ids = local_ids[owned_local]
    if len(pairs) == 0:
        return PEForceSlice(
            pe, owned_ids, np.zeros((len(owned_ids), 3), dtype=np.float64),
            0.0, 0.0, 0, time.perf_counter() - start,
        )

    backend = _REFERENCE_KERNEL if kernel is None else kernel
    i, j, fvec, energies, f_over_r, r_sq = backend.pair_terms(
        local_pos, pairs, box_length, potential
    )
    n_local = len(local_ids)
    local_forces = np.zeros((n_local, 3))
    for axis in range(3):
        local_forces[:, axis] += np.bincount(i, weights=fvec[:, axis], minlength=n_local)
        local_forces[:, axis] -= np.bincount(j, weights=fvec[:, axis], minlength=n_local)
    # Energy/virial: both-owned pairs belong fully to this PE; mixed pairs
    # are shared half-half with the neighbouring owner.
    weight = np.where(owned_local[i] & owned_local[j], 1.0, 0.5)
    energy = float(np.dot(weight, energies))
    virial = float(np.dot(weight * f_over_r, r_sq))
    return PEForceSlice(
        pe=pe,
        owned_ids=owned_ids,
        # Only the owned endpoints' forces are this PE's responsibility;
        # a mixed pair's other half is computed by the ghost's owner.
        forces=local_forces[owned_local],
        energy=energy,
        virial=virial,
        n_pairs=int(len(pairs)),
        seconds=time.perf_counter() - start,
    )


def ghost_cell_mask(cell_owner: np.ndarray, cell_list: CellList, pe: int) -> np.ndarray:
    """Boolean mask of the cells PE ``pe`` imports (adjacent, not owned)."""
    owned = cell_owner == pe
    ghost = np.zeros_like(owned)
    for offset in FULL_STENCIL:
        if offset == (0, 0, 0):
            continue
        neighbor = cell_list.neighbor_ids(offset)
        ghost |= owned[neighbor]
    ghost &= ~owned
    return ghost


@profiled("ddm.decomposed_force_pass")
def decomposed_force_pass(
    system: ParticleSystem,
    cell_list: CellList,
    cell_owner: np.ndarray,
    n_pes: int,
    potential: LennardJones,
    candidate_pairs: np.ndarray | None = None,
) -> DecomposedForceResult:
    """Run the per-PE force computation and merge the results.

    When ``candidate_pairs`` is given (e.g. a cached Verlet list covering
    every interaction of the current positions), the per-PE kd-tree searches
    are skipped entirely: each PE's pairs are sliced out of the shared list,
    which is how a real DDM code reuses one neighbour structure across the
    decomposition.
    """
    if cell_owner.shape != (cell_list.n_cells,):
        raise DecompositionError(
            f"owner map shape {cell_owner.shape} != ({cell_list.n_cells},)"
        )
    if candidate_pairs is not None:
        return _decomposed_from_candidates(
            system, cell_list, cell_owner, n_pes, potential, candidate_pairs
        )
    positions = system.positions
    box = system.box_length
    particle_cell = cell_list.assign(positions)
    particle_owner = cell_owner[particle_cell]

    forces = np.zeros_like(positions)
    total_energy = 0.0
    total_virial = 0.0
    per_pe_seconds = np.zeros(n_pes, dtype=np.float64)
    per_pe_pairs = np.zeros(n_pes, dtype=np.int64)

    for pe in range(n_pes):
        piece = pe_force_slice(
            pe, positions, box, cell_list, cell_owner,
            particle_cell, particle_owner, potential,
        )
        if len(piece.owned_ids):
            forces[piece.owned_ids] += piece.forces
        total_energy += piece.energy
        total_virial += piece.virial
        per_pe_seconds[pe] = piece.seconds
        per_pe_pairs[pe] = piece.n_pairs

    return DecomposedForceResult(
        forces=forces,
        potential_energy=total_energy,
        per_pe_seconds=per_pe_seconds,
        per_pe_pairs=per_pe_pairs,
        virial=total_virial,
    )


def _decomposed_from_candidates(
    system: ParticleSystem,
    cell_list: CellList,
    cell_owner: np.ndarray,
    n_pes: int,
    potential: LennardJones,
    candidate_pairs: np.ndarray,
) -> DecomposedForceResult:
    """Per-PE pass driven by a shared (possibly skinned) candidate pair list."""
    positions = system.positions
    box = system.box_length
    particle_cell = cell_list.assign(positions)
    particle_owner = cell_owner[particle_cell]

    forces = np.zeros_like(positions)
    total_energy = 0.0
    total_virial = 0.0
    per_pe_seconds = np.zeros(n_pes, dtype=np.float64)
    per_pe_pairs = np.zeros(n_pes, dtype=np.int64)

    if len(candidate_pairs) == 0:
        return DecomposedForceResult(forces, 0.0, per_pe_seconds, per_pe_pairs)

    # The candidate list may carry skin pairs beyond the cut-off; filter once.
    i_all = candidate_pairs[:, 0]
    j_all = candidate_pairs[:, 1]
    delta_all = positions[i_all] - positions[j_all]
    minimum_image_inplace(delta_all, box)
    r_sq_all = np.einsum("ij,ij->i", delta_all, delta_all)
    within = r_sq_all < potential.cutoff_sq
    i_all, j_all = i_all[within], j_all[within]
    delta_all, r_sq_all = delta_all[within], r_sq_all[within]
    owner_i = particle_owner[i_all]
    owner_j = particle_owner[j_all]

    for pe in range(n_pes):
        start = time.perf_counter()
        touches = (owner_i == pe) | (owner_j == pe)
        per_pe_pairs[pe] = int(touches.sum())
        if per_pe_pairs[pe]:
            i, j = i_all[touches], j_all[touches]
            delta, r_sq = delta_all[touches], r_sq_all[touches]
            energies, f_over_r = potential.energy_force_sq(r_sq)
            fvec = delta * f_over_r[:, None]
            i_owned = owner_i[touches] == pe
            j_owned = owner_j[touches] == pe
            n = len(positions)
            # Only the owned endpoints' forces are this PE's responsibility;
            # a mixed pair's other half is computed by the ghost's owner.
            for axis in range(3):
                forces[:, axis] += np.bincount(
                    i[i_owned], weights=fvec[i_owned, axis], minlength=n
                )
                forces[:, axis] -= np.bincount(
                    j[j_owned], weights=fvec[j_owned, axis], minlength=n
                )
            # Energy: both-owned pairs belong fully to this PE; mixed pairs are
            # shared half-half with the neighbouring owner.
            weight = np.where(i_owned & j_owned, 1.0, 0.5)
            total_energy += float(np.dot(weight, energies))
            total_virial += float(np.dot(weight * f_over_r, r_sq))
        per_pe_seconds[pe] = time.perf_counter() - start

    return DecomposedForceResult(
        forces=forces,
        potential_energy=total_energy,
        per_pe_seconds=per_pe_seconds,
        per_pe_pairs=per_pe_pairs,
        virial=total_virial,
    )
