"""Exact decomposed force computation: each PE computes its own cells.

This is the real DDM force pass (as opposed to the cost model's estimate of
it): every PE gathers its owned cells plus the adjacent ghost cells, finds
local pairs, and accumulates forces on its owned particles only. Merging the
per-PE contributions must reproduce the global kernel bit-for-bit modulo
summation order -- the integration tests assert exactly that -- and the
per-PE wall-clock times drive the runner's ``"measured"`` mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import DecompositionError
from ..md.celllist import FULL_STENCIL, CellList
from ..md.neighbors import pairs_kdtree
from ..md.pbc import minimum_image_inplace
from ..md.potential import LennardJones
from ..md.system import ParticleSystem
from ..obs.profiler import profiled


@dataclass(frozen=True)
class DecomposedForceResult:
    """Merged output of a decomposed force pass.

    Attributes
    ----------
    forces:
        ``(N, 3)`` merged forces (identical to the global kernel's).
    potential_energy:
        Total pair energy (each pair counted once).
    per_pe_seconds:
        ``(P,)`` wall-clock seconds each PE's pass took on this host.
    per_pe_pairs:
        ``(P,)`` pairs each PE evaluated (owned-owned and owned-ghost).
    """

    forces: np.ndarray
    potential_energy: float
    per_pe_seconds: np.ndarray
    per_pe_pairs: np.ndarray


def ghost_cell_mask(cell_owner: np.ndarray, cell_list: CellList, pe: int) -> np.ndarray:
    """Boolean mask of the cells PE ``pe`` imports (adjacent, not owned)."""
    owned = cell_owner == pe
    ghost = np.zeros_like(owned)
    for offset in FULL_STENCIL:
        if offset == (0, 0, 0):
            continue
        neighbor = cell_list.neighbor_ids(offset)
        ghost |= owned[neighbor]
    ghost &= ~owned
    return ghost


@profiled("ddm.decomposed_force_pass")
def decomposed_force_pass(
    system: ParticleSystem,
    cell_list: CellList,
    cell_owner: np.ndarray,
    n_pes: int,
    potential: LennardJones,
    candidate_pairs: np.ndarray | None = None,
) -> DecomposedForceResult:
    """Run the per-PE force computation and merge the results.

    When ``candidate_pairs`` is given (e.g. a cached Verlet list covering
    every interaction of the current positions), the per-PE kd-tree searches
    are skipped entirely: each PE's pairs are sliced out of the shared list,
    which is how a real DDM code reuses one neighbour structure across the
    decomposition.
    """
    if cell_owner.shape != (cell_list.n_cells,):
        raise DecompositionError(
            f"owner map shape {cell_owner.shape} != ({cell_list.n_cells},)"
        )
    if candidate_pairs is not None:
        return _decomposed_from_candidates(
            system, cell_list, cell_owner, n_pes, potential, candidate_pairs
        )
    positions = system.positions
    box = system.box_length
    particle_cell = cell_list.assign(positions)
    particle_owner = cell_owner[particle_cell]

    forces = np.zeros_like(positions)
    total_energy = 0.0
    per_pe_seconds = np.zeros(n_pes, dtype=np.float64)
    per_pe_pairs = np.zeros(n_pes, dtype=np.int64)

    for pe in range(n_pes):
        start = time.perf_counter()
        owned_cells = cell_owner == pe
        local_cells = owned_cells | ghost_cell_mask(cell_owner, cell_list, pe)
        local_ids = np.flatnonzero(local_cells[particle_cell])
        if len(local_ids) == 0:
            per_pe_seconds[pe] = time.perf_counter() - start
            continue
        local_pos = positions[local_ids]
        owned_local = particle_owner[local_ids] == pe

        pairs = pairs_kdtree(local_pos, box, potential.cutoff)
        if len(pairs):
            keep = owned_local[pairs[:, 0]] | owned_local[pairs[:, 1]]
            pairs = pairs[keep]
        per_pe_pairs[pe] = len(pairs)

        if len(pairs):
            i, j = pairs[:, 0], pairs[:, 1]
            delta = local_pos[i] - local_pos[j]
            minimum_image_inplace(delta, box)
            r_sq = np.einsum("ij,ij->i", delta, delta)
            energies, f_over_r = potential.energy_force_sq(r_sq)
            fvec = delta * f_over_r[:, None]
            n_local = len(local_ids)
            local_forces = np.zeros((n_local, 3))
            for axis in range(3):
                local_forces[:, axis] += np.bincount(i, weights=fvec[:, axis], minlength=n_local)
                local_forces[:, axis] -= np.bincount(j, weights=fvec[:, axis], minlength=n_local)
            # Only the owned endpoints' forces are this PE's responsibility;
            # a mixed pair's other half is computed by the ghost's owner.
            owned_ids = local_ids[owned_local]
            forces[owned_ids] += local_forces[owned_local]
            # Energy: both-owned pairs belong fully to this PE; mixed pairs are
            # shared half-half with the neighbouring owner.
            weight = np.where(owned_local[i] & owned_local[j], 1.0, 0.5)
            total_energy += float(np.dot(weight, energies))
        per_pe_seconds[pe] = time.perf_counter() - start

    return DecomposedForceResult(
        forces=forces,
        potential_energy=total_energy,
        per_pe_seconds=per_pe_seconds,
        per_pe_pairs=per_pe_pairs,
    )


def _decomposed_from_candidates(
    system: ParticleSystem,
    cell_list: CellList,
    cell_owner: np.ndarray,
    n_pes: int,
    potential: LennardJones,
    candidate_pairs: np.ndarray,
) -> DecomposedForceResult:
    """Per-PE pass driven by a shared (possibly skinned) candidate pair list."""
    positions = system.positions
    box = system.box_length
    particle_cell = cell_list.assign(positions)
    particle_owner = cell_owner[particle_cell]

    forces = np.zeros_like(positions)
    total_energy = 0.0
    per_pe_seconds = np.zeros(n_pes, dtype=np.float64)
    per_pe_pairs = np.zeros(n_pes, dtype=np.int64)

    if len(candidate_pairs) == 0:
        return DecomposedForceResult(forces, 0.0, per_pe_seconds, per_pe_pairs)

    # The candidate list may carry skin pairs beyond the cut-off; filter once.
    i_all = candidate_pairs[:, 0]
    j_all = candidate_pairs[:, 1]
    delta_all = positions[i_all] - positions[j_all]
    minimum_image_inplace(delta_all, box)
    r_sq_all = np.einsum("ij,ij->i", delta_all, delta_all)
    within = r_sq_all < potential.cutoff_sq
    i_all, j_all = i_all[within], j_all[within]
    delta_all, r_sq_all = delta_all[within], r_sq_all[within]
    owner_i = particle_owner[i_all]
    owner_j = particle_owner[j_all]

    for pe in range(n_pes):
        start = time.perf_counter()
        touches = (owner_i == pe) | (owner_j == pe)
        per_pe_pairs[pe] = int(touches.sum())
        if per_pe_pairs[pe]:
            i, j = i_all[touches], j_all[touches]
            delta, r_sq = delta_all[touches], r_sq_all[touches]
            energies, f_over_r = potential.energy_force_sq(r_sq)
            fvec = delta * f_over_r[:, None]
            i_owned = owner_i[touches] == pe
            j_owned = owner_j[touches] == pe
            n = len(positions)
            # Only the owned endpoints' forces are this PE's responsibility;
            # a mixed pair's other half is computed by the ghost's owner.
            for axis in range(3):
                forces[:, axis] += np.bincount(
                    i[i_owned], weights=fvec[i_owned, axis], minlength=n
                )
                forces[:, axis] -= np.bincount(
                    j[j_owned], weights=fvec[j_owned, axis], minlength=n
                )
            # Energy: both-owned pairs belong fully to this PE; mixed pairs are
            # shared half-half with the neighbouring owner.
            weight = np.where(i_owned & j_owned, 1.0, 0.5)
            total_energy += float(np.dot(weight, energies))
        per_pe_seconds[pe] = time.perf_counter() - start

    return DecomposedForceResult(
        forces=forces,
        potential_energy=total_energy,
        per_pe_seconds=per_pe_seconds,
        per_pe_pairs=per_pe_pairs,
    )
