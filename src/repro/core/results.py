"""Result containers of parallel runs."""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..parallel.instrumentation import StepTiming, TimingLog
from ..theory.concentration import ConcentrationState
from ..theory.trajectory import Trajectory, TrajectoryRecorder


@dataclass(frozen=True)
class StepRecord:
    """Everything recorded about one simulated step."""

    step: int
    timing: StepTiming
    concentration: ConcentrationState
    n_moves: int
    temperature: float = float("nan")
    potential_energy: float = float("nan")


@dataclass
class RunResult:
    """History of a DDM or DLB-DDM run.

    ``timing`` carries the Figure 5/6 series; ``trajectory`` the Figure 9
    series; ``records`` the full per-step details.
    """

    dlb_enabled: bool
    records: list[StepRecord] = field(default_factory=list)
    timing: TimingLog = field(default_factory=TimingLog)
    _trajectory: TrajectoryRecorder = field(default_factory=TrajectoryRecorder)
    total_moves: int = 0

    def append(self, record: StepRecord) -> None:
        """Add one step record, updating the derived logs."""
        self.records.append(record)
        self.timing.append(record.timing)
        self._trajectory.record(record.step, record.concentration)
        self.total_moves += record.n_moves

    @property
    def trajectory(self) -> Trajectory:
        """The (n, C0/C) trajectory of the run."""
        return self._trajectory.freeze()

    @property
    def steps(self) -> np.ndarray:
        """Recorded step indices."""
        return self.timing.steps

    @property
    def tt(self) -> np.ndarray:
        """Execution time per step (the Figure 5 series)."""
        return self.timing.tt

    @property
    def spread(self) -> np.ndarray:
        """``Fmax - Fmin`` per step (the boundary detector's input)."""
        return self.timing.spread

    def mean_tt(self, tail_fraction: float = 1.0) -> float:
        """Mean execution time over the last ``tail_fraction`` of the run."""
        if not 0 < tail_fraction <= 1:
            raise AnalysisError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
        tt = self.tt
        start = int(len(tt) * (1.0 - tail_fraction))
        return float(tt[start:].mean())

    def digest(self) -> str:
        """Canonical SHA-256 over every recorded number, bit-for-bit.

        Two runs (or a run and its killed-then-resumed continuation) are
        byte-identical exactly when their digests match: every float is
        hashed via its IEEE-754 bytes, so even a 1-ulp divergence changes
        the digest. This is what the chaos-smoke CI job compares.
        """
        h = hashlib.sha256()
        h.update(b"dlb" if self.dlb_enabled else b"ddm")
        for rec in self.records:
            t, c = rec.timing, rec.concentration
            h.update(
                struct.pack(
                    "<qq6dqqddqqdd",
                    rec.step,
                    t.step, t.tt, t.fmax, t.fave, t.fmin, t.comm_max, t.dlb_time,
                    int(c.n_cells), int(c.empty_cells),
                    float(c.c0_ratio), float(c.n), int(c.max_domain_cells),
                    rec.n_moves,
                    rec.temperature, rec.potential_energy,
                )
            )
        return h.hexdigest()

    def summary(self) -> dict[str, float]:
        """Headline numbers of the run (for reports and quick comparisons)."""
        tt = self.tt
        spread = self.spread
        return {
            "steps": float(len(tt)),
            "tt_first": float(tt[0]),
            "tt_last": float(tt[-1]),
            "tt_mean": float(tt.mean()),
            "tt_max": float(tt.max()),
            "spread_first": float(spread[0]),
            "spread_last": float(spread[-1]),
            "total_moves": float(self.total_moves),
        }
