"""Result containers of parallel runs, and the versioned result schema.

Every JSON artifact this library persists — ``repro run --result-json``
payloads, campaign store payloads, checkpoint metadata — declares
:data:`RESULT_SCHEMA_VERSION` under the ``schema_version`` key and goes
through the one writer/reader pair here (:func:`write_result_json` /
:func:`read_result_json`, with :func:`attach_schema_version` /
:func:`check_schema_version` underneath). Versions are ``major.minor``:
minor bumps are additive and readable by older minors; an unknown *major*
is rejected with :class:`~repro.errors.SchemaError`.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import AnalysisError, SchemaError
from ..parallel.instrumentation import StepTiming, TimingLog
from ..theory.concentration import ConcentrationState
from ..theory.trajectory import Trajectory, TrajectoryRecorder

#: Schema version stamped into every persisted result payload.
RESULT_SCHEMA_VERSION = "1.0"


def parse_schema_version(version: str) -> tuple[int, int]:
    """Split a ``"major.minor"`` string; raises :class:`SchemaError` if malformed."""
    parts = str(version).split(".")
    try:
        major, minor = (int(parts[0]), int(parts[1])) if len(parts) == 2 else (None, None)
    except ValueError:
        major = None
        minor = None
    if major is None or minor is None or major < 0 or minor < 0:
        raise SchemaError(f"malformed schema_version {version!r} (want 'major.minor')")
    return major, minor


def attach_schema_version(payload: dict[str, Any]) -> dict[str, Any]:
    """Return ``payload`` with ``schema_version`` stamped (input unmodified).

    An existing ``schema_version`` key is preserved — re-persisting an
    artifact must not silently re-version it.
    """
    if "schema_version" in payload:
        return dict(payload)
    return {"schema_version": RESULT_SCHEMA_VERSION, **payload}


def check_schema_version(payload: dict[str, Any], source: str = "payload") -> dict[str, Any]:
    """Validate a payload's declared schema version; returns the payload.

    Rejects a missing declaration and any *major* version this library does
    not understand; a newer *minor* of the same major is accepted (additive
    changes only, by contract).
    """
    declared = payload.get("schema_version")
    if declared is None:
        raise SchemaError(
            f"{source} carries no schema_version; refusing to guess its layout"
        )
    major, _minor = parse_schema_version(declared)
    supported_major, _ = parse_schema_version(RESULT_SCHEMA_VERSION)
    if major != supported_major:
        raise SchemaError(
            f"{source} has schema_version {declared}, but this library reads "
            f"major version {supported_major} (current "
            f"{RESULT_SCHEMA_VERSION}); upgrade the library or regenerate "
            "the artifact"
        )
    return payload


def write_result_json(path: str | Path, payload: dict[str, Any]) -> None:
    """Persist a result payload as versioned, sorted-key JSON."""
    Path(path).write_text(
        json.dumps(attach_schema_version(payload), indent=2, sort_keys=True)
    )


def read_result_json(path: str | Path, source: str | None = None) -> dict[str, Any]:
    """Load and schema-check a payload written by :func:`write_result_json`."""
    target = Path(path)
    payload = json.loads(target.read_text())
    if not isinstance(payload, dict):
        raise SchemaError(f"{target} does not contain a JSON object")
    return check_schema_version(payload, source=source or str(target))


@dataclass(frozen=True)
class StepRecord:
    """Everything recorded about one simulated step."""

    step: int
    timing: StepTiming
    concentration: ConcentrationState
    n_moves: int
    temperature: float = float("nan")
    potential_energy: float = float("nan")


@dataclass
class RunResult:
    """History of a DDM or DLB-DDM run.

    ``timing`` carries the Figure 5/6 series; ``trajectory`` the Figure 9
    series; ``records`` the full per-step details.
    """

    dlb_enabled: bool
    records: list[StepRecord] = field(default_factory=list)
    timing: TimingLog = field(default_factory=TimingLog)
    _trajectory: TrajectoryRecorder = field(default_factory=TrajectoryRecorder)
    total_moves: int = 0
    #: Provenance sidecar filled by :func:`repro.api.simulate` (engine name,
    #: worker count, preset, resume point, audit summary). Not hashed by
    #: :meth:`digest` — two runs that computed the same physics digest
    #: equal even if one ran multiprocess and the other sequential.
    meta: dict[str, Any] = field(default_factory=dict)

    def append(self, record: StepRecord) -> None:
        """Add one step record, updating the derived logs."""
        self.records.append(record)
        self.timing.append(record.timing)
        self._trajectory.record(record.step, record.concentration)
        self.total_moves += record.n_moves

    @property
    def trajectory(self) -> Trajectory:
        """The (n, C0/C) trajectory of the run."""
        return self._trajectory.freeze()

    @property
    def steps(self) -> np.ndarray:
        """Recorded step indices."""
        return self.timing.steps

    @property
    def tt(self) -> np.ndarray:
        """Execution time per step (the Figure 5 series)."""
        return self.timing.tt

    @property
    def spread(self) -> np.ndarray:
        """``Fmax - Fmin`` per step (the boundary detector's input)."""
        return self.timing.spread

    def mean_tt(self, tail_fraction: float = 1.0) -> float:
        """Mean execution time over the last ``tail_fraction`` of the run."""
        if not 0 < tail_fraction <= 1:
            raise AnalysisError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
        tt = self.tt
        start = int(len(tt) * (1.0 - tail_fraction))
        return float(tt[start:].mean())

    def digest(self) -> str:
        """Canonical SHA-256 over every recorded number, bit-for-bit.

        Two runs (or a run and its killed-then-resumed continuation) are
        byte-identical exactly when their digests match: every float is
        hashed via its IEEE-754 bytes, so even a 1-ulp divergence changes
        the digest. This is what the chaos-smoke CI job compares.
        """
        h = hashlib.sha256()
        h.update(b"dlb" if self.dlb_enabled else b"ddm")
        for rec in self.records:
            t, c = rec.timing, rec.concentration
            h.update(
                struct.pack(
                    "<qq6dqqddqqdd",
                    rec.step,
                    t.step, t.tt, t.fmax, t.fave, t.fmin, t.comm_max, t.dlb_time,
                    int(c.n_cells), int(c.empty_cells),
                    float(c.c0_ratio), float(c.n), int(c.max_domain_cells),
                    rec.n_moves,
                    rec.temperature, rec.potential_energy,
                )
            )
        return h.hexdigest()

    def summary(self) -> dict[str, float]:
        """Headline numbers of the run (for reports and quick comparisons)."""
        tt = self.tt
        spread = self.spread
        return {
            "steps": float(len(tt)),
            "tt_first": float(tt[0]),
            "tt_last": float(tt[-1]),
            "tt_mean": float(tt.mean()),
            "tt_max": float(tt.max()),
            "spread_first": float(spread[0]),
            "spread_last": float(spread[-1]),
            "total_moves": float(self.total_moves),
        }
