"""Top-level simulation runners: DDM and DLB-DDM.

:class:`ParallelMDRunner` evolves real LJ dynamics while accounting the
parallel execution on the virtual machine -- the DDM vs DLB-DDM comparison of
Figures 5 and 6 is two instances of it differing only in ``dlb.enabled``.

:class:`DrivenLoadRunner` feeds an externally generated sequence of
configurations through the same decomposition/accounting/DLB machinery --
the quasi-static concentration sweeps behind Figures 9-10 and Table 1
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from ..config import RunConfig, SimulationConfig
from ..decomp.assignment import CellAssignment
from ..dlb.strategies import create_balancer, resolve_balancer_name
from ..engine.base import Engine, EngineContext
from ..engine.forcefield import EngineForceField
from ..errors import CheckpointError, ConfigurationError
from ..md.celllist import CellList
from ..md.forces import ForceField
from ..md.integrator import VelocityVerlet
from ..md.kernels import resolve_kernel_name
from ..md.observables import temperature
from ..md.potential import LennardJones
from ..md.simulation import attractor_sites, build_system
from ..md.system import ParticleSystem
from ..md.thermostat import VelocityRescale
from ..obs import (
    ImbalanceTracker,
    Observability,
    collect_balancer,
    collect_imbalance,
    collect_neighbor_stats,
    collect_timing,
    collect_traffic,
)
from ..obs.events import EventLog
from ..parallel.instrumentation import StepTiming
from ..rng import generator
from ..theory.concentration import measure_concentration
from .accounting import StepAccountant
from .checkpoint import CheckpointManager
from .ddm import decomposed_force_pass
from .results import RunResult, StepRecord

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..faults.audit import InvariantAuditor
    from ..faults.injector import FaultInjector


#: Span names of the per-PE phase timeline, in within-step order.
_PHASE_SPANS = ("dlb", "force", "halo-comm", "integrate")


class _ObservedRunner:
    """Shared observability hooks of the two runners.

    Everything here is a no-op unless an :class:`~repro.obs.Observability`
    bundle was supplied: the disabled path is a single ``None`` check per
    step, with no allocation.
    """

    observability: Observability | None
    trace_pid: int
    sim_time: float
    accountant: StepAccountant

    def _init_observability(
        self,
        observability: Observability | None,
        trace_pid: int,
        dlb_enabled: bool,
        n_pes: int,
        kind: str,
    ) -> None:
        if trace_pid < 0:
            raise ConfigurationError(
                f"trace_pid must be non-negative, got {trace_pid}"
            )
        if observability is not None and observability.trace is not None:
            # Fail loudly when two runners share a recorder and a pid: the
            # old behavior silently interleaved their spans on one track.
            observability.trace.claim_pid(trace_pid)
        self.observability = observability
        self.trace_pid = int(trace_pid)
        #: Simulated-clock position (sum of barrier times so far).
        self.sim_time = 0.0
        self._mode_label = "dlb" if dlb_enabled else "ddm"
        #: Nullable flight recorder (the bundle's, shared with the injector
        #: and auditor) and the imbalance analytics fed from every step.
        self.events: EventLog | None = (
            observability.events if observability is not None else None
        )
        self.imbalance: ImbalanceTracker | None = None
        if observability is not None and (
            observability.metrics is not None or observability.events is not None
        ):
            self.imbalance = ImbalanceTracker(n_pes)
        self._emit_run_start(kind)

    def _emit_run_start(self, kind: str) -> None:
        events = self.events
        if events is None:
            return
        dec = self.config.decomposition
        dlb = self.config.dlb
        events.emit(
            0, "run.start",
            runner=kind,
            mode=self._mode_label,
            n_pes=dec.n_pes,
            cells_per_side=dec.cells_per_side,
            dlb={
                "enabled": dlb.enabled,
                "policy": dlb.policy,
                "threshold": dlb.threshold,
                "max_sends_per_step": dlb.max_sends_per_step,
                "interval": dlb.interval,
                "balancer": self.balancer_name,
            },
        )

    def _lent_pairs(self) -> list[list[int]]:
        """``[cell, holder]`` pairs of every currently-lent cell."""
        holder = self.assignment.holder
        away = np.flatnonzero(holder != self.assignment.home)
        return [[int(cell), int(holder[cell])] for cell in away]

    def _emit_decision(
        self,
        step: int,
        times: np.ndarray,
        lent_before: list[list[int]],
        moves: list,
        counts: np.ndarray | None = None,
    ) -> None:
        """Record one balancer round: its full inputs and the chosen moves.

        ``times`` and the timing-view snapshot are exactly what
        :meth:`~repro.dlb.balancer.DynamicLoadBalancer.decide` consumed
        (the view is captured *after* the round's refresh), so the decision
        can be replayed offline from the event alone — see
        :mod:`repro.dlb.explain`. Strategies that weight cells by particle
        counts (``sfc``) additionally record the counts, completing the
        replay inputs; count-blind strategies skip the field to keep their
        events byte-identical to pre-seam logs.
        """
        events = self.events
        if events is None:
            return
        view = self.balancer.view
        extra: dict = {}
        if self.balancer.strategy.needs_counts and counts is not None:
            # Flatten the cell list's (nc, nc, nc) grid to the cell-id order.
            extra["counts"] = [int(c) for c in np.asarray(counts).reshape(-1)]
        events.emit(
            step, "dlb.decision",
            times=[float(t) for t in times],
            lent=lent_before,
            view=view.state_dict() if view is not None else None,
            **extra,
            moves=[
                {
                    "cell": int(m.cell),
                    "src": int(m.src),
                    "dst": int(m.dst),
                    "case": getattr(m.kind, "value", m.kind),
                }
                for m in moves
            ],
        )
        for m in moves:
            events.emit(
                step, "cell.migrate",
                cell=int(m.cell), src=int(m.src), dst=int(m.dst),
                case=getattr(m.kind, "value", m.kind),
            )

    def _observe_step(self, timing: StepTiming, moves: list) -> None:
        """Emit one step's trace spans, migration instants and step metrics.

        Called with the step's start position still in ``self.sim_time``;
        the caller advances the simulated clock by ``timing.tt`` afterwards.
        """
        obs = self.observability
        if obs is None:
            return
        trace = obs.trace
        if trace is not None:
            components = self.accountant.last_components
            base = self.sim_time
            pid = self.trace_pid
            step_args = {"step": timing.step}
            for move in moves:
                trace.migration(base, move.cell, move.src, move.dst, pid=pid)
            for pe in range(components.n_pes):
                cursor = base
                durations = (
                    components.dlb_time,
                    float(components.force_times[pe]),
                    float(components.comm_times[pe]),
                    float(components.other_times[pe]),
                )
                for name, duration in zip(_PHASE_SPANS, durations):
                    if duration > 0.0:
                        trace.span(
                            name, cursor, duration, pe=pe, pid=pid,
                            category="phase", args=step_args,
                        )
                    cursor += duration
        registry = obs.metrics
        if registry is not None:
            mode = self._mode_label
            registry.counter("repro_steps_total", "simulated steps executed").inc(
                1, mode=mode
            )
            if moves:
                registry.counter(
                    "repro_cell_migrations_total", "cells moved by the balancer"
                ).inc(len(moves), mode=mode)
        obs.maybe_flush(timing.step)

    def _observe_totals(
        self, timing: StepTiming, totals: np.ndarray, counts: np.ndarray
    ) -> None:
        """Feed the imbalance analytics (and its DLB counterfactual) one step."""
        tracker = self.imbalance
        if tracker is None:
            return
        counterfactual = None
        if self.dlb_enabled:
            counterfactual = self.accountant.counterfactual_step_time(
                timing.step, counts, self.assignment
            )
        tracker.observe(timing.step, totals, timing.tt, counterfactual)

    def _emit_run_end(self) -> None:
        events = self.events
        if events is None:
            return
        events.emit(
            self.step_count, "run.end",
            steps=self.step_count,
            sim_time=self.sim_time,
            imbalance=self.imbalance.summary() if self.imbalance is not None else None,
        )

    def _restore_observed(self, state: dict) -> None:
        """Restore the flight recorder and analytics from a runner snapshot.

        The sim buffer is replaced wholesale: the resumed run inherits the
        killed run's events — including its original ``run.start`` — and
        drops anything this runner emitted at construction, so the final
        file is byte-identical to an uninterrupted run's.
        """
        if self.events is not None and state.get("events") is not None:
            self.events.load_state_dict(state["events"])
        if self.imbalance is not None and state.get("imbalance") is not None:
            self.imbalance.load_state_dict(state["imbalance"])

    def collect_metrics(self, result: RunResult | None = None) -> None:
        """Snapshot the run's stats objects into the metrics registry.

        Call once at the end of a run; feeds the pair-search counters (when
        the runner has them), the traffic log, the balancer stats and the
        timing series, all labelled with the runner's mode.
        """
        obs = self.observability
        if obs is None or obs.metrics is None:
            return
        registry = obs.metrics
        mode = self._mode_label
        stats = getattr(self, "neighbor_stats", None)
        if stats is not None:
            collect_neighbor_stats(registry, stats, mode=mode)
        collect_traffic(registry, self.accountant.traffic, mode=mode)
        balancer = getattr(self, "balancer", None)
        if balancer is not None:
            collect_balancer(registry, balancer.stats, mode=mode)
        if result is not None and len(result.timing):
            collect_timing(registry, result.timing, mode=mode)
        if self.imbalance is not None:
            collect_imbalance(registry, self.imbalance, mode=mode)


class ParallelMDRunner(_ObservedRunner):
    """A parallel MD simulation (real physics + simulated machine).

    ``observability`` (nullable, default off) attaches the trace recorder /
    metrics registry bundle; ``trace_pid`` selects which trace process the
    per-PE tracks land under, so one recorder can hold a DDM and a DLB-DDM
    run side by side.
    """

    def __init__(
        self,
        config: SimulationConfig,
        run_config: RunConfig,
        system: ParticleSystem | None = None,
        observability: Observability | None = None,
        trace_pid: int = 0,
        faults: "FaultInjector | None" = None,
        auditor: "InvariantAuditor | None" = None,
        engine: Engine | None = None,
    ) -> None:
        if config.decomposition.shape != "pillar":
            raise ConfigurationError(
                "ParallelMDRunner implements the square-pillar decomposition "
                f"(DLB's shape); got {config.decomposition.shape!r}"
            )
        self.config = config
        self.run_config = run_config
        md = config.md
        dec = config.decomposition

        #: Nullable :class:`~repro.faults.injector.FaultInjector` /
        #: :class:`~repro.faults.audit.InvariantAuditor`; with both ``None``
        #: the step path is unchanged (one branch per hook).
        self.faults = faults
        self.auditor = auditor
        #: Nullable execution engine; ``None`` keeps the classic in-process
        #: force path (global pair kernel + optional measured-mode DDM pass).
        self.engine = engine
        self.cell_list = CellList(md.box_length, dec.cells_per_side)
        self.assignment = CellAssignment(dec.cells_per_side, dec.n_pes)
        self.accountant = StepAccountant(
            config.machine,
            self.cell_list,
            dec.n_pes,
            faults=faults,
            profiler=observability.profiler if observability is not None else None,
        )
        #: Resolved balancer strategy name; like the kernel, "auto"/env
        #: resolution happens here, once, on the driver, so engine workers,
        #: events, checkpoints and result metadata inherit a concrete name.
        self.balancer_name = resolve_balancer_name(run_config.balancer)
        self.balancer = (
            create_balancer(
                self.assignment,
                config.dlb,
                injector=faults,
                strategy=self.balancer_name,
            )
            if config.dlb.enabled
            else None
        )

        rng = generator(run_config.seed)
        self.system = system if system is not None else build_system(md, rng)
        if abs(self.system.box_length - md.box_length) > 1e-9:
            raise ConfigurationError(
                f"system box {self.system.box_length} != config box {md.box_length}"
            )
        self.potential = LennardJones(cutoff=md.cutoff)
        attractors = attractor_sites(md, rng)
        #: Resolved force-kernel tier name ("numpy", "half" or "jit"); "auto"
        #: is resolved here, once, so engine workers inherit a concrete name.
        self.kernel_name = resolve_kernel_name(run_config.kernel)
        if engine is not None:
            if run_config.force_backend != "kdtree":
                raise ConfigurationError(
                    "execution engines run the decomposed per-PE pass with "
                    "kd-tree pair search; force_backend must be 'kdtree', "
                    f"got {run_config.force_backend!r}"
                )
            # Observability must be attached before bind so the engine's
            # bind-time lifecycle events (worker spawns) reach the recorder.
            engine.attach_observability(observability)
            engine.bind(
                EngineContext(
                    n_particles=self.system.n,
                    n_pes=dec.n_pes,
                    box_length=md.box_length,
                    cells_per_side=dec.cells_per_side,
                    potential=self.potential,
                    kernel=self.kernel_name,
                    balancer=self.balancer_name,
                )
            )
            self.force_field = EngineForceField(
                engine,
                self.assignment.cell_owner_map,
                attraction=md.attraction,
                attractors=attractors,
            )
        else:
            self.force_field = ForceField(
                self.potential,
                backend=run_config.force_backend,
                cells_per_side=dec.cells_per_side,
                attraction=md.attraction,
                attractors=attractors,
                skin=run_config.skin,
                max_reuse=run_config.neighbor_max_reuse,
                # Share the runner's grid instead of letting the force field
                # build its own copy per search (the seed rebuilt one per step).
                cell_list=self.cell_list,
                kernel=self.kernel_name,
            )
        self.integrator = VelocityVerlet(md.dt)
        self.thermostat = VelocityRescale(md.temperature, md.rescale_interval)
        self.integrator.initialize(self.system, self.force_field)

        self._last_times = np.zeros(dec.n_pes, dtype=np.float64)
        self._last_counts = self.cell_list.counts(self.system.positions)
        self.step_count = 0
        self._init_observability(
            observability, trace_pid, config.dlb.enabled, dec.n_pes, "parallel_md"
        )

    @property
    def dlb_enabled(self) -> bool:
        """Whether this runner balances load (DLB-DDM) or not (plain DDM)."""
        return self.balancer is not None

    @property
    def neighbor_stats(self):
        """Pair-search counters (Verlet rebuilds/reuses, candidate ratios)."""
        return self.force_field.stats

    def _maybe_rebalance(self) -> list:
        if self.balancer is None or self.step_count == 0:
            return []
        if self.step_count % self.config.dlb.interval != 0:
            return []
        # The pre-round lent set must be captured before apply() mutates the
        # holder map; the decision event records the round's exact inputs.
        lent_before = self._lent_pairs() if self.events is not None else []
        moves = self.balancer.step(
            self._last_times, step=self.step_count, counts=self._last_counts
        )
        if self.events is not None:
            self._emit_decision(
                self.step_count, self._last_times, lent_before, moves,
                counts=self._last_counts,
            )
        self.accountant.charge_moves(
            moves, self._last_counts, self.assignment, step=self.step_count
        )
        return moves

    def step(self) -> StepRecord:
        """One full step: redistribution, physics, accounting."""
        moves = self._maybe_rebalance()

        force_result = self.integrator.step(self.system, self.force_field)
        self.step_count += 1
        self.thermostat.maybe_rescale(self.system, self.step_count)

        counts = self.cell_list.counts(self.system.positions)
        override = None
        if self.run_config.timing_mode == "measured":
            if self.engine is not None:
                # The engine's force pass *is* the decomposed pass; reuse its
                # per-PE wall-clock instead of computing the forces twice.
                override = self.force_field.last_pass.per_pe_seconds
            else:
                # With the Verlet backend the integrator's force pass just
                # refreshed (or reused) the cached candidate list; hand it to
                # the decomposed pass so no PE repeats the pair search.
                verlet = self.force_field.verlet_list
                candidates = (
                    verlet.candidates(self.system.positions)
                    if verlet is not None
                    else None
                )
                decomposed = decomposed_force_pass(
                    self.system,
                    self.cell_list,
                    self.assignment.cell_owner_map(),
                    self.config.decomposition.n_pes,
                    self.potential,
                    candidate_pairs=candidates,
                )
                override = decomposed.per_pe_seconds
        timing, totals = self.accountant.account_step(
            self.step_count, counts, self.assignment, self.dlb_enabled, override
        )
        self._observe_totals(timing, totals, counts)
        if self.auditor is not None:
            self.auditor.maybe_audit(
                self.step_count,
                counts=counts,
                forces=self.system.forces,
                moves=moves,
            )
        if self.observability is not None:
            self._observe_step(timing, moves)
        self.sim_time += timing.tt
        self._last_times = totals
        self._last_counts = counts

        concentration = measure_concentration(counts, self.assignment)
        return StepRecord(
            step=self.step_count,
            timing=timing,
            concentration=concentration,
            n_moves=len(moves),
            temperature=temperature(self.system),
            potential_energy=force_result.potential_energy,
        )

    def run(
        self,
        steps: int | None = None,
        checkpoint: "CheckpointManager | None" = None,
        result: RunResult | None = None,
    ) -> RunResult:
        """Run ``steps`` steps (default: the run config's), collecting records.

        ``checkpoint`` (nullable) snapshots the full runner state at the
        manager's cadence; pass the partial ``result`` returned by
        :meth:`restore` to continue a run, with ``steps`` counting only the
        *remaining* steps.
        """
        steps = self.run_config.steps if steps is None else steps
        if result is None:
            result = RunResult(dlb_enabled=self.dlb_enabled)
        for _ in range(steps):
            record = self.step()
            if self.step_count % self.run_config.record_interval == 0:
                result.append(record)
            if checkpoint is not None and checkpoint.due(self.step_count):
                checkpoint.save(self.step_count, self.state_dict(result))
                if self.events is not None:
                    self.events.emit_host(self.step_count, "checkpoint.save")
        self._emit_run_end()
        self.collect_metrics(result)
        return result

    # -- checkpointing -------------------------------------------------------

    def _config_token(self) -> str:
        """Identity of the configuration a snapshot belongs to.

        Frozen-dataclass reprs are deterministic, so a snapshot can refuse
        to restore into a runner built from different settings. The
        *resolved* balancer name is included on top of the configs: a run
        configured with ``balancer=None`` resolves through the environment,
        and resuming it under a different ``REPRO_BALANCER`` must refuse.
        """
        return f"{self.config!r}|{self.run_config!r}|balancer={self.balancer_name}"

    def state_dict(self, result: RunResult | None = None) -> dict:
        """Everything mutable, deep-copied: system arrays, holder map,
        balancer ledger and timing view, pending accounting charges, Verlet
        cache (with pair order), clocks and the partial records."""
        return {
            "kind": "parallel_md",
            "config_token": self._config_token(),
            "step_count": self.step_count,
            "sim_time": self.sim_time,
            "positions": self.system.positions.copy(),
            "velocities": self.system.velocities.copy(),
            "forces": self.system.forces.copy(),
            "holder": self.assignment.holder.copy(),
            "last_times": self._last_times.copy(),
            "last_counts": self._last_counts.copy(),
            "balancer": self.balancer.state_dict() if self.balancer is not None else None,
            "accountant": self.accountant.state_dict(),
            "force_cache": self.force_field.cache_state(),
            "events": self.events.state_dict() if self.events is not None else None,
            "imbalance": (
                self.imbalance.state_dict() if self.imbalance is not None else None
            ),
            "records": list(result.records) if result is not None else [],
        }

    def restore(self, state: dict) -> RunResult:
        """Restore a :meth:`state_dict` snapshot; returns the partial result.

        Raises :class:`~repro.errors.CheckpointError` when the snapshot was
        taken under a different configuration or for a different runner kind.
        """
        if state.get("kind") != "parallel_md":
            raise CheckpointError(
                f"snapshot is for runner kind {state.get('kind')!r}, not 'parallel_md'"
            )
        if state.get("config_token") != self._config_token():
            raise CheckpointError(
                "snapshot was taken under a different configuration; refusing "
                "to resume (same config + seed is what makes resume bit-identical)"
            )
        self.step_count = int(state["step_count"])
        self.sim_time = float(state["sim_time"])
        self.system.positions[...] = state["positions"]
        self.system.velocities[...] = state["velocities"]
        self.system.forces[...] = state["forces"]
        self.assignment.holder[...] = state["holder"]
        self._last_times = np.array(state["last_times"], copy=True)
        self._last_counts = np.array(state["last_counts"], copy=True)
        if state["balancer"] is not None and self.balancer is not None:
            self.balancer.load_state_dict(state["balancer"])
        self.accountant.load_state_dict(state["accountant"])
        self.force_field.restore_cache_state(
            state["force_cache"], self.system.box_length
        )
        self._restore_observed(state)
        result = RunResult(dlb_enabled=self.dlb_enabled)
        for record in state["records"]:
            result.append(record)
        return result


class DrivenLoadRunner(_ObservedRunner):
    """Load-balance dynamics driven by an external configuration sequence.

    No forces are integrated: each supplied configuration is binned into
    cells, the step is time-accounted on the virtual machine, and the
    balancer reacts. This isolates the DLB mechanism from the (slow) physics
    that produces concentration, which is exactly what the effective-range
    experiments need.

    The runner owns a single :class:`CellList` whose periodic stencil tables
    are computed once and cached, so the per-round halo accounting does not
    re-derive the grid geometry (the seed recomputed the 26-neighbour tables
    on every call).
    """

    def __init__(
        self,
        config: SimulationConfig,
        rounds_per_config: int = 1,
        observability: Observability | None = None,
        trace_pid: int = 0,
        faults: "FaultInjector | None" = None,
        auditor: "InvariantAuditor | None" = None,
        balancer: str | None = None,
    ) -> None:
        if config.decomposition.shape != "pillar":
            raise ConfigurationError("DrivenLoadRunner needs the pillar decomposition")
        if rounds_per_config <= 0:
            raise ConfigurationError(
                f"rounds_per_config must be positive, got {rounds_per_config}"
            )
        self.config = config
        dec = config.decomposition
        self.faults = faults
        self.auditor = auditor
        self.cell_list = CellList(config.md.box_length, dec.cells_per_side)
        self.assignment = CellAssignment(dec.cells_per_side, dec.n_pes)
        self.balancer_name = resolve_balancer_name(balancer)
        self.balancer = (
            create_balancer(
                self.assignment,
                config.dlb,
                injector=faults,
                strategy=self.balancer_name,
            )
            if config.dlb.enabled
            else None
        )
        self.accountant = StepAccountant(
            config.machine,
            self.cell_list,
            dec.n_pes,
            faults=faults,
            profiler=observability.profiler if observability is not None else None,
        )
        self.rounds_per_config = int(rounds_per_config)
        self._last_times = np.zeros(dec.n_pes, dtype=np.float64)
        self._last_counts: np.ndarray | None = None
        self.step_count = 0
        #: Configurations already fully processed (resume skips this many).
        self.configs_done = 0
        self._init_observability(
            observability, trace_pid, config.dlb.enabled, dec.n_pes, "driven_load"
        )

    @property
    def dlb_enabled(self) -> bool:
        """Whether the balancer is active."""
        return self.balancer is not None

    def run(
        self,
        configurations: Iterable[np.ndarray],
        checkpoint: "CheckpointManager | None" = None,
        result: RunResult | None = None,
    ) -> RunResult:
        """Process configurations (position arrays) in order.

        ``checkpoint`` snapshots after each fully processed configuration at
        the manager's cadence (its ``every`` counts configurations here).
        After :meth:`restore`, pass the *same* configuration sequence and the
        returned partial ``result``: the first ``configs_done`` entries are
        skipped and processing continues exactly where the snapshot was taken.
        """
        if result is None:
            result = RunResult(dlb_enabled=self.dlb_enabled)
        skip = self.configs_done
        for index, positions in enumerate(configurations):
            if index < skip:
                continue
            counts = self.cell_list.counts(positions)
            n_moves = 0
            timing = None
            for _ in range(self.rounds_per_config):
                moves: list = []
                if (
                    self.balancer is not None
                    and self.step_count > 0
                    and self.step_count % self.config.dlb.interval == 0
                ):
                    lent_before = self._lent_pairs() if self.events is not None else []
                    base = self._last_counts if self._last_counts is not None else counts
                    moves = self.balancer.step(
                        self._last_times, step=self.step_count, counts=base
                    )
                    if self.events is not None:
                        self._emit_decision(
                            self.step_count, self._last_times, lent_before, moves,
                            counts=base,
                        )
                    self.accountant.charge_moves(
                        moves, base, self.assignment, step=self.step_count
                    )
                    n_moves += len(moves)
                self.step_count += 1
                timing, totals = self.accountant.account_step(
                    self.step_count, counts, self.assignment, self.dlb_enabled
                )
                self._observe_totals(timing, totals, counts)
                if self.auditor is not None:
                    self.auditor.maybe_audit(self.step_count, counts=counts, moves=moves)
                if self.observability is not None:
                    self._observe_step(timing, moves)
                self.sim_time += timing.tt
                self._last_times = totals
                self._last_counts = counts
            concentration = measure_concentration(counts, self.assignment)
            assert timing is not None
            result.append(
                StepRecord(
                    step=self.step_count,
                    timing=timing,
                    concentration=concentration,
                    n_moves=n_moves,
                )
            )
            self.configs_done = index + 1
            if checkpoint is not None and checkpoint.due(self.configs_done):
                checkpoint.save(self.step_count, self.state_dict(result))
                if self.events is not None:
                    self.events.emit_host(self.step_count, "checkpoint.save")
        self._emit_run_end()
        self.collect_metrics(result)
        return result

    # -- checkpointing -------------------------------------------------------

    def _config_token(self) -> str:
        return (
            f"{self.config!r}|rounds={self.rounds_per_config}"
            f"|balancer={self.balancer_name}"
        )

    def state_dict(self, result: RunResult | None = None) -> dict:
        """Mutable state snapshot (see :meth:`ParallelMDRunner.state_dict`)."""
        return {
            "kind": "driven_load",
            "config_token": self._config_token(),
            "step_count": self.step_count,
            "configs_done": self.configs_done,
            "sim_time": self.sim_time,
            "holder": self.assignment.holder.copy(),
            "last_times": self._last_times.copy(),
            "last_counts": (
                self._last_counts.copy() if self._last_counts is not None else None
            ),
            "balancer": self.balancer.state_dict() if self.balancer is not None else None,
            "accountant": self.accountant.state_dict(),
            "events": self.events.state_dict() if self.events is not None else None,
            "imbalance": (
                self.imbalance.state_dict() if self.imbalance is not None else None
            ),
            "records": list(result.records) if result is not None else [],
        }

    def restore(self, state: dict) -> RunResult:
        """Restore a :meth:`state_dict` snapshot; returns the partial result."""
        if state.get("kind") != "driven_load":
            raise CheckpointError(
                f"snapshot is for runner kind {state.get('kind')!r}, not 'driven_load'"
            )
        if state.get("config_token") != self._config_token():
            raise CheckpointError(
                "snapshot was taken under a different configuration; refusing to resume"
            )
        self.step_count = int(state["step_count"])
        self.configs_done = int(state["configs_done"])
        self.sim_time = float(state["sim_time"])
        self.assignment.holder[...] = state["holder"]
        self._last_times = np.array(state["last_times"], copy=True)
        self._last_counts = (
            np.array(state["last_counts"], copy=True)
            if state["last_counts"] is not None
            else None
        )
        if state["balancer"] is not None and self.balancer is not None:
            self.balancer.load_state_dict(state["balancer"])
        self.accountant.load_state_dict(state["accountant"])
        self._restore_observed(state)
        result = RunResult(dlb_enabled=self.dlb_enabled)
        for record in state["records"]:
            result.append(record)
        return result
