"""Top-level simulation runners: DDM and DLB-DDM.

:class:`ParallelMDRunner` evolves real LJ dynamics while accounting the
parallel execution on the virtual machine -- the DDM vs DLB-DDM comparison of
Figures 5 and 6 is two instances of it differing only in ``dlb.enabled``.

:class:`DrivenLoadRunner` feeds an externally generated sequence of
configurations through the same decomposition/accounting/DLB machinery --
the quasi-static concentration sweeps behind Figures 9-10 and Table 1
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..config import RunConfig, SimulationConfig
from ..decomp.assignment import CellAssignment
from ..dlb.balancer import DynamicLoadBalancer
from ..errors import ConfigurationError
from ..md.celllist import CellList
from ..md.forces import ForceField
from ..md.integrator import VelocityVerlet
from ..md.observables import temperature
from ..md.potential import LennardJones
from ..md.simulation import attractor_sites, build_system
from ..md.system import ParticleSystem
from ..md.thermostat import VelocityRescale
from ..obs import (
    Observability,
    collect_balancer,
    collect_neighbor_stats,
    collect_timing,
    collect_traffic,
)
from ..parallel.instrumentation import StepTiming
from ..rng import generator
from ..theory.concentration import measure_concentration
from .accounting import StepAccountant
from .ddm import decomposed_force_pass
from .results import RunResult, StepRecord


#: Span names of the per-PE phase timeline, in within-step order.
_PHASE_SPANS = ("dlb", "force", "halo-comm", "integrate")


class _ObservedRunner:
    """Shared observability hooks of the two runners.

    Everything here is a no-op unless an :class:`~repro.obs.Observability`
    bundle was supplied: the disabled path is a single ``None`` check per
    step, with no allocation.
    """

    observability: Observability | None
    trace_pid: int
    sim_time: float
    accountant: StepAccountant

    def _init_observability(
        self, observability: Observability | None, trace_pid: int, dlb_enabled: bool
    ) -> None:
        self.observability = observability
        self.trace_pid = int(trace_pid)
        #: Simulated-clock position (sum of barrier times so far).
        self.sim_time = 0.0
        self._mode_label = "dlb" if dlb_enabled else "ddm"

    def _observe_step(self, timing: StepTiming, moves: list) -> None:
        """Emit one step's trace spans, migration instants and step metrics.

        Called with the step's start position still in ``self.sim_time``;
        the caller advances the simulated clock by ``timing.tt`` afterwards.
        """
        obs = self.observability
        if obs is None:
            return
        trace = obs.trace
        if trace is not None:
            components = self.accountant.last_components
            base = self.sim_time
            pid = self.trace_pid
            step_args = {"step": timing.step}
            for move in moves:
                trace.migration(base, move.cell, move.src, move.dst, pid=pid)
            for pe in range(components.n_pes):
                cursor = base
                durations = (
                    components.dlb_time,
                    float(components.force_times[pe]),
                    float(components.comm_times[pe]),
                    float(components.other_times[pe]),
                )
                for name, duration in zip(_PHASE_SPANS, durations):
                    if duration > 0.0:
                        trace.span(
                            name, cursor, duration, pe=pe, pid=pid,
                            category="phase", args=step_args,
                        )
                    cursor += duration
        registry = obs.metrics
        if registry is not None:
            mode = self._mode_label
            registry.counter("repro_steps_total", "simulated steps executed").inc(
                1, mode=mode
            )
            if moves:
                registry.counter(
                    "repro_cell_migrations_total", "cells moved by the balancer"
                ).inc(len(moves), mode=mode)

    def collect_metrics(self, result: RunResult | None = None) -> None:
        """Snapshot the run's stats objects into the metrics registry.

        Call once at the end of a run; feeds the pair-search counters (when
        the runner has them), the traffic log, the balancer stats and the
        timing series, all labelled with the runner's mode.
        """
        obs = self.observability
        if obs is None or obs.metrics is None:
            return
        registry = obs.metrics
        mode = self._mode_label
        stats = getattr(self, "neighbor_stats", None)
        if stats is not None:
            collect_neighbor_stats(registry, stats, mode=mode)
        collect_traffic(registry, self.accountant.traffic, mode=mode)
        balancer = getattr(self, "balancer", None)
        if balancer is not None:
            collect_balancer(registry, balancer.stats, mode=mode)
        if result is not None and len(result.timing):
            collect_timing(registry, result.timing, mode=mode)


class ParallelMDRunner(_ObservedRunner):
    """A parallel MD simulation (real physics + simulated machine).

    ``observability`` (nullable, default off) attaches the trace recorder /
    metrics registry bundle; ``trace_pid`` selects which trace process the
    per-PE tracks land under, so one recorder can hold a DDM and a DLB-DDM
    run side by side.
    """

    def __init__(
        self,
        config: SimulationConfig,
        run_config: RunConfig,
        system: ParticleSystem | None = None,
        observability: Observability | None = None,
        trace_pid: int = 0,
    ) -> None:
        if config.decomposition.shape != "pillar":
            raise ConfigurationError(
                "ParallelMDRunner implements the square-pillar decomposition "
                f"(DLB's shape); got {config.decomposition.shape!r}"
            )
        self.config = config
        self.run_config = run_config
        md = config.md
        dec = config.decomposition

        self.cell_list = CellList(md.box_length, dec.cells_per_side)
        self.assignment = CellAssignment(dec.cells_per_side, dec.n_pes)
        self.accountant = StepAccountant(config.machine, self.cell_list, dec.n_pes)
        self.balancer = (
            DynamicLoadBalancer(self.assignment, config.dlb) if config.dlb.enabled else None
        )

        rng = generator(run_config.seed)
        self.system = system if system is not None else build_system(md, rng)
        if abs(self.system.box_length - md.box_length) > 1e-9:
            raise ConfigurationError(
                f"system box {self.system.box_length} != config box {md.box_length}"
            )
        self.potential = LennardJones(cutoff=md.cutoff)
        self.force_field = ForceField(
            self.potential,
            backend=run_config.force_backend,
            cells_per_side=dec.cells_per_side,
            attraction=md.attraction,
            attractors=attractor_sites(md, rng),
            skin=run_config.skin,
            max_reuse=run_config.neighbor_max_reuse,
            # Share the runner's grid instead of letting the force field build
            # its own copy per search (the seed rebuilt one per step).
            cell_list=self.cell_list,
        )
        self.integrator = VelocityVerlet(md.dt)
        self.thermostat = VelocityRescale(md.temperature, md.rescale_interval)
        self.integrator.initialize(self.system, self.force_field)

        self._last_times = np.zeros(dec.n_pes, dtype=np.float64)
        self._last_counts = self.cell_list.counts(self.system.positions)
        self.step_count = 0
        self._init_observability(observability, trace_pid, config.dlb.enabled)

    @property
    def dlb_enabled(self) -> bool:
        """Whether this runner balances load (DLB-DDM) or not (plain DDM)."""
        return self.balancer is not None

    @property
    def neighbor_stats(self):
        """Pair-search counters (Verlet rebuilds/reuses, candidate ratios)."""
        return self.force_field.stats

    def _maybe_rebalance(self) -> list:
        if self.balancer is None or self.step_count == 0:
            return []
        if self.step_count % self.config.dlb.interval != 0:
            return []
        moves = self.balancer.step(self._last_times)
        self.accountant.charge_moves(moves, self._last_counts, self.assignment)
        return moves

    def step(self) -> StepRecord:
        """One full step: redistribution, physics, accounting."""
        moves = self._maybe_rebalance()

        force_result = self.integrator.step(self.system, self.force_field)
        self.step_count += 1
        self.thermostat.maybe_rescale(self.system, self.step_count)

        counts = self.cell_list.counts(self.system.positions)
        override = None
        if self.run_config.timing_mode == "measured":
            # With the Verlet backend the integrator's force pass just refreshed
            # (or reused) the cached candidate list; hand it to the decomposed
            # pass so no PE repeats the pair search.
            verlet = self.force_field.verlet_list
            candidates = verlet.candidates(self.system.positions) if verlet is not None else None
            decomposed = decomposed_force_pass(
                self.system,
                self.cell_list,
                self.assignment.cell_owner_map(),
                self.config.decomposition.n_pes,
                self.potential,
                candidate_pairs=candidates,
            )
            override = decomposed.per_pe_seconds
        timing, totals = self.accountant.account_step(
            self.step_count, counts, self.assignment, self.dlb_enabled, override
        )
        if self.observability is not None:
            self._observe_step(timing, moves)
        self.sim_time += timing.tt
        self._last_times = totals
        self._last_counts = counts

        concentration = measure_concentration(counts, self.assignment)
        return StepRecord(
            step=self.step_count,
            timing=timing,
            concentration=concentration,
            n_moves=len(moves),
            temperature=temperature(self.system),
            potential_energy=force_result.potential_energy,
        )

    def run(self, steps: int | None = None) -> RunResult:
        """Run ``steps`` steps (default: the run config's), collecting records."""
        steps = self.run_config.steps if steps is None else steps
        result = RunResult(dlb_enabled=self.dlb_enabled)
        for _ in range(steps):
            record = self.step()
            if self.step_count % self.run_config.record_interval == 0:
                result.append(record)
        self.collect_metrics(result)
        return result


class DrivenLoadRunner(_ObservedRunner):
    """Load-balance dynamics driven by an external configuration sequence.

    No forces are integrated: each supplied configuration is binned into
    cells, the step is time-accounted on the virtual machine, and the
    balancer reacts. This isolates the DLB mechanism from the (slow) physics
    that produces concentration, which is exactly what the effective-range
    experiments need.

    The runner owns a single :class:`CellList` whose periodic stencil tables
    are computed once and cached, so the per-round halo accounting does not
    re-derive the grid geometry (the seed recomputed the 26-neighbour tables
    on every call).
    """

    def __init__(
        self,
        config: SimulationConfig,
        rounds_per_config: int = 1,
        observability: Observability | None = None,
        trace_pid: int = 0,
    ) -> None:
        if config.decomposition.shape != "pillar":
            raise ConfigurationError("DrivenLoadRunner needs the pillar decomposition")
        if rounds_per_config <= 0:
            raise ConfigurationError(
                f"rounds_per_config must be positive, got {rounds_per_config}"
            )
        self.config = config
        dec = config.decomposition
        self.cell_list = CellList(config.md.box_length, dec.cells_per_side)
        self.assignment = CellAssignment(dec.cells_per_side, dec.n_pes)
        self.balancer = (
            DynamicLoadBalancer(self.assignment, config.dlb) if config.dlb.enabled else None
        )
        self.accountant = StepAccountant(config.machine, self.cell_list, dec.n_pes)
        self.rounds_per_config = int(rounds_per_config)
        self._last_times = np.zeros(dec.n_pes, dtype=np.float64)
        self._last_counts: np.ndarray | None = None
        self.step_count = 0
        self._init_observability(observability, trace_pid, config.dlb.enabled)

    @property
    def dlb_enabled(self) -> bool:
        """Whether the balancer is active."""
        return self.balancer is not None

    def run(self, configurations: Iterable[np.ndarray]) -> RunResult:
        """Process configurations (position arrays) in order."""
        result = RunResult(dlb_enabled=self.dlb_enabled)
        for positions in configurations:
            counts = self.cell_list.counts(positions)
            n_moves = 0
            timing = None
            for _ in range(self.rounds_per_config):
                moves: list = []
                if (
                    self.balancer is not None
                    and self.step_count > 0
                    and self.step_count % self.config.dlb.interval == 0
                ):
                    moves = self.balancer.step(self._last_times)
                    base = self._last_counts if self._last_counts is not None else counts
                    self.accountant.charge_moves(moves, base, self.assignment)
                    n_moves += len(moves)
                self.step_count += 1
                timing, totals = self.accountant.account_step(
                    self.step_count, counts, self.assignment, self.dlb_enabled
                )
                if self.observability is not None:
                    self._observe_step(timing, moves)
                self.sim_time += timing.tt
                self._last_times = totals
                self._last_counts = counts
            concentration = measure_concentration(counts, self.assignment)
            assert timing is not None
            result.append(
                StepRecord(
                    step=self.step_count,
                    timing=timing,
                    concentration=concentration,
                    n_moves=n_moves,
                )
            )
        self.collect_metrics(result)
        return result
