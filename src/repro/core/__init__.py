"""Simulation core: the public entry points of the library.

:class:`ParallelMDRunner` couples the MD engine, the square-pillar
decomposition, the virtual machine and (optionally) the permanent-cell load
balancer into the DDM / DLB-DDM simulations of Section 3.
:class:`DrivenLoadRunner` replaces the MD dynamics with an externally driven
sequence of configurations -- the quasi-static concentration sweeps behind
Figures 9-10 and Table 1.
"""

from .accounting import StepAccountant
from .ddm import DecomposedForceResult, decomposed_force_pass
from .results import RunResult, StepRecord
from .runner import DrivenLoadRunner, ParallelMDRunner

__all__ = [
    "DecomposedForceResult",
    "DrivenLoadRunner",
    "ParallelMDRunner",
    "RunResult",
    "StepAccountant",
    "StepRecord",
    "decomposed_force_pass",
]
