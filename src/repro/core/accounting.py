"""Per-step time accounting on the virtual machine.

Given one configuration (per-cell particle counts), one cell-to-PE
assignment and the cell moves the balancer just made, the accountant charges
every PE its force, integration, bookkeeping, halo-exchange and migration
time, synchronises at the barrier, and emits the :class:`StepTiming` record
Figures 5 and 6 are built from.
"""

from __future__ import annotations

import copy

import numpy as np

from ..config import MachineConfig
from ..decomp.assignment import CellAssignment
from ..decomp.halo import compute_halo
from ..dlb.protocol import Move
from ..md.celllist import CellList
from ..obs.profiler import scope
from ..parallel.costmodel import ComputeCostModel
from ..parallel.instrumentation import StepComponents, StepTiming
from ..parallel.message import TrafficLog
from ..parallel.network import NetworkModel


class StepAccountant:
    """Charges one step's work to the PEs and produces its timing record."""

    def __init__(
        self,
        machine: MachineConfig,
        cell_list: CellList,
        n_pes: int,
        faults=None,
        profiler=None,
    ) -> None:
        self.machine = machine
        self.cell_list = cell_list
        self.n_pes = int(n_pes)
        self.network = NetworkModel(machine)
        self.cost_model = ComputeCostModel(machine, cell_list)
        self.traffic = TrafficLog(n_pes)
        self._pending_migration = np.zeros(n_pes, dtype=np.float64)
        #: Explicit nullable :class:`~repro.obs.profiler.Profiler`. When set,
        #: timings go to it directly; only when ``None`` is the process-global
        #: :func:`~repro.obs.profiler.scope` consulted. Worker processes hand
        #: each accountant its own profiler, so two accountants in different
        #: processes (or the same one) never share hidden global state.
        self.profiler = profiler
        #: Nullable :class:`~repro.faults.injector.FaultInjector`; the
        #: default ``None`` path adds one branch per charge site and nothing
        #: else (the obs-off perf gate covers it).
        self.faults = faults
        #: Per-PE phase breakdown of the most recent :meth:`account_step`
        #: (consumed by the trace recorder and the per-phase report).
        self.last_components: StepComponents | None = None

    def charge_moves(self, moves: list[Move], counts_grid: np.ndarray,
                     assignment: CellAssignment, step: int = 0) -> None:
        """Account the balancer's cell migrations.

        The particle payload of each moved cell is transferred between steps;
        its cost (and the assignment broadcast to the 8 neighbours) lands on
        the *next* step's communication time of both endpoints. With a fault
        injector, each migration ("migration" tag) and assignment broadcast
        ("dlb-bookkeeping" tag) may be delayed, lost-and-retransmitted or
        duplicated -- delivery stays reliable, only the charged time and the
        wire traffic change.
        """
        if not moves:
            return
        cell_particles = counts_grid.reshape(-1)
        for move in moves:
            payload = int(cell_particles[move.cell]) * self.machine.bytes_per_particle
            duration = self.network.transfer_time(payload)
            wire = 1
            if self.faults is not None:
                pert = self.faults.perturb_message(step, move.src, move.dst, "migration")
                duration = pert.perturbed_time(duration)
                wire = pert.attempts
            self._pending_migration[move.src] += duration
            self._pending_migration[move.dst] += duration
            self.traffic.record_bulk(
                move.src, move.dst, payload * wire, count=wire, tag="migration"
            )
            # Step 4 of the protocol: broadcast the new assignment to the
            # 8 neighbours (tiny messages; latency dominated).
            broadcast = 8 * self.network.transfer_time(16)
            wire = 8
            if self.faults is not None:
                pert = self.faults.perturb_message(
                    step, move.src, move.src, "dlb-bookkeeping"
                )
                broadcast = pert.perturbed_time(broadcast)
                wire = 8 * pert.attempts
            self._pending_migration[move.src] += broadcast
            self.traffic.record_bulk(
                move.src, move.src, 16 * wire, count=wire, tag="dlb-bookkeeping"
            )

    def account_step(
        self,
        step: int,
        counts_grid: np.ndarray,
        assignment: CellAssignment,
        dlb_enabled: bool,
        force_times_override: np.ndarray | None = None,
    ) -> tuple[StepTiming, np.ndarray]:
        """Charge one full step; returns (timing record, per-PE total times).

        ``force_times_override`` substitutes measured wall-clock force times
        for the cost model's (the runner's ``"measured"`` mode).
        """
        timer = (
            self.profiler.timer("accounting.account_step")
            if self.profiler is not None
            else scope("accounting.account_step")
        )
        with timer:
            owner = assignment.cell_owner_map()
            work = self.cost_model.per_pe_work(counts_grid, owner, self.n_pes)
            force_times = (
                np.asarray(force_times_override, dtype=np.float64)
                if force_times_override is not None
                else work.force_times
            )
            other_times = work.integrate_times + work.cell_times
            if self.faults is not None:
                # Compute faults: per-PE slowdown factors and jitter scale
                # every compute bucket; transient stalls land once, on the
                # force phase (the straggler signal DLB reacts to).
                force_times, other_times = self.faults.perturb_compute(
                    step, force_times, other_times
                )

            counts_flat = counts_grid.reshape(-1)
            halo = compute_halo(owner, self.cell_list, counts_flat, self.n_pes)
            comm_times = np.array(
                [
                    self.network.particles_time(halo.messages[p], halo.ghost_particles[p])
                    for p in range(self.n_pes)
                ]
            )
            # Log the halo exchange per tag. Each PE's receive has a matching
            # send among its neighbours, so charging the send side to the
            # receiving PE keeps machine-wide totals exact while staying O(P).
            # Message faults apply at this aggregated per-PE granularity: one
            # "halo" outcome per PE per step perturbs its whole exchange.
            bytes_per_particle = self.machine.bytes_per_particle
            for p in range(self.n_pes):
                if halo.messages[p]:
                    wire = 1
                    if self.faults is not None:
                        pert = self.faults.perturb_message(step, p, p, "halo")
                        comm_times[p] = pert.perturbed_time(float(comm_times[p]))
                        wire = pert.attempts
                    self.traffic.record_bulk(
                        p, p,
                        int(halo.ghost_particles[p]) * bytes_per_particle * wire,
                        count=int(halo.messages[p]) * wire,
                        tag="halo",
                    )
            comm_times += self._pending_migration
            self._pending_migration[...] = 0.0

            dlb_time = self.machine.dlb_overhead if dlb_enabled else 0.0
            timing = StepTiming.from_components(
                step, force_times, comm_times, other_times, dlb_time
            )
            totals = force_times + comm_times + other_times + dlb_time
            self.last_components = StepComponents(
                force_times=force_times,
                comm_times=comm_times,
                other_times=other_times,
                dlb_time=dlb_time,
            )
            return timing, totals

    def counterfactual_step_time(
        self, step: int, counts_grid: np.ndarray, assignment: CellAssignment
    ) -> float:
        """Barrier time of this step had every cell stayed at its home PE.

        A pure side computation for the imbalance analytics: the same cost
        model, halo accounting and fault perturbations as
        :meth:`account_step` (the injector is stateless, so re-drawing the
        step's faults is exact), but over ``assignment.home`` instead of the
        holder map, with no DLB overhead, no traffic recording and no
        pending-migration mutation. Fault-event emission is suppressed for
        the duration — the counterfactual world must not write to the flight
        recorder.
        """
        faults = self.faults
        saved_events = None
        if faults is not None:
            saved_events = faults.events
            faults.events = None
        try:
            owner = assignment.home
            work = self.cost_model.per_pe_work(counts_grid, owner, self.n_pes)
            force_times = work.force_times
            other_times = work.integrate_times + work.cell_times
            if faults is not None:
                force_times, other_times = faults.perturb_compute(
                    step, force_times, other_times
                )
            counts_flat = counts_grid.reshape(-1)
            halo = compute_halo(owner, self.cell_list, counts_flat, self.n_pes)
            comm_times = np.array(
                [
                    self.network.particles_time(halo.messages[p], halo.ghost_particles[p])
                    for p in range(self.n_pes)
                ]
            )
            if faults is not None:
                for p in range(self.n_pes):
                    if halo.messages[p]:
                        pert = faults.perturb_message(step, p, p, "halo")
                        comm_times[p] = pert.perturbed_time(float(comm_times[p]))
            totals = force_times + comm_times + other_times
            return float(totals.max())
        finally:
            if faults is not None:
                faults.events = saved_events

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the accountant's mutable state (deferred migration
        charges and the cumulative traffic log)."""
        return {
            "pending_migration": self._pending_migration.copy(),
            "traffic": copy.deepcopy(self.traffic),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._pending_migration[...] = state["pending_migration"]
        self.traffic = copy.deepcopy(state["traffic"])
