"""Quasi-static concentration schedules.

The supercooled gas of the paper concentrates over ~10^4 MD steps; the
effective-range experiments only care about *where* in (n, C0/C) space DLB
breaks down, not how long the gas takes to get there. A
:class:`ConcentrationSchedule` therefore drives configurations directly,
sweeping the (n, C0/C) trajectory from the dilute-uniform corner upward.
See DESIGN.md, substitutions.

Two modes:

``"droplets"`` (default, physical)
    A growing fraction of the particles condenses into many small droplets
    scattered (with uneven weights) over the box -- the nucleation morphology
    of a supercooled gas. Load imbalance comes from droplets landing
    unevenly across domains; DLB can counteract it by moving columns until
    the emptiness of the space exceeds its theoretical limit.

``"ball"`` (adversarial)
    Everything collapses into one shrinking ball: the worst case, where
    beyond some point the load sits in fewer cells than any cell-granular
    balancer can split.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..md.lattice import ball_sites_sorted, clustered_positions
from ..rng import generator


@dataclass(frozen=True)
class ConcentrationSchedule:
    """Generates a sequence of progressively more concentrated configurations.

    Attributes
    ----------
    n_particles:
        Particles per configuration.
    box_length:
        Periodic box edge.
    n_steps:
        Number of configurations the schedule produces.
    mode:
        ``"droplets"`` or ``"ball"`` (see module docstring).
    max_cluster_fraction:
        Fraction of particles condensed at the end of the schedule.
    n_droplets:
        Initial droplet (nucleation site) count of the ``"droplets"`` mode.
    survivor_fraction:
        Fraction of droplets that survive coarsening to the end of the sweep.
    condense_by:
        Schedule parameter by which condensation completes (coarsening
        continues afterwards).
    weight_shape:
        Gamma shape of the droplet mass distribution; large values mean
        near-equal droplets (relative spread ``1/sqrt(shape)``).
    liquid_density:
        Reduced density inside droplets; sets each droplet's radius from its
        occupancy (LJ liquid: ~0.8).
    initial_radius, final_radius:
        Ball radius sweep of the ``"ball"`` mode.
    center:
        Ball centre of the ``"ball"`` mode; ``None`` means the box centre.
    seed:
        Seed of droplet placement and per-step jitter (vary per run for the
        paper's independent repetitions).
    """

    n_particles: int
    box_length: float
    n_steps: int
    mode: str = "droplets"
    max_cluster_fraction: float = 0.95
    n_droplets: int = 64
    survivor_fraction: float = 0.05
    weight_shape: float = 8.0
    condense_by: float = 0.4
    liquid_density: float = 0.8
    initial_radius: float | None = None
    final_radius: float = 2.0
    center: tuple[float, float, float] | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_particles <= 0:
            raise ConfigurationError("n_particles must be positive")
        if self.box_length <= 0:
            raise ConfigurationError("box_length must be positive")
        if self.n_steps <= 0:
            raise ConfigurationError("n_steps must be positive")
        if self.mode not in ("droplets", "ball"):
            raise ConfigurationError(f"unknown mode {self.mode!r}")
        if not 0 < self.max_cluster_fraction <= 1:
            raise ConfigurationError("max_cluster_fraction must be in (0, 1]")
        if self.n_droplets <= 0:
            raise ConfigurationError("n_droplets must be positive")
        if not 0 < self.survivor_fraction <= 1:
            raise ConfigurationError("survivor_fraction must be in (0, 1]")
        if self.weight_shape <= 0:
            raise ConfigurationError("weight_shape must be positive")
        if not 0 < self.condense_by <= 1:
            raise ConfigurationError("condense_by must be in (0, 1]")
        if self.liquid_density <= 0 or self.final_radius <= 0:
            raise ConfigurationError("liquid_density and radii must be positive")

    def fraction_at(self, s: float) -> float:
        """Condensed fraction at schedule parameter ``s`` in [0, 1].

        Ramps linearly to ``max_cluster_fraction`` by ``s = condense_by``;
        the remainder of the sweep is pure coarsening at constant condensed
        mass (gas exhaustion happens much faster than Ostwald ripening in a
        deeply supercooled gas).
        """
        return np.minimum(s / self.condense_by, 1.0) * self.max_cluster_fraction

    def ball_radius_at(self, s: float) -> float:
        """Ball radius at schedule parameter ``s`` (``"ball"`` mode)."""
        r0 = self.initial_radius if self.initial_radius is not None else self.box_length / 3.0
        return r0 * (1.0 - s) + self.final_radius * s

    def _occupancy_matrix(self, rng: np.random.Generator) -> np.ndarray:
        """Per-step droplet occupancies: nucleation + coarsening.

        Returns an ``(n_steps, K)`` integer matrix whose row ``t`` holds each
        droplet's particle count at schedule step ``t``. The total condensed
        mass grows linearly to ``max_cluster_fraction * N`` (nucleation), and
        most droplets die off smoothly along the way (Ostwald ripening): the
        survivors absorb their mass, so the late configurations hold the same
        mass in far fewer, larger droplets -- which is what empties cells and
        pushes C0/C upward, exactly as in the paper's supercooled gas.
        """
        k = self.n_droplets
        # Near-equal droplet masses: the imbalance the theory describes comes
        # from *where* droplets sit (occupancy fluctuations across domains),
        # not from a heavy-tailed size distribution; large skew would break
        # the heavy side of the balancer in a way Section 4 does not model.
        weights = rng.gamma(shape=self.weight_shape, scale=1.0, size=k)
        n_survivors = max(2, int(round(self.survivor_fraction * k)))
        survivors = rng.choice(k, size=n_survivors, replace=False)
        # Death times of the dying droplets: coarsening overlaps the end of
        # condensation and continues to the end of the sweep.
        death = rng.uniform(0.75 * self.condense_by, 1.0, size=k)
        death[survivors] = np.inf

        s_grid = np.arange(self.n_steps) / max(self.n_steps - 1, 1)
        # Smoothly shrinking share of dying droplets: w * (1 - s/d)^1.5.
        with np.errstate(invalid="ignore"):
            decay = np.clip(1.0 - s_grid[:, None] / death[None, :], 0.0, 1.0) ** 1.5
        decay[:, survivors] = 1.0
        alive = weights[None, :] * decay
        share = alive / alive.sum(axis=1, keepdims=True)

        n_cond = np.round(self.fraction_at(s_grid) * self.n_particles).astype(int)
        raw = share * n_cond[:, None]
        occupancy = np.floor(raw).astype(int)
        remainder = n_cond - occupancy.sum(axis=1)
        frac = raw - occupancy
        for t in range(self.n_steps):
            if remainder[t] > 0:
                top = np.argsort(-frac[t])[: remainder[t]]
                occupancy[t, top] += 1
        return occupancy

    def _droplet_configurations(self) -> Iterator[np.ndarray]:
        """Smooth droplet sweep with nucleation and coarsening.

        All randomness is drawn up front (droplet centres/weights/death
        times, gas positions, per-droplet inside-out site sequences), so
        consecutive configurations differ only by the few particles that
        condensed or migrated between droplets. The load evolves
        quasi-statically, letting the balancer genuinely keep up until its
        structural limit -- as in the paper's slow MD runs.
        """
        rng = generator(self.seed)
        centers = rng.uniform(0.0, self.box_length, size=(self.n_droplets, 3))
        occupancy = self._occupancy_matrix(rng)
        max_occ = occupancy.max(axis=0)

        spacing = (1.0 / self.liquid_density) ** (1.0 / 3.0)
        # Per-droplet site sequence, sorted inside-out: a droplet's particles
        # fill (and vacate) shell by shell, so its radius physically tracks
        # its occupancy at liquid density.
        site_lists: list[np.ndarray] = []
        for k in range(self.n_droplets):
            if max_occ[k] == 0:
                site_lists.append(np.empty((0, 3)))
                continue
            radius = 1.1 * (
                3.0 * max_occ[k] / (4.0 * np.pi * self.liquid_density)
            ) ** (1.0 / 3.0)
            radius = max(radius, spacing)
            site_lists.append(centers[k] + ball_sites_sorted(int(max_occ[k]), radius, rng, spacing))

        gas = rng.uniform(0.0, self.box_length, size=(self.n_particles, 3))
        for t in range(self.n_steps):
            row = occupancy[t]
            n_cond = int(row.sum())
            parts = [site_lists[k][: row[k]] for k in range(self.n_droplets) if row[k]]
            parts.append(gas[: self.n_particles - n_cond])
            positions = np.concatenate(parts, axis=0)
            yield np.mod(positions, self.box_length)

    def configurations(self) -> Iterator[np.ndarray]:
        """Yield the ``n_steps`` position arrays in schedule order."""
        if self.mode == "droplets":
            yield from self._droplet_configurations()
        else:
            rng = generator(self.seed)
            center = np.asarray(
                self.center if self.center is not None else [self.box_length / 2.0] * 3
            )
            for step in range(self.n_steps):
                s = step / max(self.n_steps - 1, 1)
                yield clustered_positions(
                    self.n_particles,
                    self.box_length,
                    cluster_fraction=self.fraction_at(s),
                    cluster_radius=self.ball_radius_at(s),
                    rng=rng,
                    center=center,
                )

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.configurations()
