"""Workload generators: the paper's physical conditions and concentration drivers."""

from .concentration import ConcentrationSchedule
from .presets import PRESETS, Preset, get_preset
from .supercooled import supercooled_config, supercooled_simulation_config

__all__ = [
    "PRESETS",
    "ConcentrationSchedule",
    "Preset",
    "get_preset",
    "supercooled_config",
    "supercooled_simulation_config",
]
