"""Named workload presets: the paper's runs and scaled-down equivalents.

``paper`` presets match the published parameters exactly (N, C, P, m);
``scaled`` presets keep the *shape parameters* that matter to DLB -- the
pillar cross-section m, the density, the cells-per-PE ratio -- while shrinking
N and P so the runs complete in seconds on a laptop. Scaled MD presets add a
weak central attraction to reach the same concentration levels in hundreds of
steps instead of the paper's thousands (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import SimulationConfig
from ..errors import ConfigurationError
from .supercooled import supercooled_simulation_config


@dataclass(frozen=True)
class Preset:
    """A named, fully specified workload.

    Attributes
    ----------
    name:
        Registry key.
    description:
        What it reproduces.
    n_particles, n_pes, cells_per_side, density:
        The headline parameters (``m = cells_per_side / sqrt(n_pes)``).
    steps:
        Recommended run length.
    attraction:
        Nucleation-attraction strength of the scaled MD presets.
    n_attractors:
        Number of nucleation sites (1 = box centre).
    """

    name: str
    description: str
    n_particles: int
    n_pes: int
    cells_per_side: int
    density: float
    steps: int
    attraction: float = 0.0
    n_attractors: int = 1

    @property
    def m(self) -> int:
        """Pillar cross-section of the preset."""
        return self.cells_per_side // math.isqrt(self.n_pes)

    def simulation_config(self, dlb_enabled: bool = True) -> SimulationConfig:
        """Materialise the preset as a :class:`SimulationConfig`."""
        return supercooled_simulation_config(
            n_particles=self.n_particles,
            n_pes=self.n_pes,
            density=self.density,
            cells_per_side=self.cells_per_side,
            dlb_enabled=dlb_enabled,
            attraction=self.attraction,
            n_attractors=self.n_attractors,
        )


#: Registry of named presets.
PRESETS: dict[str, Preset] = {
    # --- the paper's exact runs (Section 3.3) -----------------------------
    "fig5a-paper": Preset(
        name="fig5a-paper",
        description="Figure 5(a): m=4, N=59319, C=13824 (24^3), 36 PEs on T3E",
        n_particles=59319,
        n_pes=36,
        cells_per_side=24,
        density=0.256,
        steps=10000,
    ),
    "fig5b-paper": Preset(
        name="fig5b-paper",
        description="Figure 5(b): m=2, N=8000, C=1728 (12^3), 36 PEs on T3E",
        n_particles=8000,
        n_pes=36,
        cells_per_side=12,
        density=0.256,
        steps=10000,
    ),
    # --- scaled equivalents (same m, density, cells/PE; fewer PEs/particles)
    "fig5a-scaled": Preset(
        name="fig5a-scaled",
        description="Figure 5(a) shape at laptop scale: m=4, N=8000, 9 PEs",
        n_particles=8000,
        n_pes=9,
        cells_per_side=12,
        density=0.256,
        steps=2200,
        attraction=0.3,
        n_attractors=12,
    ),
    "fig5b-scaled": Preset(
        name="fig5b-scaled",
        description="Figure 5(b) shape at laptop scale: m=2, N=1000, 9 PEs",
        n_particles=1000,
        n_pes=9,
        cells_per_side=6,
        density=0.256,
        steps=3000,
        attraction=0.3,
        n_attractors=5,
    ),
    # --- tiny presets for tests and CI-speed benchmarks -------------------
    "quickstart": Preset(
        name="quickstart",
        description="Tiny demo/CI smoke run: m=2, N=1000, 9 PEs, seconds to finish",
        n_particles=1000,
        n_pes=9,
        cells_per_side=6,
        density=0.256,
        steps=120,
        attraction=0.6,
        n_attractors=5,
    ),
    "bench-m2": Preset(
        name="bench-m2",
        description="Benchmark-sized m=2 run: N=1000, 9 PEs",
        n_particles=1000,
        n_pes=9,
        cells_per_side=6,
        density=0.256,
        steps=2500,
        attraction=0.6,
        n_attractors=5,
    ),
    "bench-m4": Preset(
        name="bench-m4",
        description="Benchmark-sized m=4 run: N=8000, 9 PEs",
        n_particles=8000,
        n_pes=9,
        cells_per_side=12,
        density=0.256,
        steps=800,
        attraction=0.6,
        n_attractors=12,
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
