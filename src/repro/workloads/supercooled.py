"""The paper's physical conditions (Section 3.2).

Reduced temperature 0.722 (below Argon's boiling point), reduced density
0.256: a supercooled gas whose particles keep concentrating over the run --
the load-imbalance driver of every experiment. Velocities are rescaled every
50 steps; the cut-off is 2.5; the boundary is periodic.
"""

from __future__ import annotations

import math

from ..config import DecompositionConfig, DLBConfig, MachineConfig, MDConfig, SimulationConfig
from ..errors import ConfigurationError
from ..units import PAPER_CUTOFF, PAPER_DT, PAPER_RESCALE_INTERVAL, PAPER_RHO, PAPER_T_REF


def supercooled_config(
    n_particles: int,
    density: float = PAPER_RHO,
    attraction: float = 0.0,
    n_attractors: int = 1,
) -> MDConfig:
    """MD configuration under the paper's supercooled-gas conditions."""
    return MDConfig(
        n_particles=n_particles,
        density=density,
        temperature=PAPER_T_REF,
        cutoff=PAPER_CUTOFF,
        dt=PAPER_DT,
        rescale_interval=PAPER_RESCALE_INTERVAL,
        attraction=attraction,
        n_attractors=n_attractors,
    )


def cells_for(md: MDConfig) -> int:
    """Largest cell grid whose cells still cover the cut-off: ``floor(L/r_c)``.

    This is the paper's choice: "the size of the cells is equal to r_c, or a
    little larger than r_c".
    """
    return int(md.box_length // md.cutoff)


def supercooled_simulation_config(
    n_particles: int,
    n_pes: int,
    density: float = PAPER_RHO,
    cells_per_side: int | None = None,
    dlb_enabled: bool = True,
    machine: MachineConfig | None = None,
    attraction: float = 0.0,
    n_attractors: int = 1,
) -> SimulationConfig:
    """Full simulation config: supercooled gas + pillar decomposition.

    ``cells_per_side`` defaults to the largest grid compatible with the
    cut-off, rounded *down* to a multiple of ``sqrt(n_pes)`` so the pillar
    partition tiles evenly.
    """
    md = supercooled_config(n_particles, density, attraction, n_attractors)
    pe_side = math.isqrt(n_pes)
    if pe_side * pe_side != n_pes:
        raise ConfigurationError(f"n_pes must be a perfect square, got {n_pes}")
    if cells_per_side is None:
        cells_per_side = (cells_for(md) // pe_side) * pe_side
        if cells_per_side < pe_side:
            raise ConfigurationError(
                f"box of {md.box_length:.2f} cannot host a pillar grid for {n_pes} PEs "
                f"with cut-off {md.cutoff}"
            )
    return SimulationConfig(
        md=md,
        decomposition=DecompositionConfig(
            cells_per_side=cells_per_side, n_pes=n_pes, shape="pillar"
        ),
        dlb=DLBConfig(enabled=dlb_enabled),
        machine=machine if machine is not None else MachineConfig(),
    )
