"""Low-overhead scoped wall-clock timers for the host-side hot paths.

The hot kernels (pair search, decomposed force pass, DLB decision, SPMD
supersteps) are bracketed with ``with scope("name"):``. When no profiler is
active -- the default -- :func:`scope` returns one shared no-op context
manager, so the disabled path costs a dict-free function call and nothing
else (no allocation, no clock read).

When a :class:`Profiler` is enabled it accumulates per-name count/total/
min/max statistics, optionally streams each sample into a
:class:`repro.obs.metrics.MetricsRegistry` histogram, and optionally emits
each scope as a wall-clock span on a :class:`repro.obs.trace.TraceRecorder`
host track -- so one instrumented run yields the table, the histogram and
the timeline at once. ``benchmarks/bench_kernels.py`` reuses the same
scopes to attribute kernel time.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .metrics import MetricsRegistry
    from .trace import TraceRecorder

__all__ = [
    "Profiler",
    "TimerStat",
    "active",
    "disable",
    "enable",
    "profiled",
    "scope",
]


class TimerStat:
    """Aggregate statistics of one named timer."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def update(self, seconds: float) -> None:
        """Fold one sample in."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        """Mean seconds per call."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "TimerStat") -> None:
        """Fold another stat's samples into this one."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> dict[str, float]:
        """Flat summary for reports and JSON dumps."""
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }


class _Scope:
    """Active timing scope: context manager recording on exit."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Scope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        self._profiler.record(self._name, end - self._start, start=self._start)


class _NullScope:
    """Shared do-nothing scope for the disabled path (allocation-free)."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SCOPE = _NullScope()


class Profiler:
    """Accumulates scoped wall-clock timings.

    Parameters
    ----------
    trace:
        Optional trace recorder; each recorded scope becomes a span on the
        host wall-clock track (timestamps relative to the profiler's epoch).
    registry:
        Optional metrics registry; each sample is observed into the
        ``repro_host_kernel_seconds`` histogram with a ``kernel`` label.
    """

    def __init__(
        self,
        trace: "TraceRecorder | None" = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.trace = trace
        self.registry = registry
        self.stats: dict[str, TimerStat] = {}
        self.epoch = time.perf_counter()

    def timer(self, name: str) -> _Scope:
        """A context manager timing one ``with`` block under ``name``."""
        return _Scope(self, name)

    def record(self, name: str, seconds: float, start: float | None = None) -> None:
        """File one sample (``start`` is an absolute perf_counter stamp)."""
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = TimerStat()
        stat.update(seconds)
        if self.registry is not None:
            self.registry.histogram(
                "repro_host_kernel_seconds", "host wall-clock time per kernel scope"
            ).observe(seconds, kernel=name)
        if self.trace is not None:
            offset = (start - self.epoch) if start is not None else 0.0
            self.trace.host_span(name, offset, seconds)

    def state_dict(self) -> dict[str, dict[str, float]]:
        """Portable snapshot of every stat (for cross-process merging).

        Worker processes snapshot their local profiler on shutdown and ship
        the plain-dict state over a pipe; the driver folds it back in with
        :meth:`merge_state` so one profile covers all processes.
        """
        return {
            name: {
                "count": stat.count,
                "total": stat.total,
                "min": stat.min if stat.count else float("inf"),
                "max": stat.max,
            }
            for name, stat in self.stats.items()
        }

    def merge_state(self, state: dict[str, dict[str, float]], prefix: str = "") -> None:
        """Fold a :meth:`state_dict` snapshot in (optionally name-prefixed)."""
        for name, data in state.items():
            incoming = TimerStat()
            incoming.count = int(data["count"])
            incoming.total = float(data["total"])
            incoming.min = float(data["min"])
            incoming.max = float(data["max"])
            key = prefix + name
            stat = self.stats.get(key)
            if stat is None:
                stat = self.stats[key] = TimerStat()
            stat.merge(incoming)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Per-name summaries, sorted by total time descending."""
        return {
            name: stat.as_dict()
            for name, stat in sorted(
                self.stats.items(), key=lambda item: -item[1].total
            )
        }

    def table(self, title: str = "host kernel profile (wall clock)") -> str:
        """ASCII summary table of every recorded scope."""
        from ..reporting.tables import format_table  # lazy: avoids an import cycle

        rows = [
            (name, stat.count, stat.total, stat.mean, stat.max)
            for name, stat in sorted(
                self.stats.items(), key=lambda item: -item[1].total
            )
        ]
        return format_table(
            ["scope", "calls", "total [s]", "mean [s]", "max [s]"], rows, title=title
        )


#: The globally active profiler (None = disabled, the default).
_ACTIVE: Profiler | None = None


def enable(profiler: Profiler | None = None) -> Profiler:
    """Install ``profiler`` (or a fresh one) as the active profiler."""
    global _ACTIVE
    _ACTIVE = profiler if profiler is not None else Profiler()
    return _ACTIVE


def disable() -> Profiler | None:
    """Deactivate profiling; returns the previously active profiler."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def active() -> Profiler | None:
    """The currently active profiler, if any."""
    return _ACTIVE


def scope(name: str) -> _Scope | _NullScope:
    """Timing scope under the active profiler; a shared no-op when disabled."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_SCOPE
    return profiler.timer(name)


def profiled(name: str | None = None) -> Callable:
    """Decorator timing every call of the wrapped function under ``name``.

    The active profiler is looked up per call, so decorated functions follow
    :func:`enable`/:func:`disable` dynamically at zero cost when disabled.
    """

    def decorate(func: Callable) -> Callable:
        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with scope(label):
                return func(*args, **kwargs)

        return wrapper

    return decorate
