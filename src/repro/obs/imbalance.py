"""Per-step load-imbalance analytics: ratio, efficiency, stragglers, benefit.

The :class:`ImbalanceTracker` is fed every accounted step with the per-PE
total times (and, on DLB runs, the counterfactual no-balance step time the
accountant derives from the same configuration) and accumulates:

* the max/mean PE-time ratio and its running mean;
* the paper's parallel-efficiency estimate (mean/max — what fraction of the
  barrier time the average PE was busy);
* straggler attribution (how often each PE set the barrier);
* the cumulative DLB benefit: Σ(counterfactual Tt − actual Tt), i.e. the
  simulated seconds the balancer saved versus leaving every cell at home.

All quantities derive from the simulated clock, so they are deterministic
across execution backends and checkpointable (the tracker snapshots with the
runner). :func:`collect_imbalance` exports the summary through the metrics
registry; :func:`repro.reporting.flight.flight_report` renders it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .metrics import MetricsRegistry

__all__ = ["ImbalanceTracker", "collect_imbalance"]


class ImbalanceTracker:
    """Accumulates per-step load-imbalance statistics for one run."""

    __slots__ = (
        "n_pes",
        "steps",
        "sum_ratio",
        "sum_efficiency",
        "actual_seconds",
        "counterfactual_seconds",
        "benefit_seconds",
        "counterfactual_steps",
        "straggler_counts",
        "worst_ratio",
        "worst_step",
    )

    def __init__(self, n_pes: int) -> None:
        if n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {n_pes}")
        self.n_pes = int(n_pes)
        self.steps = 0
        self.sum_ratio = 0.0
        self.sum_efficiency = 0.0
        self.actual_seconds = 0.0
        self.counterfactual_seconds = 0.0
        self.benefit_seconds = 0.0
        self.counterfactual_steps = 0
        self.straggler_counts = np.zeros(self.n_pes, dtype=np.int64)
        self.worst_ratio = 0.0
        self.worst_step = -1

    def observe(
        self,
        step: int,
        totals: np.ndarray,
        tt: float,
        counterfactual_tt: float | None = None,
    ) -> None:
        """Fold one accounted step in.

        ``totals`` is the per-PE total time array the accountant returned,
        ``tt`` the step's barrier time, ``counterfactual_tt`` the same step's
        barrier time with every cell at its home PE (None on plain-DDM runs,
        where actual and counterfactual coincide by construction).
        """
        totals = np.asarray(totals, dtype=np.float64)
        mean = float(totals.mean())
        peak = float(totals.max())
        ratio = peak / mean if mean > 0 else 1.0
        self.steps += 1
        self.sum_ratio += ratio
        self.sum_efficiency += (mean / peak) if peak > 0 else 1.0
        self.actual_seconds += float(tt)
        self.straggler_counts[int(np.argmax(totals))] += 1
        if ratio > self.worst_ratio:
            self.worst_ratio = ratio
            self.worst_step = int(step)
        if counterfactual_tt is not None:
            self.counterfactual_steps += 1
            self.counterfactual_seconds += float(counterfactual_tt)
            self.benefit_seconds += float(counterfactual_tt) - float(tt)

    @property
    def mean_ratio(self) -> float:
        """Mean max/mean PE-time ratio over the observed steps."""
        return self.sum_ratio / self.steps if self.steps else 1.0

    @property
    def mean_efficiency(self) -> float:
        """Mean parallel-efficiency estimate (mean/max) over the steps."""
        return self.sum_efficiency / self.steps if self.steps else 1.0

    @property
    def top_straggler(self) -> int | None:
        """The PE that set the barrier most often (None before any step)."""
        if self.steps == 0:
            return None
        return int(np.argmax(self.straggler_counts))

    def summary(self) -> dict:
        """JSON-friendly summary for run metadata, events and reports."""
        return {
            "steps": self.steps,
            "mean_ratio": self.mean_ratio,
            "mean_efficiency": self.mean_efficiency,
            "worst_ratio": self.worst_ratio,
            "worst_step": self.worst_step,
            "actual_seconds": self.actual_seconds,
            "counterfactual_seconds": (
                self.counterfactual_seconds if self.counterfactual_steps else None
            ),
            "dlb_benefit_seconds": (
                self.benefit_seconds if self.counterfactual_steps else None
            ),
            "top_straggler": self.top_straggler,
            "straggler_counts": self.straggler_counts.tolist(),
        }

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of every accumulator (resume keeps analytics exact)."""
        return {
            "steps": self.steps,
            "sum_ratio": self.sum_ratio,
            "sum_efficiency": self.sum_efficiency,
            "actual_seconds": self.actual_seconds,
            "counterfactual_seconds": self.counterfactual_seconds,
            "benefit_seconds": self.benefit_seconds,
            "counterfactual_steps": self.counterfactual_steps,
            "straggler_counts": self.straggler_counts.copy(),
            "worst_ratio": self.worst_ratio,
            "worst_step": self.worst_step,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.steps = int(state["steps"])
        self.sum_ratio = float(state["sum_ratio"])
        self.sum_efficiency = float(state["sum_efficiency"])
        self.actual_seconds = float(state["actual_seconds"])
        self.counterfactual_seconds = float(state["counterfactual_seconds"])
        self.benefit_seconds = float(state["benefit_seconds"])
        self.counterfactual_steps = int(state["counterfactual_steps"])
        self.straggler_counts[...] = state["straggler_counts"]
        self.worst_ratio = float(state["worst_ratio"])
        self.worst_step = int(state["worst_step"])


def collect_imbalance(
    registry: "MetricsRegistry", tracker: ImbalanceTracker, **labels: str
) -> None:
    """Export a tracker's summary through the metrics registry.

    Gauges are overwritten (idempotent by nature); the straggler counter is
    advanced to the tracker's totals via the registry's delta pattern so
    re-collection never double-counts.
    """
    from .metrics import _set_total

    if tracker.steps == 0:
        return
    registry.gauge(
        "repro_imbalance_ratio_mean", "mean max/mean PE step-time ratio"
    ).set(tracker.mean_ratio, **labels)
    registry.gauge(
        "repro_imbalance_efficiency_mean",
        "mean parallel-efficiency estimate (mean/max PE time)",
    ).set(tracker.mean_efficiency, **labels)
    registry.gauge(
        "repro_imbalance_ratio_worst", "largest observed max/mean PE-time ratio"
    ).set(tracker.worst_ratio, **labels)
    straggler = registry.counter(
        "repro_straggler_steps_total", "steps on which a PE set the barrier"
    )
    for pe, count in enumerate(tracker.straggler_counts.tolist()):
        if count:
            _set_total(straggler, float(count), pe=str(pe), **labels)
    if tracker.counterfactual_steps:
        registry.gauge(
            "repro_dlb_benefit_seconds",
            "simulated seconds saved vs the no-balance counterfactual",
        ).set(tracker.benefit_seconds, **labels)
