"""Counter/Gauge/Histogram registry with Prometheus-text and JSON-lines export.

One :class:`MetricsRegistry` collects everything a run produces -- the
pair-search counters (:class:`repro.md.neighbors.NeighborStats`), the traffic
log's per-tag bytes/messages, the balancer's activity, and the per-step
timing series -- and serialises it as either Prometheus text exposition
format (``.prom``) or JSON lines (``.jsonl``), so the same numbers feed
dashboards and ad-hoc analysis alike.

Metrics are labelled: ``counter.inc(3, mode="dlb")`` keeps one value per
label set, which is how a single registry holds the DDM and DLB-DDM sides of
a comparison run.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from ..dlb.balancer import BalancerStats
    from ..md.neighbors import NeighborStats
    from ..parallel.instrumentation import TimingLog
    from ..parallel.message import TrafficLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "collect_balancer",
    "collect_neighbor_stats",
    "collect_service",
    "collect_timing",
    "collect_traffic",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for (simulated or host) seconds: log-spaced
#: from microseconds to tens of seconds.
TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ConfigurationError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline must be escaped (in that order, so
    the escaping backslashes are not themselves re-escaped).
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Common machinery of all metric types."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def samples(self) -> list[tuple[str, str, float]]:
        """``(sample_name, label_string, value)`` triples for the exporter."""
        raise NotImplementedError

    def to_records(self) -> list[dict]:
        """JSON-serialisable records (one per label set) for JSONL export."""
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be non-negative) to the labelled value."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (got {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one label set (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[str, str, float]]:
        return [
            (self.name, _format_labels(key), value)
            for key, value in sorted(self._values.items())
        ]

    def to_records(self) -> list[dict]:
        return [
            {"name": self.name, "type": self.kind, "labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A point-in-time value, one per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Record the labelled value (overwrites)."""
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        """Current value of one label set (NaN if never set)."""
        return self._values.get(_label_key(labels), math.nan)

    def samples(self) -> list[tuple[str, str, float]]:
        return [
            (self.name, _format_labels(key), value)
            for key, value in sorted(self._values.items())
        ]

    def to_records(self) -> list[dict]:
        return [
            {"name": self.name, "type": self.kind, "labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds, ascending; an implicit ``+Inf``
    bucket always exists.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: tuple[float, ...] = TIME_BUCKETS
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} buckets must be strictly ascending: {bounds}"
            )
        self.buckets = bounds
        self._states: dict[LabelKey, _HistogramState] = {}

    def observe(self, value: float, **labels: str) -> None:
        """File one observation into the labelled histogram."""
        key = _label_key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state.bucket_counts[index] += 1
                break
        state.total += float(value)
        state.count += 1

    def count(self, **labels: str) -> int:
        """Number of observations of one label set."""
        state = self._states.get(_label_key(labels))
        return state.count if state is not None else 0

    def sum(self, **labels: str) -> float:
        """Sum of observations of one label set."""
        state = self._states.get(_label_key(labels))
        return state.total if state is not None else 0.0

    def samples(self) -> list[tuple[str, str, float]]:
        out: list[tuple[str, str, float]] = []
        for key, state in sorted(self._states.items()):
            cumulative = 0
            for bound, in_bucket in zip(self.buckets, state.bucket_counts):
                cumulative += in_bucket
                out.append(
                    (f"{self.name}_bucket", _format_labels(key, f'le="{bound:g}"'),
                     float(cumulative))
                )
            out.append(
                (f"{self.name}_bucket", _format_labels(key, 'le="+Inf"'),
                 float(state.count))
            )
            out.append((f"{self.name}_sum", _format_labels(key), state.total))
            out.append((f"{self.name}_count", _format_labels(key), float(state.count)))
        return out

    def to_records(self) -> list[dict]:
        return [
            {
                "name": self.name,
                "type": self.kind,
                "labels": dict(key),
                "buckets": {
                    f"{bound:g}": count
                    for bound, count in zip(self.buckets, state.bucket_counts)
                },
                "sum": state.total,
                "count": state.count,
            }
            for key, state in sorted(self._states.items())
        ]


class MetricsRegistry:
    """Registry of named metrics with get-or-create accessors and exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = TIME_BUCKETS
    ) -> Histogram:
        """Get or create a histogram (buckets only apply on first creation)."""
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, buckets=buckets
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> list[_Metric]:
        """All registered metrics in registration order."""
        return list(self._metrics.values())

    # -- exporters ---------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (the ``.prom`` file content)."""
        lines: list[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, label_str, value in metric.samples():
                lines.append(f"{sample_name}{label_str} {value:g}")
        return "\n".join(lines) + "\n"

    def to_jsonl(self) -> str:
        """One JSON record per metric/label-set, newline-delimited."""
        lines = [
            json.dumps(record, sort_keys=True)
            for metric in self._metrics.values()
            for record in metric.to_records()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str | Path, format: str | None = None) -> Path:
        """Write the registry to ``path``.

        ``format`` is ``"prom"`` or ``"jsonl"``; when ``None`` it is inferred
        from the suffix (``.jsonl``/``.json`` -> JSONL, anything else ->
        Prometheus text).
        """
        path = Path(path)
        if format is None:
            format = "jsonl" if path.suffix in (".jsonl", ".json") else "prom"
        if format == "prom":
            path.write_text(self.to_prometheus_text())
        elif format == "jsonl":
            path.write_text(self.to_jsonl())
        else:
            raise ConfigurationError(f"unknown metrics format {format!r}")
        return path


# -- collectors ------------------------------------------------------------
#
# Each collector snapshots one of the repo's existing stats objects into the
# registry at the end of a run. Cumulative sources are folded in as deltas
# against the counter's current value, so re-collecting (a second run() on
# the same runner, or an explicit collect after an automatic one) is
# idempotent rather than double-counting.


def _set_total(counter: Counter, total: float, **labels: str) -> None:
    """Advance ``counter`` to ``total`` (no-op if it is already there)."""
    delta = total - counter.value(**labels)
    if delta > 0:
        counter.inc(delta, **labels)


def collect_neighbor_stats(
    registry: MetricsRegistry, stats: "NeighborStats", **labels: str
) -> None:
    """File pair-search counters (Verlet rebuilds/reuses, selectivity)."""
    _set_total(
        registry.counter("repro_neighbor_rebuilds_total", "full pair searches executed"),
        stats.rebuilds, **labels,
    )
    _set_total(
        registry.counter(
            "repro_neighbor_reuses_total",
            "force evaluations served from the Verlet cache",
        ),
        stats.reuses, **labels,
    )
    _set_total(
        registry.counter(
            "repro_neighbor_candidate_pairs_total", "candidate pairs emitted by searches"
        ),
        stats.total_candidates, **labels,
    )
    _set_total(
        registry.counter(
            "repro_neighbor_accepted_pairs_total", "pairs within the true cut-off"
        ),
        stats.total_accepted, **labels,
    )
    registry.gauge(
        "repro_neighbor_reuse_ratio", "fraction of evaluations without a search"
    ).set(stats.reuse_ratio, **labels)
    registry.gauge(
        "repro_neighbor_acceptance_ratio", "accepted / candidate pairs"
    ).set(stats.acceptance_ratio, **labels)


def collect_traffic(
    registry: MetricsRegistry, traffic: "TrafficLog", **labels: str
) -> None:
    """File the traffic log's per-tag bytes/messages and machine totals."""
    summary = traffic.summary()
    bytes_counter = registry.counter(
        "repro_traffic_bytes_total", "bytes sent on the simulated network, by tag"
    )
    messages_counter = registry.counter(
        "repro_traffic_messages_total", "messages sent on the simulated network, by tag"
    )
    for tag, tag_stats in summary["by_tag"].items():
        _set_total(bytes_counter, tag_stats["bytes"], tag=tag, **labels)
        _set_total(messages_counter, tag_stats["messages"], tag=tag, **labels)
    _set_total(
        registry.counter("repro_traffic_total_bytes", "total bytes sent machine-wide"),
        summary["total_bytes"], **labels,
    )
    _set_total(
        registry.counter(
            "repro_traffic_total_messages", "total messages sent machine-wide"
        ),
        summary["total_messages"], **labels,
    )
    registry.gauge(
        "repro_traffic_max_pe_bytes_sent", "bytes sent by the busiest PE"
    ).set(summary["max_pe_bytes_sent"], **labels)


def collect_balancer(
    registry: MetricsRegistry, stats: "BalancerStats", **labels: str
) -> None:
    """File the balancer's cumulative activity counters."""
    _set_total(
        registry.counter("repro_dlb_rounds_total", "redistribution rounds executed"),
        stats.steps, **labels,
    )
    _set_total(
        registry.counter("repro_dlb_lends_total", "cells lent to a neighbour (Case 1)"),
        stats.lends, **labels,
    )
    _set_total(
        registry.counter(
            "repro_dlb_returns_total", "borrowed cells returned (Cases 2-3)"
        ),
        stats.returns, **labels,
    )
    _set_total(
        registry.counter("repro_dlb_idle_rounds_total", "rounds that moved nothing"),
        stats.idle_steps, **labels,
    )
    if stats.moves_per_step:
        registry.gauge(
            "repro_dlb_moves_per_round_max", "largest single-round move count"
        ).set(max(stats.moves_per_step), **labels)


def collect_timing(
    registry: MetricsRegistry, log: "TimingLog", **labels: str
) -> None:
    """File the per-step timing series: Tt summary and imbalance."""
    if not len(log):
        return
    tt = log.tt
    spread = log.spread
    registry.gauge("repro_step_time_mean_seconds", "mean Tt over the run").set(
        float(tt.mean()), **labels
    )
    registry.gauge("repro_step_time_max_seconds", "max Tt over the run").set(
        float(tt.max()), **labels
    )
    registry.gauge(
        "repro_step_imbalance_last_seconds", "final-step Fmax - Fmin"
    ).set(float(spread[-1]), **labels)
    histogram = registry.histogram(
        "repro_step_imbalance_seconds", "per-step Fmax - Fmin distribution"
    )
    # The log is append-only: observing from the current count onward keeps
    # re-collection idempotent.
    for value in spread[histogram.count(**labels):]:
        histogram.observe(float(value), **labels)


def collect_service(registry: MetricsRegistry, snapshot: dict, **labels: str) -> None:
    """File a simulation-service snapshot: queue depth and run states.

    ``snapshot`` is the plain-dict view the service exposes (queue depth,
    in-flight claims, active streams, drain flag); the point-in-time values
    land as gauges on every scrape, while the service's request/dedup
    counters increment live and are not re-collected here.
    """
    registry.gauge(
        "repro_service_queue_depth", "runs waiting in the service queue"
    ).set(float(snapshot.get("queue_depth", 0)), **labels)
    registry.gauge(
        "repro_service_inflight_runs", "runs this service has claimed and not resolved"
    ).set(float(snapshot.get("inflight", 0)), **labels)
    registry.gauge(
        "repro_service_active_streams", "open progress-stream connections"
    ).set(float(snapshot.get("streams", 0)), **labels)
    registry.gauge(
        "repro_service_draining", "1 while a SIGTERM drain is in progress"
    ).set(1.0 if snapshot.get("draining") else 0.0, **labels)
    registry.gauge(
        "repro_service_fleet_instances",
        "service instances with a live heartbeat on this run store",
    ).set(float(snapshot.get("instances", 0)), **labels)
