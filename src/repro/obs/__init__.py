"""Unified observability layer: traces, metrics and profiling.

Three cooperating pieces (see DESIGN.md § Observability):

``repro.obs.trace``
    Chrome trace-event recording -- one simulated-clock track per virtual
    PE (force / halo-comm / DLB / integrate spans, cell-migration instants)
    plus a host wall-clock track; loadable in Perfetto / ``chrome://tracing``.
``repro.obs.metrics``
    Counter/Gauge/Histogram registry with Prometheus-text and JSON-lines
    exporters, fed by the pair-search, traffic, balancer and timing stats.
``repro.obs.profiler``
    Low-overhead scoped wall-clock timers wired into the host-side hot
    paths; feeds both the registry and the trace's host track.

:class:`Observability` bundles the three behind one nullable handle: the
runners accept ``observability=None`` (the default) and skip every hook, so
the un-instrumented path stays allocation-free.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_balancer,
    collect_neighbor_stats,
    collect_timing,
    collect_traffic,
)
from .profiler import Profiler, profiled, scope
from .trace import TraceRecorder, validate_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Profiler",
    "TraceRecorder",
    "collect_balancer",
    "collect_neighbor_stats",
    "collect_timing",
    "collect_traffic",
    "profiled",
    "scope",
    "validate_trace",
]


@dataclass
class Observability:
    """The nullable bundle the runners are instrumented against.

    Any member may be ``None``; a runner handed the bundle only exercises
    the members that exist. Construct via :meth:`create` to get the three
    wired together (profiler scopes land on the trace's host track and in
    the registry's histograms).
    """

    trace: TraceRecorder | None = None
    metrics: MetricsRegistry | None = None
    profiler: Profiler | None = None

    @classmethod
    def create(
        cls,
        trace: bool = True,
        metrics: bool = True,
        profiler: bool = True,
    ) -> "Observability":
        """Build a bundle with the requested members, cross-wired."""
        recorder = TraceRecorder() if trace else None
        registry = MetricsRegistry() if metrics else None
        prof = Profiler(trace=recorder, registry=registry) if profiler else None
        return cls(trace=recorder, metrics=registry, profiler=prof)

    @contextmanager
    def activate(self) -> Iterator["Observability"]:
        """Install this bundle's profiler as the global scope target.

        The hot-path ``scope("...")`` hooks only record into the *active*
        profiler; wrap the instrumented run in this context so host kernel
        timings land here, and the previous profiler (usually none) comes
        back afterwards.
        """
        from . import profiler as _profiler_module

        if self.profiler is None:
            yield self
            return
        previous = _profiler_module.active()
        _profiler_module.enable(self.profiler)
        try:
            yield self
        finally:
            if previous is None:
                _profiler_module.disable()
            else:
                _profiler_module.enable(previous)
