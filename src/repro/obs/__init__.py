"""Unified observability layer: traces, metrics and profiling.

Three cooperating pieces (see DESIGN.md § Observability):

``repro.obs.trace``
    Chrome trace-event recording -- one simulated-clock track per virtual
    PE (force / halo-comm / DLB / integrate spans, cell-migration instants)
    plus a host wall-clock track; loadable in Perfetto / ``chrome://tracing``.
``repro.obs.metrics``
    Counter/Gauge/Histogram registry with Prometheus-text and JSON-lines
    exporters, fed by the pair-search, traffic, balancer and timing stats.
``repro.obs.profiler``
    Low-overhead scoped wall-clock timers wired into the host-side hot
    paths; feeds both the registry and the trace's host track.
``repro.obs.events``
    The flight recorder: a schema-versioned, append-only JSONL event log of
    every consequential run event (balancer decisions with their timing
    inputs, migrations, faults, audits, checkpoints, engine lifecycle) with
    deterministic ``(step, seq)`` ordering across execution backends.
``repro.obs.imbalance``
    Per-step load-imbalance analytics: max/mean PE-time ratio, the paper's
    efficiency estimate, straggler attribution and the cumulative DLB
    benefit versus a no-balance counterfactual.

:class:`Observability` bundles these behind one nullable handle: the
runners accept ``observability=None`` (the default) and skip every hook, so
the un-instrumented path stays allocation-free.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from .events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventLog,
    read_events,
    summarize_events,
    validate_events,
)
from .imbalance import ImbalanceTracker, collect_imbalance
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_balancer,
    collect_neighbor_stats,
    collect_service,
    collect_timing,
    collect_traffic,
)
from .profiler import Profiler, profiled, scope
from .trace import TraceRecorder, validate_trace

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "ImbalanceTracker",
    "MetricsRegistry",
    "Observability",
    "Profiler",
    "TraceRecorder",
    "collect_balancer",
    "collect_imbalance",
    "collect_neighbor_stats",
    "collect_service",
    "collect_timing",
    "collect_traffic",
    "profiled",
    "read_events",
    "scope",
    "summarize_events",
    "validate_events",
    "validate_trace",
]


@dataclass
class Observability:
    """The nullable bundle the runners are instrumented against.

    Any member may be ``None``; a runner handed the bundle only exercises
    the members that exist. Construct via :meth:`create` to get the three
    wired together (profiler scopes land on the trace's host track and in
    the registry's histograms).
    """

    trace: TraceRecorder | None = None
    metrics: MetricsRegistry | None = None
    profiler: Profiler | None = None
    events: EventLog | None = None
    #: Destination for periodic metrics flushes (set by the CLI together
    #: with ``metrics_every``); ignored when either is unset.
    metrics_path: str | None = None
    #: Flush the registry to ``metrics_path`` every N steps (0 = only the
    #: final write the caller performs itself).
    metrics_every: int = 0

    @classmethod
    def create(
        cls,
        trace: bool = True,
        metrics: bool = True,
        profiler: bool = True,
        events: bool = False,
    ) -> "Observability":
        """Build a bundle with the requested members, cross-wired."""
        recorder = TraceRecorder() if trace else None
        registry = MetricsRegistry() if metrics else None
        prof = Profiler(trace=recorder, registry=registry) if profiler else None
        log = EventLog() if events else None
        return cls(trace=recorder, metrics=registry, profiler=prof, events=log)

    def maybe_flush(self, step: int) -> None:
        """Write the metrics registry to ``metrics_path`` on its cadence.

        Called by the runners once per step; a no-op unless both a path and
        a positive ``metrics_every`` are configured, so long runs expose
        progress without changing the single-final-write default.
        """
        if (
            self.metrics is None
            or self.metrics_path is None
            or self.metrics_every <= 0
            or step % self.metrics_every != 0
        ):
            return
        self.metrics.write(self.metrics_path)

    @contextmanager
    def activate(self) -> Iterator["Observability"]:
        """Install this bundle's profiler as the global scope target.

        The hot-path ``scope("...")`` hooks only record into the *active*
        profiler; wrap the instrumented run in this context so host kernel
        timings land here, and the previous profiler (usually none) comes
        back afterwards.
        """
        from . import profiler as _profiler_module

        if self.profiler is None:
            yield self
            return
        previous = _profiler_module.active()
        _profiler_module.enable(self.profiler)
        try:
            yield self
        finally:
            if previous is None:
                _profiler_module.disable()
            else:
                _profiler_module.enable(previous)
