"""The run flight recorder: a schema-versioned, append-only JSONL event log.

Every consequential run event — balancer decisions with their full
:class:`~repro.dlb.views.TimingView` inputs, cell migrations, fault
injections, invariant-audit outcomes and run boundaries — is recorded as one
JSON object with deterministic ``(step, seq)`` ordering. The log is split
into two channels:

``sim`` (the canonical channel)
    Events of the *simulated* machine. Every emission happens on the driver
    in program order, so the serialised sim channel is byte-identical across
    execution backends: a sequential and a multiprocess run of the same
    workload write the same file, including under fault injection and across
    kill/resume (the buffer rides in the runner's checkpoint state).

``host``
    Events of the *host* execution environment — engine worker lifecycle,
    checkpoint writes/resumes. These are real and recorded, but inherently
    backend-dependent (a sequential engine has no worker processes), so they
    are excluded from the determinism contract and written to a separate
    sidecar file.

Like the profiler and trace recorder, the disabled path is allocation-free:
runners hold a nullable log and every hook is a single ``None``/``enabled``
check (the ``parallel_step_events_off`` perf gate enforces ≤1.05× overhead).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from ..errors import ConfigurationError, SchemaError

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_KINDS",
    "EventLog",
    "read_events",
    "summarize_events",
    "validate_events",
]

#: Version of the event-record schema (the ``v`` field of every record).
EVENT_SCHEMA_VERSION = 1

#: Known event kinds of the sim channel (host-channel kinds are prefixed
#: ``engine.`` / ``checkpoint.`` and validated only loosely).
EVENT_KINDS = frozenset(
    {
        "run.start",
        "run.end",
        "dlb.decision",
        "cell.migrate",
        "fault.message",
        "fault.compute",
        "audit",
    }
)

#: Fields every record carries, in serialisation-independent terms.
_REQUIRED_FIELDS = ("v", "step", "seq", "kind")


def _json_default(value: Any) -> Any:
    """Serialise numpy scalars/arrays that leak into event fields."""
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 1) == 0:
        return item()
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    raise TypeError(f"event field of type {type(value)!r} is not JSON-serialisable")


def _dump(record: dict) -> str:
    """The canonical one-line serialisation (sorted keys, no whitespace)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), default=_json_default
    )


class EventLog:
    """Append-only event buffer with two channels and monotone sequencing.

    Events accumulate in memory (like the run's step records) and are
    written once at the end of a run; a killed run's partial file is simply
    superseded by the resumed run's complete one, which — because the buffer
    and the sequence counter are checkpointed with the runner — is
    byte-identical to an uninterrupted run's.
    """

    __slots__ = ("enabled", "_records", "_host", "_seq", "_host_seq")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._records: list[dict] = []
        self._host: list[dict] = []
        self._seq = 0
        self._host_seq = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[dict]:
        """The sim-channel records, in ``(step, seq)`` emission order."""
        return list(self._records)

    @property
    def host_records(self) -> list[dict]:
        """The host-channel records (backend-dependent, non-canonical)."""
        return list(self._host)

    def emit(self, step: int, kind: str, **fields: Any) -> None:
        """Append one sim-channel event (no-op when disabled).

        ``step`` is the simulation step the event belongs to; emissions must
        happen in non-decreasing step order (they do, because every sim
        emission is a driver-side program point inside the step loop).
        """
        if not self.enabled:
            return
        record = {"v": EVENT_SCHEMA_VERSION, "step": int(step), "seq": self._seq,
                  "kind": kind}
        record.update(fields)
        self._records.append(record)
        self._seq += 1

    def emit_host(self, step: int, kind: str, **fields: Any) -> None:
        """Append one host-channel event (no-op when disabled)."""
        if not self.enabled:
            return
        record = {"v": EVENT_SCHEMA_VERSION, "step": int(step),
                  "seq": self._host_seq, "kind": kind}
        record.update(fields)
        self._host.append(record)
        self._host_seq += 1

    # -- serialisation -------------------------------------------------------

    def lines(self, channel: str = "sim") -> list[str]:
        """Canonical JSONL lines of one channel."""
        if channel == "sim":
            records: Iterable[dict] = self._records
        elif channel == "host":
            records = self._host
        else:
            raise ConfigurationError(f"unknown event channel {channel!r}")
        return [_dump(record) for record in records]

    def write(self, path: str | Path, channel: str = "sim") -> Path:
        """Write one channel as JSONL; returns the path written."""
        path = Path(path)
        lines = self.lines(channel)
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the canonical (sim) channel and its sequence counter.

        Host events are deliberately excluded: they describe *this
        process's* execution environment and must not leak into a resumed
        run on a different host.
        """
        return {"seq": self._seq, "records": [dict(r) for r in self._records]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._seq = int(state["seq"])
        self._records = [dict(r) for r in state["records"]]


# -- reading and validation --------------------------------------------------


def read_events(path: str | Path) -> list[dict]:
    """Load an events JSONL file written by :meth:`EventLog.write`."""
    path = Path(path)
    records: list[dict] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}:{number}: not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise SchemaError(f"{path}:{number}: event must be a JSON object")
        records.append(record)
    return records


def validate_events(records: list[dict], source: str = "event log") -> None:
    """Check schema version, required fields and ``(step, seq)`` ordering.

    Raises :class:`~repro.errors.SchemaError` on the first problem. Unknown
    kinds are rejected for the sim-channel vocabulary; host-channel files
    (``engine.*`` / ``checkpoint.*`` kinds) pass the same structural checks.
    """
    previous: tuple[int, int] | None = None
    for index, record in enumerate(records):
        where = f"{source} record {index}"
        for field in _REQUIRED_FIELDS:
            if field not in record:
                raise SchemaError(f"{where}: missing required field {field!r}")
        if record["v"] != EVENT_SCHEMA_VERSION:
            raise SchemaError(
                f"{where}: schema version {record['v']!r} != {EVENT_SCHEMA_VERSION}"
            )
        if not isinstance(record["step"], int) or not isinstance(record["seq"], int):
            raise SchemaError(f"{where}: step/seq must be integers")
        kind = record["kind"]
        if not isinstance(kind, str) or not kind:
            raise SchemaError(f"{where}: kind must be a non-empty string")
        if kind not in EVENT_KINDS and not kind.startswith(("engine.", "checkpoint.")):
            raise SchemaError(f"{where}: unknown event kind {kind!r}")
        key = (record["step"], record["seq"])
        if previous is not None:
            if record["seq"] != previous[1] + 1:
                raise SchemaError(
                    f"{where}: sequence number {record['seq']} does not follow "
                    f"{previous[1]} (the log is append-only and gap-free)"
                )
            if record["step"] < previous[0]:
                raise SchemaError(
                    f"{where}: step {record['step']} goes backwards from "
                    f"{previous[0]} (events are emitted in step order)"
                )
        elif record["seq"] != 0:
            raise SchemaError(f"{where}: first record must have seq 0")
        previous = key


def summarize_events(records: list[dict]) -> dict:
    """Aggregate a record list into a JSON-friendly summary.

    Counts per kind, the step span, total cells moved (lends/returns),
    fault and audit tallies — the data behind ``repro events summary``.
    """
    kinds: dict[str, int] = {}
    steps: list[int] = []
    lends = returns = 0
    fault_messages = fault_stalls = 0
    audits = violations = 0
    imbalance: dict | None = None
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        steps.append(int(record.get("step", 0)))
        kind = record["kind"]
        if kind == "cell.migrate":
            if record.get("case") == "send_own":
                lends += 1
            else:
                returns += 1
        elif kind == "fault.message":
            fault_messages += 1
        elif kind == "fault.compute":
            fault_stalls += 1
        elif kind == "audit":
            audits += 1
            violations += int(record.get("problems", 0))
        elif kind == "run.end" and isinstance(record.get("imbalance"), dict):
            imbalance = record["imbalance"]
    return {
        "events": len(records),
        "kinds": dict(sorted(kinds.items())),
        "first_step": min(steps) if steps else None,
        "last_step": max(steps) if steps else None,
        "lends": lends,
        "returns": returns,
        "fault_messages": fault_messages,
        "fault_stalls": fault_stalls,
        "audits": audits,
        "audit_violations": violations,
        "imbalance": imbalance,
    }
