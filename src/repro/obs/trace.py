"""Chrome trace-event recording for the virtual machine and the host.

:class:`TraceRecorder` accumulates events in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(the JSON that ``chrome://tracing`` and Perfetto load). Two kinds of tracks
coexist in one file:

* **Simulated-clock tracks** -- one thread per virtual PE under a
  per-run process id. The runners emit one ``force`` / ``halo-comm`` /
  ``dlb`` / ``integrate`` span per PE per step on the virtual machine's
  clock, plus an instant event for every cell migration (with the cell id
  and the src/dst PEs), so the balancer's behaviour is visible *when it
  happens*, not just in aggregate.
* **A host wall-clock track** (:data:`TraceRecorder.HOST_PID`) -- fed by
  :class:`repro.obs.profiler.Profiler` scopes around the real kernels
  (pair search, decomposed force pass, ...), so host-side performance can
  be read next to the simulated timeline.

Timestamps are in microseconds, as the format requires; simulated seconds
are scaled by :data:`SECONDS_TO_US`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import AnalysisError, ConfigurationError

__all__ = [
    "REQUIRED_EVENT_KEYS",
    "SECONDS_TO_US",
    "TraceRecorder",
    "validate_trace",
]

#: Scale from (simulated or host) seconds to trace-event microseconds.
SECONDS_TO_US = 1e6

#: Keys every emitted trace event must carry (schema contract, also checked
#: by :func:`validate_trace` and the CI smoke run).
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


class TraceRecorder:
    """Accumulates Chrome trace events for one or more simulated runs.

    Parameters
    ----------
    time_scale:
        Multiplier from recorded seconds to trace timestamps (microseconds
        by default; only tests should need to change it).
    """

    #: Process id of the host wall-clock profiling track.
    HOST_PID = 1000

    def __init__(self, time_scale: float = SECONDS_TO_US) -> None:
        if time_scale <= 0:
            raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = float(time_scale)
        self._events: list[dict[str, Any]] = []
        self._known_tracks: set[tuple[int, int]] = set()
        self._known_processes: set[int] = set()
        self._claimed_pids: set[int] = set()

    # -- track metadata ----------------------------------------------------

    def claim_pid(self, pid: int) -> None:
        """Reserve a simulated-machine process id for one runner.

        Two runners sharing a recorder must claim distinct pids — otherwise
        their per-PE spans interleave on the same tracks and the timeline
        silently lies. Claiming an already-claimed (or invalid) pid raises
        :class:`~repro.errors.ConfigurationError` instead of corrupting the
        trace.
        """
        pid = int(pid)
        if pid < 0:
            raise ConfigurationError(f"trace_pid must be non-negative, got {pid}")
        if pid == self.HOST_PID:
            raise ConfigurationError(
                f"trace_pid {pid} is reserved for the host wall-clock track"
            )
        if pid in self._claimed_pids:
            raise ConfigurationError(
                f"trace_pid {pid} is already claimed by another runner on this "
                "recorder; give each runner sharing a recorder a distinct "
                "trace_pid"
            )
        self._claimed_pids.add(pid)

    def add_process(self, pid: int, name: str, sort_index: int | None = None) -> None:
        """Name a process (one per run/mode; shows as a group in the viewer)."""
        self._known_processes.add(pid)
        self._events.append(
            {"name": "process_name", "ph": "M", "ts": 0, "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
        if sort_index is not None:
            self._events.append(
                {"name": "process_sort_index", "ph": "M", "ts": 0, "pid": pid,
                 "tid": 0, "args": {"sort_index": sort_index}}
            )

    def add_thread(self, pid: int, tid: int, name: str) -> None:
        """Name one track (thread) inside a process."""
        self._known_tracks.add((pid, tid))
        self._events.append(
            {"name": "thread_name", "ph": "M", "ts": 0, "pid": pid, "tid": tid,
             "args": {"name": name}}
        )

    def _ensure_track(self, pid: int, tid: int) -> None:
        if pid not in self._known_processes:
            if pid == self.HOST_PID:
                self.add_process(pid, "host (wall clock)", sort_index=pid)
            else:
                self.add_process(pid, f"simulated machine {pid}", sort_index=pid)
        if (pid, tid) not in self._known_tracks:
            name = "profiler" if pid == self.HOST_PID else f"PE {tid}"
            self.add_thread(pid, tid, name)

    # -- event emission ----------------------------------------------------

    def span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        pe: int = 0,
        pid: int = 0,
        category: str = "sim",
        args: dict[str, Any] | None = None,
    ) -> None:
        """One complete ('X') span on a PE track of the simulated clock."""
        if duration_s < 0:
            raise ConfigurationError(f"duration must be non-negative, got {duration_s}")
        self._ensure_track(pid, pe)
        event: dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start_s * self.time_scale,
            "dur": duration_s * self.time_scale,
            "pid": pid,
            "tid": pe,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(
        self,
        name: str,
        ts_s: float,
        pe: int = 0,
        pid: int = 0,
        category: str = "event",
        args: dict[str, Any] | None = None,
    ) -> None:
        """One instant ('i') event on a PE track (thread scope)."""
        self._ensure_track(pid, pe)
        event: dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": ts_s * self.time_scale,
            "pid": pid,
            "tid": pe,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def migration(self, ts_s: float, cell: int, src: int, dst: int, pid: int = 0) -> None:
        """Record one cell migration as instants on both endpoint tracks."""
        args = {"cell": int(cell), "src": int(src), "dst": int(dst)}
        self.instant(f"migrate cell {cell} → PE {dst}", ts_s, pe=src, pid=pid,
                     category="dlb", args=args)
        self.instant(f"receive cell {cell} ← PE {src}", ts_s, pe=dst, pid=pid,
                     category="dlb", args=args)

    def host_span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        """A wall-clock span on the host profiling track."""
        self.span(name, start_s, duration_s, pe=0, pid=self.HOST_PID,
                  category="host", args=args)

    # -- export ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[dict[str, Any]]:
        """The accumulated events (live list; treat as read-only)."""
        return self._events

    def to_dict(self) -> dict[str, Any]:
        """The JSON-object form of the trace (``traceEvents`` container)."""
        return {
            "traceEvents": self._events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }

    def write(self, path: str | Path) -> Path:
        """Serialise the trace to ``path``; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()) + "\n")
        return path


def validate_trace(payload: dict[str, Any]) -> None:
    """Check a loaded trace payload against the schema contract.

    Raises :class:`repro.errors.AnalysisError` on the first violation: a
    missing ``traceEvents`` list, an event without the required keys, or a
    complete event without a duration.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise AnalysisError("trace payload has no 'traceEvents' list")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise AnalysisError("'traceEvents' is not a list")
    for index, event in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                raise AnalysisError(f"event {index} is missing required key {key!r}")
        if event["ph"] == "X" and "dur" not in event:
            raise AnalysisError(f"complete event {index} has no 'dur'")
