"""Deterministic per-step message router.

Every message exchanged between virtual PEs — halo scalars, DLB decisions,
per-PE force-pass results — goes through one :class:`DeterministicRouter`.
Messages are *posted* in whatever order the execution backend produces them
(rank order in one process, arrival order over pipes with many), and
*delivered* in the total order ``(step, tag, src, dst, seq)``.

That ordering is the whole determinism argument for the multiprocess engine:
floating-point reduction order is fixed by the delivery order, not by the
nondeterministic completion order of worker processes, so any backend that
routes its exchanges through this class produces bit-identical reductions —
and therefore a bit-identical run digest (see DESIGN.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class RoutedMessage:
    """One routed message; ordering fields first so tuples sort naturally."""

    step: int
    tag: str
    src: int
    dst: int
    seq: int
    payload: Any = field(compare=False)


class DeterministicRouter:
    """Collects posted messages and delivers them in a total order.

    ``seq`` is a per-router monotone counter that breaks ties between
    multiple messages with identical ``(step, tag, src, dst)``; within one
    poster that reproduces posting order, which is deterministic in every
    backend (each PE's sends are ordered by its own program order).
    """

    def __init__(self) -> None:
        self._pending: list[RoutedMessage] = []
        self._seq = 0
        #: Total messages routed over the router's lifetime (for metrics).
        self.routed_total = 0

    def __len__(self) -> int:
        return len(self._pending)

    def post(self, step: int, tag: str, src: int, dst: int, payload: Any = None) -> None:
        """Queue one message for ordered delivery."""
        self._pending.append(
            RoutedMessage(int(step), tag, int(src), int(dst), self._seq, payload)
        )
        self._seq += 1
        self.routed_total += 1

    def drain(self) -> list[RoutedMessage]:
        """All pending messages in ``(step, tag, src, dst, seq)`` order.

        Draining clears the queue; the caller owns delivery.
        """
        messages = sorted(
            self._pending, key=lambda m: (m.step, m.tag, m.src, m.dst, m.seq)
        )
        self._pending.clear()
        return messages
