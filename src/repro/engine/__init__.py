"""Pluggable execution engines for the SPMD force pass.

``sequential`` runs every virtual PE in rank order in-process (the reference
backend); ``multiprocess`` shards PEs across worker processes over shared
memory. Both route their per-PE results through a
:class:`~repro.engine.router.DeterministicRouter` and reduce in delivery
order, so they are bit-identical by run digest (DESIGN.md §10).
"""

from .base import (
    ENGINE_NAMES,
    Engine,
    EngineContext,
    EngineSpec,
    create_engine,
    effective_engine_workers,
)
from .forcefield import EngineForceField
from .multiprocess import MultiprocessEngine
from .router import DeterministicRouter, RoutedMessage
from .sequential import SequentialEngine

__all__ = [
    "ENGINE_NAMES",
    "DeterministicRouter",
    "Engine",
    "EngineContext",
    "EngineForceField",
    "EngineSpec",
    "MultiprocessEngine",
    "RoutedMessage",
    "SequentialEngine",
    "create_engine",
    "effective_engine_workers",
]
