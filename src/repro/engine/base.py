"""Execution-engine protocol: how a run's per-PE work actually executes.

An :class:`Engine` executes the decomposed per-PE force pass of
:func:`repro.core.ddm.pe_force_slice` for all P virtual PEs and folds the
slices into one :class:`~repro.core.ddm.DecomposedForceResult`. The fold is
identical across backends — scalars are routed through a
:class:`~repro.engine.router.DeterministicRouter` and reduced in delivery
order — so every backend produces bit-identical forces/energies and thus a
bit-identical run digest. Backends differ only in *where* the slices are
computed: the sequential engine loops PEs in rank order in-process; the
multiprocess engine shards PEs across worker processes over shared memory.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.ddm import DecomposedForceResult
from ..errors import ConfigurationError, EngineError
from ..md.potential import LennardJones
from .router import DeterministicRouter

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..obs import Observability

#: Engine names accepted by :func:`create_engine` and the CLI ``--engine``.
ENGINE_NAMES = ("sequential", "multiprocess")

#: Router tag under which per-PE force-pass scalars travel.
FORCE_RESULT_TAG = "force-result"

#: Router tag under which engine lifecycle notices travel. They are posted
#: and drained at lifecycle points only (bind/close), when no force-pass
#: traffic is pending, so :meth:`Engine._fold` never sees them.
LIFECYCLE_TAG = "engine-lifecycle"


@dataclass(frozen=True)
class EngineContext:
    """The picklable workload description an engine is bound to.

    Everything a worker process needs to rebuild the pair-search structures:
    no live objects, only plain values, so the context crosses a ``spawn``
    boundary unchanged. ``kernel`` is the *resolved* force-kernel tier name
    (``"numpy"``, ``"half"`` or ``"jit"``) and ``balancer`` the *resolved*
    balancer strategy name; resolving ``"auto"`` (and the respective env
    vars) happens on the driver before the context is built, so every worker
    sees the same concrete names regardless of its own environment.
    """

    n_particles: int
    n_pes: int
    box_length: float
    cells_per_side: int
    potential: LennardJones
    kernel: str = "numpy"
    balancer: str = "permanent"

    def __post_init__(self) -> None:
        if self.n_particles <= 0:
            raise ConfigurationError(
                f"n_particles must be positive, got {self.n_particles}"
            )
        if self.n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {self.n_pes}")
        if self.kernel not in ("numpy", "half", "jit"):
            raise ConfigurationError(
                f"engine context needs a resolved kernel name, got {self.kernel!r} "
                "(resolve 'auto' via repro.md.kernels.resolve_kernel_name first)"
            )
        if self.balancer not in ("permanent", "diffusion", "sfc", "none"):
            raise ConfigurationError(
                f"engine context needs a resolved balancer name, got "
                f"{self.balancer!r} (resolve 'auto' via "
                "repro.dlb.strategies.resolve_balancer_name first)"
            )


@dataclass(frozen=True)
class EngineSpec:
    """Declarative engine request: resolved by :func:`create_engine`.

    ``workers`` only matters for the multiprocess backend; ``None`` picks
    ``min(4, os.cpu_count())``.
    """

    name: str = "sequential"
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.name not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.name!r} (choose from {ENGINE_NAMES})"
            )
        if self.workers is not None and self.workers <= 0:
            raise ConfigurationError(
                f"engine workers must be positive, got {self.workers}"
            )


class Engine(abc.ABC):
    """Pluggable executor of the decomposed per-PE force pass.

    Lifecycle: construct → :meth:`bind` to one workload → any number of
    :meth:`force_pass` calls → :meth:`close` (or use as a context manager).
    Binding is one-shot on purpose: a multiprocess engine sizes its shared
    memory at bind time, and silently rebinding to a different workload is
    exactly the class of mistake :class:`~repro.errors.EngineError` exists
    to surface.
    """

    #: Backend name (stable identifier used by CLI/results metadata).
    name: str = "base"

    def __init__(self) -> None:
        self.router = DeterministicRouter()
        self._context: EngineContext | None = None
        self._closed = False
        self._observability: "Observability | None" = None
        #: Last folded simulation step (stamps the ``engine.stop`` events).
        self._last_step = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def context(self) -> EngineContext | None:
        """The bound workload, or ``None`` before :meth:`bind`."""
        return self._context

    @property
    def workers(self) -> int:
        """Worker processes backing this engine (1 for in-process backends)."""
        return 1

    def bind(self, context: EngineContext) -> None:
        """Attach the engine to one workload; idempotent for equal contexts."""
        if self._closed:
            raise EngineError(f"engine {self.name!r} is closed")
        if self._context is not None:
            if self._context != context:
                raise EngineError(
                    f"engine {self.name!r} is already bound to a different "
                    f"workload ({self._context.n_particles} particles / "
                    f"{self._context.n_pes} PEs); create one engine per workload"
                )
            return
        self._context = context
        self._start()
        self._emit_lifecycle(0, "engine.start", self._lifecycle_entries())

    def attach_observability(self, observability: "Observability | None") -> None:
        """Give the engine a sink for metrics/profiler output (nullable).

        Attach *before* :meth:`bind` so the bind-time ``engine.start``
        lifecycle events reach the flight recorder.
        """
        self._observability = observability

    def close(self) -> None:
        """Release backend resources; further passes raise ``EngineError``."""
        if not self._closed:
            entries = self._lifecycle_entries() if self._context is not None else []
            self._closed = True
            self._shutdown()
            self._emit_lifecycle(self._last_step, "engine.stop", entries)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- backend hooks -----------------------------------------------------

    def _start(self) -> None:
        """Backend hook: allocate resources for the bound context."""

    def _shutdown(self) -> None:
        """Backend hook: release resources (must be safe to call once)."""

    def _lifecycle_entries(self) -> list[tuple[int, dict]]:
        """``(src, fields)`` rows describing this engine's execution units.

        One row per unit of execution (the multiprocess backend overrides
        this with one row per worker, carrying its PE shard).
        """
        return [(0, {"engine": self.name})]

    def _emit_lifecycle(
        self, step: int, kind: str, entries: list[tuple[int, dict]]
    ) -> None:
        """Record lifecycle notices through the router into the host channel.

        Entries are posted under :data:`LIFECYCLE_TAG` and the router is
        drained immediately, so the recorded order is the router's canonical
        ``(step, tag, src)`` sort — independent of worker completion order.
        Must only be called at lifecycle points, when no force-pass traffic
        is pending (``_fold`` would otherwise reject the foreign tag).
        """
        obs = self._observability
        events = obs.events if obs is not None else None
        if events is None or not events.enabled or not entries:
            return
        for src, fields in entries:
            self.router.post(step, LIFECYCLE_TAG, src, 0, fields)
        for message in self.router.drain():
            events.emit_host(message.step, kind, src=message.src, **message.payload)

    @abc.abstractmethod
    def force_pass(
        self, positions: np.ndarray, cell_owner: np.ndarray, step: int
    ) -> DecomposedForceResult:
        """Execute one decomposed force pass over all PEs.

        ``positions`` is the ``(N, 3)`` current configuration, ``cell_owner``
        the ``(n_cells,)`` owner map of the *current* assignment (it changes
        under DLB), ``step`` the simulation step (orders router traffic).
        """

    # -- shared machinery --------------------------------------------------

    def _require_context(self) -> EngineContext:
        if self._closed:
            raise EngineError(f"engine {self.name!r} is closed")
        if self._context is None:
            raise EngineError(f"engine {self.name!r} used before bind()")
        return self._context

    def _fold(self, forces: np.ndarray, step: int) -> DecomposedForceResult:
        """Reduce routed per-PE scalars into one result, in delivery order.

        Every backend posts one ``(energy, virial, seconds, n_pairs)`` tuple
        per PE under :data:`FORCE_RESULT_TAG`; the router delivers them
        sorted by ``(step, tag, src, ...)`` = PE rank order, so the energy
        and virial sums accumulate in exactly the order the sequential
        reference uses — bit-identical regardless of completion order.
        """
        context = self._require_context()
        n_pes = context.n_pes
        per_pe_seconds = np.zeros(n_pes, dtype=np.float64)
        per_pe_pairs = np.zeros(n_pes, dtype=np.int64)
        energy = 0.0
        virial = 0.0
        delivered = 0
        for message in self.router.drain():
            if message.tag != FORCE_RESULT_TAG or message.step != step:
                raise EngineError(
                    f"unexpected routed message {message.tag!r} at step "
                    f"{message.step} (folding step {step})"
                )
            pe_energy, pe_virial, pe_seconds, pe_pairs = message.payload
            energy += pe_energy
            virial += pe_virial
            per_pe_seconds[message.src] = pe_seconds
            per_pe_pairs[message.src] = pe_pairs
            delivered += 1
        if delivered != n_pes:
            raise EngineError(
                f"force pass folded {delivered} PE results, expected {n_pes}"
            )
        self._last_step = step
        return DecomposedForceResult(
            forces=forces,
            potential_energy=energy,
            per_pe_seconds=per_pe_seconds,
            per_pe_pairs=per_pe_pairs,
            virial=virial,
        )


def create_engine(
    engine: "str | EngineSpec | Engine | None",
    workers: int | None = None,
) -> "Engine | None":
    """Resolve an engine request to an instance.

    Accepts a backend name, an :class:`EngineSpec`, an already-constructed
    :class:`Engine` (returned as-is; ``workers`` must then be ``None``), or
    ``None`` (no engine: the runner keeps its classic in-process force path).
    """
    if engine is None:
        if workers is not None:
            raise ConfigurationError("engine workers given without an engine")
        return None
    if isinstance(engine, Engine):
        if workers is not None:
            raise ConfigurationError(
                "pass workers via the engine's own constructor, not create_engine"
            )
        return engine
    if isinstance(engine, str):
        engine = EngineSpec(name=engine, workers=workers)
    elif workers is not None and engine.workers != workers:
        raise ConfigurationError(
            f"conflicting worker counts: spec says {engine.workers}, got {workers}"
        )
    if engine.name == "sequential":
        from .sequential import SequentialEngine

        return SequentialEngine()
    from .multiprocess import MultiprocessEngine

    return MultiprocessEngine(workers=engine.workers)


def effective_engine_workers(
    requested: int | None,
    sibling_processes: int = 1,
    cpu_count: int | None = None,
) -> int:
    """Worker count after the nested-parallelism guard.

    ``sibling_processes`` is how many peer processes (e.g. campaign pool
    workers) will each run an engine concurrently; the product
    ``siblings × engine workers`` is capped at the host's CPU count so a
    campaign of multiprocess runs cannot oversubscribe the machine.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    siblings = max(1, int(sibling_processes))
    budget = max(1, cpus // siblings)
    if requested is None:
        return min(4, budget)
    return max(1, min(int(requested), budget))
