"""In-process engine: PEs execute in rank order, one per loop iteration.

This is the reference backend — the extracted form of what the runner always
did. It exists so the multiprocess engine has a bit-identical baseline to be
checked against: both post the same per-PE scalars through the same router
and share :meth:`Engine._fold`.
"""

from __future__ import annotations

import numpy as np

from ..core.ddm import DecomposedForceResult, pe_force_slice
from ..md.celllist import CellList
from ..md.kernels import KernelBackend, create_kernel
from ..obs.profiler import scope
from .base import FORCE_RESULT_TAG, Engine, EngineContext


class SequentialEngine(Engine):
    """Executes every PE's force slice in rank order in the calling process."""

    name = "sequential"

    def __init__(self) -> None:
        super().__init__()
        self._cell_list: CellList | None = None
        self._kernel: KernelBackend | None = None

    def _start(self) -> None:
        context: EngineContext = self._context  # bound by Engine.bind
        self._cell_list = CellList(context.box_length, context.cells_per_side)
        self._kernel = create_kernel(context.kernel)

    def force_pass(
        self, positions: np.ndarray, cell_owner: np.ndarray, step: int
    ) -> DecomposedForceResult:
        context = self._require_context()
        cell_list = self._cell_list
        with scope("engine.force_pass"):
            particle_cell = cell_list.assign(positions)
            particle_owner = cell_owner[particle_cell]
            forces = np.zeros_like(positions)
            for pe in range(context.n_pes):
                piece = pe_force_slice(
                    pe, positions, context.box_length, cell_list, cell_owner,
                    particle_cell, particle_owner, context.potential,
                    kernel=self._kernel,
                )
                if len(piece.owned_ids):
                    forces[piece.owned_ids] = piece.forces
                self.router.post(
                    step, FORCE_RESULT_TAG, pe, 0,
                    (piece.energy, piece.virial, piece.seconds, piece.n_pairs),
                )
            result = self._fold(forces, step)
        if self._observability is not None and self._observability.metrics is not None:
            self._observability.metrics.counter(
                "repro_engine_force_passes_total",
                "Decomposed force passes executed by the engine",
            ).inc(engine=self.name)
        return result
