"""Multiprocess engine: virtual PEs sharded across worker processes.

Execution model
---------------
At :meth:`bind` the engine allocates three shared-memory blocks — positions
``(N, 3)``, forces ``(N, 3)`` and the cell-owner map ``(n_cells,)`` — and
spawns ``workers`` long-lived processes, each owning the PE shard
``{w, w+W, w+2W, ...}`` (striding balances the spatially-clustered load of
adjacent PEs). Per step the driver writes positions and the owner map into
shared memory, zeroes the force block, and broadcasts one tiny ``("force",
step)`` message per worker pipe. Each worker recomputes its PEs' slices with
:func:`repro.core.ddm.pe_force_slice`, writes the owned particles' force
rows straight into shared memory (ownership makes the row sets disjoint, so
concurrent writes never overlap), and returns only per-PE scalars over its
pipe.

Determinism
-----------
A particle's force rows are computed entirely within its owner PE's slice,
so the bits are independent of *which process* ran the slice. The scalar
reductions (energy, virial) are the only order-sensitive part, and those go
through the :class:`~repro.engine.router.DeterministicRouter`: the driver
posts each worker's scalars as they arrive but :meth:`Engine._fold` reduces
them in ``(step, tag, src)`` order — PE rank order — exactly as the
sequential engine does. Hence the SHA-256 run digest is bit-identical to
the sequential backend's, for any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from multiprocessing import shared_memory
from multiprocessing.connection import Connection

import numpy as np

from ..core.ddm import DecomposedForceResult, pe_force_slice
from ..errors import ConfigurationError, EngineError
from ..md.celllist import CellList
from ..md.kernels import create_kernel
from ..obs.profiler import Profiler, scope
from .base import FORCE_RESULT_TAG, Engine, EngineContext

#: Default worker cap when the caller does not specify one.
DEFAULT_WORKERS = 4


def _preferred_context() -> mp.context.BaseContext:
    """``fork`` where available (cheap, inherits imports), else ``spawn``."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(
    conn: Connection,
    context: EngineContext,
    pe_ids: list[int],
    positions_name: str,
    forces_name: str,
    owner_name: str,
) -> None:
    """Worker loop: serve force-pass requests for one shard of PEs.

    Runs until a ``("close",)`` message arrives; replies to every request so
    the driver never blocks on a silent failure — exceptions travel back as
    ``("error", step, traceback_text)``.
    """
    profiler = Profiler()  # local, explicit: workers never touch the global
    positions_shm = shared_memory.SharedMemory(name=positions_name)
    forces_shm = shared_memory.SharedMemory(name=forces_name)
    owner_shm = shared_memory.SharedMemory(name=owner_name)
    try:
        n = context.n_particles
        positions = np.ndarray((n, 3), dtype=np.float64, buffer=positions_shm.buf)
        forces = np.ndarray((n, 3), dtype=np.float64, buffer=forces_shm.buf)
        cell_list = CellList(context.box_length, context.cells_per_side)
        # The context carries a resolved tier name, so every worker builds
        # the same backend the driver (and sequential reference) uses.
        kernel = create_kernel(context.kernel)
        cell_owner = np.ndarray(
            (cell_list.n_cells,), dtype=np.int64, buffer=owner_shm.buf
        )
        while True:
            message = conn.recv()
            if message[0] == "close":
                conn.send(("closed", profiler.state_dict()))
                return
            if message[0] != "force":  # defensive: protocol error
                conn.send(("error", -1, f"unknown request {message[0]!r}"))
                continue
            step = message[1]
            try:
                with profiler.timer("engine.worker.force_pass"):
                    particle_cell = cell_list.assign(positions)
                    particle_owner = cell_owner[particle_cell]
                    scalars = []
                    for pe in pe_ids:
                        piece = pe_force_slice(
                            pe, positions, context.box_length, cell_list,
                            cell_owner, particle_cell, particle_owner,
                            context.potential, kernel=kernel,
                        )
                        if len(piece.owned_ids):
                            forces[piece.owned_ids] = piece.forces
                        scalars.append(
                            (pe, piece.energy, piece.virial,
                             piece.seconds, piece.n_pairs)
                        )
                conn.send(("done", step, scalars))
            except Exception:
                conn.send(("error", step, traceback.format_exc()))
    finally:
        positions_shm.close()
        forces_shm.close()
        owner_shm.close()


class MultiprocessEngine(Engine):
    """Shards the per-PE force pass across long-lived worker processes."""

    name = "multiprocess"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__()
        if workers is not None and workers <= 0:
            raise ConfigurationError(
                f"engine workers must be positive, got {workers}"
            )
        self._requested_workers = workers
        self._workers: list[mp.process.BaseProcess] = []
        self._pipes: list[Connection] = []
        self._shards: list[list[int]] = []
        self._segments: list[shared_memory.SharedMemory] = []
        self._positions: np.ndarray | None = None
        self._forces: np.ndarray | None = None
        self._owner: np.ndarray | None = None

    @property
    def workers(self) -> int:
        """Live worker-process count (resolved at bind time)."""
        if self._workers:
            return len(self._workers)
        requested = self._requested_workers
        if requested is None:
            return min(DEFAULT_WORKERS, os.cpu_count() or 1)
        return requested

    def _start(self) -> None:
        context: EngineContext = self._context  # bound by Engine.bind
        n_workers = max(1, min(self.workers, context.n_pes))
        n = context.n_particles
        n_cells = context.cells_per_side ** 3

        def segment(nbytes: int) -> shared_memory.SharedMemory:
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._segments.append(shm)
            return shm

        try:
            positions_shm = segment(n * 3 * 8)
            forces_shm = segment(n * 3 * 8)
            owner_shm = segment(n_cells * 8)
            self._positions = np.ndarray((n, 3), np.float64, buffer=positions_shm.buf)
            self._forces = np.ndarray((n, 3), np.float64, buffer=forces_shm.buf)
            self._owner = np.ndarray((n_cells,), np.int64, buffer=owner_shm.buf)

            ctx = _preferred_context()
            for w in range(n_workers):
                shard = list(range(w, context.n_pes, n_workers))
                ours, theirs = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(theirs, context, shard,
                          positions_shm.name, forces_shm.name, owner_shm.name),
                    daemon=True,
                    name=f"repro-engine-{w}",
                )
                process.start()
                theirs.close()
                self._workers.append(process)
                self._pipes.append(ours)
                self._shards.append(shard)
        except Exception:
            self._shutdown()
            raise

    def force_pass(
        self, positions: np.ndarray, cell_owner: np.ndarray, step: int
    ) -> DecomposedForceResult:
        context = self._require_context()
        if positions.shape != (context.n_particles, 3):
            raise EngineError(
                f"positions shape {positions.shape} != "
                f"({context.n_particles}, 3) the engine was bound to"
            )
        with scope("engine.force_pass"):
            self._positions[...] = positions
            self._owner[...] = cell_owner
            self._forces[...] = 0.0
            for pipe in self._pipes:
                pipe.send(("force", step))
            for w, pipe in enumerate(self._pipes):
                reply = self._recv(w, pipe)
                if reply[0] == "error":
                    raise EngineError(
                        f"engine worker {w} failed at step {reply[1]}:\n{reply[2]}"
                    )
                for pe, energy, virial, seconds, n_pairs in reply[2]:
                    self.router.post(
                        step, FORCE_RESULT_TAG, pe, 0,
                        (energy, virial, seconds, n_pairs),
                    )
            result = self._fold(np.array(self._forces, copy=True), step)
        if self._observability is not None and self._observability.metrics is not None:
            metrics = self._observability.metrics
            metrics.counter(
                "repro_engine_force_passes_total",
                "Decomposed force passes executed by the engine",
            ).inc(engine=self.name)
            metrics.gauge(
                "repro_engine_workers",
                "Worker processes backing the execution engine",
            ).set(len(self._workers), engine=self.name)
        return result

    def _lifecycle_entries(self) -> list[tuple[int, dict]]:
        """One row per worker process, carrying its strided PE shard."""
        return [
            (w, {"engine": self.name, "workers": len(self._shards), "shard": shard})
            for w, shard in enumerate(self._shards)
        ]

    def _recv(self, w: int, pipe: Connection):
        try:
            return pipe.recv()
        except (EOFError, OSError) as exc:
            process = self._workers[w]
            raise EngineError(
                f"engine worker {w} died (exitcode {process.exitcode}); "
                f"PE shard {self._shards[w]} is lost"
            ) from exc

    def _shutdown(self) -> None:
        for w, pipe in enumerate(self._pipes):
            try:
                pipe.send(("close",))
                reply = pipe.recv()
                if reply[0] == "closed":
                    self._merge_worker_profile(w, reply[1])
            except (EOFError, OSError, BrokenPipeError):
                pass  # worker already gone; nothing to merge
            finally:
                pipe.close()
        deadline = time.monotonic() + 5.0
        for process in self._workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._workers.clear()
        self._pipes.clear()
        # Views into the segments must drop before close(): a live ndarray
        # keeps the mmap referenced and unlink would leak it.
        self._positions = self._forces = self._owner = None
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()

    def _merge_worker_profile(self, w: int, state: dict) -> None:
        """Fold a worker's profiler snapshot into the session profiler."""
        profiler = None
        if self._observability is not None:
            profiler = self._observability.profiler
        if profiler is not None and state:
            profiler.merge_state(state, prefix=f"worker{w}.")
