"""Adapter presenting an :class:`Engine` as the runner's force field.

With an engine attached, the decomposed per-PE pass *is* the physics: the
integrator's force evaluation calls :meth:`EngineForceField.compute`, which
runs one engine force pass over the current cell-owner map and finishes with
the same attraction/finite-check epilogue as :class:`repro.md.forces.ForceField`.
The per-PE wall-clock times of the pass are kept on :attr:`last_pass` so the
runner's ``"measured"`` timing mode reuses them instead of running a second
pass.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..core.ddm import DecomposedForceResult
from ..md.forces import ForceResult, apply_attraction, check_finite_forces
from ..md.neighbors import NeighborStats, VerletList
from ..md.system import ParticleSystem
from .base import Engine


class EngineForceField:
    """Force field whose evaluations are executed by an engine.

    Parameters
    ----------
    engine:
        A bound :class:`Engine` (the runner binds it before constructing
        this adapter).
    owner_map:
        Zero-argument callable returning the current ``(n_cells,)``
        cell-owner array — a live view of the runner's assignment, so DLB
        migrations are visible to the next force pass.
    attraction, attractors:
        Same meaning as on :class:`repro.md.forces.ForceField`.
    """

    #: Backend label (parallels ``ForceField.backend``).
    backend = "engine"

    def __init__(
        self,
        engine: Engine,
        owner_map: Callable[[], np.ndarray],
        attraction: float = 0.0,
        attractors: np.ndarray | None = None,
    ) -> None:
        self.engine = engine
        self.potential = engine.context.potential if engine.context else None
        #: Resolved kernel-tier name the engine's workers evaluate with.
        self.kernel_name = engine.context.kernel if engine.context else "numpy"
        self._owner_map = owner_map
        self.attraction = float(attraction)
        self.attractors = attractors
        #: Pair-search instrumentation (pass counts, pair totals).
        self.stats = NeighborStats()
        #: The most recent engine pass (per-PE seconds feed "measured" mode).
        self.last_pass: DecomposedForceResult | None = None
        # The engine step counter orders router traffic; checkpointed so a
        # resumed run's message streams continue with the same step ids.
        self._step = 0

    @property
    def verlet_list(self) -> VerletList | None:
        """Engines rebuild pairs per pass; there is no Verlet cache."""
        return None

    def invalidate_cache(self) -> None:
        """No cached neighbour structure to drop."""

    def compute(self, system: ParticleSystem) -> ForceResult:
        """Evaluate forces via the engine, writing ``system.forces`` too."""
        result = self.engine.force_pass(
            system.positions, self._owner_map(), self._step
        )
        self._step += 1
        self.last_pass = result
        n_pairs = int(result.per_pe_pairs.sum())
        self.stats.record_build(n_pairs)
        self.stats.record_evaluation(n_pairs, n_pairs)
        if self.kernel_name != "numpy":
            # Engine passes feed exact (within-cut-off) pairs to the tier, so
            # evaluated == accepted.
            self.stats.record_half_list(n_pairs, n_pairs)
        forces = result.forces
        potential_energy = result.potential_energy
        if self.attraction > 0.0:
            forces, extra = apply_attraction(
                system.positions, forces, system.box_length,
                self.attraction, self.attractors,
            )
            potential_energy += extra
        check_finite_forces(forces)
        system.forces[...] = forces
        return ForceResult(forces, potential_energy, result.virial, n_pairs)

    # -- checkpointing -------------------------------------------------------

    def cache_state(self) -> dict:
        """Snapshot of the counters and the engine step cursor."""
        return {
            "stats": self.stats.state_dict(),
            "verlet": None,
            "engine_step": self._step,
            "kernel": self.kernel_name,
        }

    def restore_cache_state(self, state: dict, box_length: float) -> None:
        """Restore a snapshot taken by :meth:`cache_state`.

        Also accepts a classic :class:`~repro.md.forces.ForceField` snapshot
        (no ``engine_step`` key): a checkpoint written without an engine can
        resume under one, because the engine pass has no carried cache whose
        absence could perturb the trajectory.
        """
        self.stats.load_state_dict(state["stats"])
        self._step = int(state.get("engine_step", 0))
