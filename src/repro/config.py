"""Configuration dataclasses shared across the library.

Each dataclass validates itself in ``__post_init__`` and raises
:class:`repro.errors.ConfigurationError` on inconsistency, so invalid setups
fail loudly at construction time rather than deep inside a simulation.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from .errors import ConfigurationError
from .units import (
    PAPER_CUTOFF,
    PAPER_DT,
    PAPER_RESCALE_INTERVAL,
    PAPER_RHO,
    PAPER_T_REF,
    box_length_for,
)


@dataclass(frozen=True)
class MDConfig:
    """Physical setup of a molecular-dynamics run (Section 3.2 of the paper).

    Attributes
    ----------
    n_particles:
        Number of particles ``N``.
    density:
        Reduced density ``rho*``; with ``n_particles`` it fixes the cubic box.
    temperature:
        Reduced reference temperature ``T*``; velocities are rescaled to it.
    cutoff:
        Reduced LJ cut-off distance ``r_c``.
    dt:
        Reduced integration time step.
    rescale_interval:
        Velocity rescaling period in steps (0 disables the thermostat).
    attraction:
        Optional strength of a weak harmonic attraction toward nucleation
        sites. The paper's supercooled gas clusters over ~10^4 steps; this
        knob accelerates the same concentration process for scaled-down runs
        (see DESIGN.md, substitutions). 0 reproduces pure LJ dynamics.
    n_attractors:
        Number of nucleation sites. 1 means the box centre (single-blob
        collapse, the adversarial case); larger values scatter seeded random
        sites, reproducing the distributed droplet morphology of the real
        supercooled gas.
    """

    n_particles: int
    density: float = PAPER_RHO
    temperature: float = PAPER_T_REF
    cutoff: float = PAPER_CUTOFF
    dt: float = PAPER_DT
    rescale_interval: int = PAPER_RESCALE_INTERVAL
    attraction: float = 0.0
    n_attractors: int = 1

    def __post_init__(self) -> None:
        if self.n_particles <= 0:
            raise ConfigurationError(f"n_particles must be positive, got {self.n_particles}")
        if self.density <= 0:
            raise ConfigurationError(f"density must be positive, got {self.density}")
        if self.temperature < 0:
            raise ConfigurationError(f"temperature must be non-negative, got {self.temperature}")
        if self.cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {self.cutoff}")
        if self.dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {self.dt}")
        if self.rescale_interval < 0:
            raise ConfigurationError(
                f"rescale_interval must be non-negative, got {self.rescale_interval}"
            )
        if self.attraction < 0:
            raise ConfigurationError(f"attraction must be non-negative, got {self.attraction}")
        if self.n_attractors < 1:
            raise ConfigurationError(f"n_attractors must be >= 1, got {self.n_attractors}")
        if self.box_length < 2.0 * self.cutoff:
            raise ConfigurationError(
                "box too small for minimum-image convention: "
                f"L={self.box_length:.3f} < 2*r_c={2 * self.cutoff:.3f}"
            )

    @property
    def box_length(self) -> float:
        """Edge length of the cubic periodic box."""
        return box_length_for(self.n_particles, self.density)


#: Force-kernel tiers understood by :mod:`repro.md.kernels` (and ``--kernel``).
#: ``"auto"`` resolves to ``"jit"`` when numba imports cleanly, else ``"half"``.
KERNEL_NAMES = ("numpy", "half", "jit", "auto")

#: Balancer strategies understood by :mod:`repro.dlb.strategies` (and
#: ``--balancer``). ``"auto"`` resolves to ``"permanent"``, the paper's
#: protocol.
BALANCER_NAMES = ("permanent", "diffusion", "sfc", "none", "auto")


def resolve_strategy_name(
    requested: str | None,
    *,
    env_var: str,
    choices: tuple[str, ...],
    label: str,
    env_default: str,
) -> str:
    """One resolution rule for every strategy knob (``kernel``, ``balancer``).

    Precedence: explicit request (config field / CLI flag) > the ``env_var``
    environment variable > ``env_default``. Returns the chosen name --
    including ``"auto"`` where the knob supports it; mapping ``"auto"`` to a
    concrete backend is knob-specific and stays with the caller
    (:func:`repro.md.kernels.resolve_kernel_name`,
    :func:`repro.dlb.strategies.resolve_balancer_name`).
    """
    if requested is None:
        name = os.environ.get(env_var, env_default)
        if name not in choices:
            raise ConfigurationError(
                f"{env_var}={name!r} is not a {label}; choose one of {choices}"
            )
        return name
    if requested not in choices:
        raise ConfigurationError(
            f"unknown {label} {requested!r}; choose one of {choices}"
        )
    return requested

#: Valid domain shapes for 3-D DDM (Figure 2 of the paper).
DOMAIN_SHAPES = ("plane", "pillar", "cube")


@dataclass(frozen=True)
class DecompositionConfig:
    """Cell grid and PE layout of a domain decomposition.

    Attributes
    ----------
    cells_per_side:
        ``C^(1/3)``: number of cells along each axis of the cubic grid.
    n_pes:
        Number of processing elements ``P``.
    shape:
        Domain shape: ``"plane"`` (slabs, ring of PEs), ``"pillar"``
        (square pillars, 2-D torus -- the paper's choice for DLB) or
        ``"cube"`` (3-D torus).
    """

    cells_per_side: int
    n_pes: int
    shape: str = "pillar"

    def __post_init__(self) -> None:
        if self.cells_per_side <= 0:
            raise ConfigurationError(f"cells_per_side must be positive, got {self.cells_per_side}")
        if self.n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {self.n_pes}")
        if self.shape not in DOMAIN_SHAPES:
            raise ConfigurationError(f"shape must be one of {DOMAIN_SHAPES}, got {self.shape!r}")
        if self.shape == "plane":
            if self.cells_per_side % self.n_pes != 0:
                raise ConfigurationError(
                    f"plane decomposition needs n_pes | cells_per_side, "
                    f"got {self.n_pes} and {self.cells_per_side}"
                )
        elif self.shape == "pillar":
            side = math.isqrt(self.n_pes)
            if side * side != self.n_pes:
                raise ConfigurationError(
                    f"pillar decomposition needs a square n_pes, got {self.n_pes}"
                )
            if self.cells_per_side % side != 0:
                raise ConfigurationError(
                    f"pillar decomposition needs sqrt(n_pes) | cells_per_side, "
                    f"got sqrt({self.n_pes})={side} and {self.cells_per_side}"
                )
            if self.pillar_m < 1:
                raise ConfigurationError("pillar cross-section m must be >= 1")
        else:  # cube
            side = round(self.n_pes ** (1.0 / 3.0))
            if side**3 != self.n_pes:
                raise ConfigurationError(
                    f"cube decomposition needs a cubic n_pes, got {self.n_pes}"
                )
            if self.cells_per_side % side != 0:
                raise ConfigurationError(
                    f"cube decomposition needs cbrt(n_pes) | cells_per_side, "
                    f"got cbrt({self.n_pes})={side} and {self.cells_per_side}"
                )

    @property
    def n_cells(self) -> int:
        """Total number of cells ``C``."""
        return self.cells_per_side**3

    @property
    def pe_side(self) -> int:
        """``P^(1/2)`` for pillar decompositions (torus side length)."""
        side = math.isqrt(self.n_pes)
        if side * side != self.n_pes:
            raise ConfigurationError(f"n_pes={self.n_pes} is not a perfect square")
        return side

    @property
    def pillar_m(self) -> int:
        """Pillar cross-section size ``m = C^(1/3) / P^(1/2)`` (Figure 7)."""
        return self.cells_per_side // self.pe_side


@dataclass(frozen=True)
class DLBConfig:
    """Behaviour of the permanent-cell dynamic load balancer.

    Attributes
    ----------
    enabled:
        Master switch; disabled means plain DDM.
    interval:
        Redistribution period in steps. The paper's overhead is small enough
        to run DLB every step (interval=1).
    max_sends_per_step:
        How many cell columns a PE may hand over per DLB invocation. The
        paper's protocol sends one.
    policy:
        Receiver-selection policy: ``"fastest"`` is the paper's (send to the
        fastest of the 8 neighbours); ``"threshold"`` only redistributes when
        the local imbalance exceeds ``threshold``; used for ablations.
    threshold:
        Relative imbalance required by the ``"threshold"`` policy.
    """

    enabled: bool = True
    interval: int = 1
    max_sends_per_step: int = 1
    policy: str = "fastest"
    threshold: float = 0.1

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {self.interval}")
        if self.max_sends_per_step <= 0:
            raise ConfigurationError(
                f"max_sends_per_step must be positive, got {self.max_sends_per_step}"
            )
        if self.policy not in ("fastest", "threshold"):
            raise ConfigurationError(f"unknown policy {self.policy!r}")
        if self.threshold < 0:
            raise ConfigurationError(f"threshold must be non-negative, got {self.threshold}")


@dataclass(frozen=True)
class MachineConfig:
    """Cost model of the simulated multicomputer (see repro.parallel.network).

    Times are in arbitrary but self-consistent units (we use seconds scaled
    so the default constants roughly match mid-1990s hardware; only the
    *shape* of the results depends on them).

    Attributes
    ----------
    name:
        Preset label, e.g. ``"t3e"`` or ``"cm5"``.
    latency:
        Per-message startup cost.
    inv_bandwidth:
        Per-byte transfer cost (1 / bandwidth).
    tau_pair:
        Cost of one candidate pair-distance evaluation in the force loop.
    tau_particle:
        Per-particle cost of integration + cell reassignment each step.
    tau_cell:
        Per-cell bookkeeping cost each step.
    dlb_overhead:
        Fixed per-step cost of running the DLB protocol (time exchange +
        decision), charged only when DLB is enabled.
    bytes_per_particle:
        Payload size of one particle in migration/halo messages.
    """

    name: str = "t3e"
    latency: float = 10e-6
    inv_bandwidth: float = 1.0 / 2.8e9
    tau_pair: float = 60e-9
    tau_particle: float = 150e-9
    tau_cell: float = 40e-9
    dlb_overhead: float = 30e-6
    bytes_per_particle: int = 48  # 6 doubles: position + velocity

    def __post_init__(self) -> None:
        for attr in (
            "latency",
            "inv_bandwidth",
            "tau_pair",
            "tau_particle",
            "tau_cell",
            "dlb_overhead",
        ):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")
        if self.bytes_per_particle <= 0:
            raise ConfigurationError("bytes_per_particle must be positive")


@dataclass(frozen=True)
class RunConfig:
    """Top-level knobs of a simulated parallel run.

    Attributes
    ----------
    steps:
        Number of MD time steps to execute.
    seed:
        Root RNG seed for initial conditions.
    record_interval:
        Instrumentation records are kept every this many steps.
    force_backend:
        ``"kdtree"`` (fast, scipy), ``"cells"`` (pure-NumPy linked cells,
        the faithful reference kernel) or ``"verlet"`` (cached neighbour
        list with a skin radius, rebuilt only on sufficient displacement).
    skin:
        Verlet-list search margin beyond the cut-off (``"verlet"`` backend).
        Larger skins rebuild less often but evaluate more candidates.
    neighbor_max_reuse:
        Cap on consecutive Verlet-list reuses before a forced rebuild
        (0 disables the cap; the displacement criterion alone decides).
    kernel:
        Force-kernel tier: ``"numpy"`` (full-list reference), ``"half"``
        (cache-blocked half-neighbour-list, bit-identical to the reference),
        ``"jit"`` (numba-compiled half-list; errors if numba is missing) or
        ``"auto"`` (jit when numba imports cleanly, silently half otherwise).
        ``None`` defers to the ``REPRO_KERNEL`` environment variable and
        ultimately to ``"numpy"``.
    balancer:
        DLB strategy: ``"permanent"`` (the paper's permanent-cell protocol),
        ``"diffusion"`` (nearest-neighbour load diffusion), ``"sfc"``
        (space-filling-curve repartition; centralised engines only),
        ``"none"`` (the no-balance counterfactual) or ``"auto"``
        (``"permanent"``). ``None`` defers to the ``REPRO_BALANCER``
        environment variable and ultimately to ``"permanent"``. Only
        consulted when ``SimulationConfig.dlb.enabled`` is true.
    timing_mode:
        ``"model"`` derives per-PE times from the calibratable cost model
        (fast, deterministic); ``"measured"`` actually runs each PE's force
        kernel separately and uses wall-clock times (slow, host-dependent,
        validates the decomposed algorithm end to end).
    """

    steps: int
    seed: int | None = None
    record_interval: int = 1
    force_backend: str = "kdtree"
    skin: float = 0.4
    neighbor_max_reuse: int = 20
    kernel: str | None = None
    balancer: str | None = None
    timing_mode: str = "model"

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {self.steps}")
        if self.record_interval <= 0:
            raise ConfigurationError(
                f"record_interval must be positive, got {self.record_interval}"
            )
        if self.force_backend not in ("kdtree", "cells", "verlet"):
            raise ConfigurationError(f"unknown force_backend {self.force_backend!r}")
        if self.skin <= 0:
            raise ConfigurationError(f"skin must be positive, got {self.skin}")
        if self.neighbor_max_reuse < 0:
            raise ConfigurationError(
                f"neighbor_max_reuse must be non-negative, got {self.neighbor_max_reuse}"
            )
        if self.kernel is not None and self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; choose one of {KERNEL_NAMES}"
            )
        if self.balancer is not None and self.balancer not in BALANCER_NAMES:
            raise ConfigurationError(
                f"unknown balancer {self.balancer!r}; choose one of {BALANCER_NAMES}"
            )
        if self.timing_mode not in ("model", "measured"):
            raise ConfigurationError(f"unknown timing_mode {self.timing_mode!r}")


@dataclass(frozen=True)
class SimulationConfig:
    """Bundle of every configuration a parallel MD simulation needs."""

    md: MDConfig
    decomposition: DecompositionConfig
    dlb: DLBConfig = field(default_factory=DLBConfig)
    machine: MachineConfig = field(default_factory=MachineConfig)

    def __post_init__(self) -> None:
        cell_size = self.md.box_length / self.decomposition.cells_per_side
        # Cells must be at least as large as the cut-off (Section 2.2), or the
        # 26-neighbour stencil misses interacting pairs.
        if cell_size < self.md.cutoff - 1e-12:
            raise ConfigurationError(
                f"cell size {cell_size:.4f} smaller than cutoff {self.md.cutoff}: "
                "reduce cells_per_side or the cutoff"
            )

    @property
    def cell_size(self) -> float:
        """Edge length of one cubic cell."""
        return self.md.box_length / self.decomposition.cells_per_side
