"""Pluggable balancer strategies behind the :class:`Balancer` protocol.

Mirrors the force-kernel tier (:mod:`repro.md.kernels`): a registry maps
strategy names to classes, the driver resolves a concrete name once
(config field > ``REPRO_BALANCER`` env var > default) and every layer
downstream -- runner, engine workers, flight recorder, ``repro explain`` --
carries that resolved name.

Four strategies ship:

``permanent``
    The paper's permanent-cell protocol (the default). The decision loop
    here is the exact code previously inlined in
    :class:`~repro.dlb.balancer.DynamicLoadBalancer.decide`; tier-1 tests
    assert move-for-move identity and run-digest identity through the seam.
``diffusion``
    Nearest-neighbour load diffusion (Demirel & Sbalzarini): every
    overloaded PE pushes cells toward its fastest neighbour, with the number
    of cells proportional to half the time difference (each PE acts
    independently on cells it holds, so the scheme is conflict-free and has
    an SPMD formulation identical to the centralised one).
``sfc``
    Space-filling-curve repartition: cells are walked along a Morton
    (z-order) curve over the cross-section, weighted by particle counts,
    and the curve is re-cut into ``P`` equal-weight chunks. This is a
    *global* method -- it needs every PE's counts at once -- so it is
    centralised-only; the SPMD decide path rejects it with a clear error.
``none``
    Decides no moves, ever. Formalizes the no-balance counterfactual the
    flight-recorder analytics compare against: DLB bookkeeping still runs
    (and is still charged by the cost model), only redistribution is off.

Rival strategies (``diffusion``, ``sfc``) are **unconstrained**: they may
move any cell anywhere, so they bypass the permanent-cell invariants (the
assignment's :meth:`~repro.decomp.assignment.CellAssignment.transfer_any`
path) and the :class:`~repro.faults.audit.InvariantAuditor` relaxes its
permanent-pinning and case-ledger checks for them. Ownership conservation
-- every cell has exactly one holder -- always holds for every strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import BALANCER_NAMES, DLBConfig, resolve_strategy_name
from ..decomp.assignment import CellAssignment
from ..errors import ConfigurationError
from ..parallel.topology import Torus2D
from .protocol import Case, Move, decide_move
from .views import TimingView

#: Balancer names after ``auto`` resolution (what :func:`create_strategy`
#: accepts).
RESOLVED_BALANCER_NAMES = ("permanent", "diffusion", "sfc", "none")


def resolve_balancer_name(requested: str | None) -> str:
    """Resolve a requested balancer (or ``None``) to a concrete strategy name.

    ``None`` defers to the ``REPRO_BALANCER`` environment variable and
    ultimately to ``"auto"``; ``"auto"`` resolves to ``"permanent"`` (the
    paper's protocol). This mirrors
    :func:`repro.md.kernels.resolve_kernel_name` and shares its resolver.
    """
    name = resolve_strategy_name(
        requested,
        env_var="REPRO_BALANCER",
        choices=BALANCER_NAMES,
        label="balancer",
        env_default="auto",
    )
    return "permanent" if name == "auto" else name


@dataclass
class DecisionView:
    """Everything one decision round may read, bundled for ``decide()``.

    ``timing`` is the bounded-staleness :class:`TimingView` (present exactly
    when fault injection is active); ``counts`` are per-cell particle counts
    (present when the runner has them -- strategies with ``needs_counts``
    degrade to uniform weights when they are missing).
    """

    times: np.ndarray
    assignment: CellAssignment
    topology: Torus2D
    config: DLBConfig
    timing: TimingView | None = None
    counts: np.ndarray | None = None

    def fastest_for(self, pe: int) -> tuple[int, float]:
        """``(fastest, fast_time)`` as believed by ``pe``.

        With a timing view this is the bounded-staleness belief; without it
        the argmin over the fixed neighbourhood order (deterministic
        tie-breaking). Both branches are the exact pre-seam code of
        ``DynamicLoadBalancer.decide``.
        """
        if self.timing is not None:
            fastest = self.timing.fastest_known(pe, self.times, self.topology)
            believed = self.timing.effective(pe, fastest)
            assert believed is not None  # fastest_known only picks usable views
            return fastest, believed
        neighborhood = self.topology.neighborhood(pe)
        local = self.times[neighborhood]
        fastest = neighborhood[int(np.argmin(local))]
        return fastest, float(self.times[fastest])

    def wants_rebalance(self, my_time: float, fast_time: float) -> bool:
        """The receiver-selection policy gate (shared by all strategies)."""
        if self.config.policy == "fastest":
            return True
        # "threshold" policy: only move when relative imbalance is large enough.
        if fast_time <= 0:
            return my_time > 0
        return (my_time - fast_time) / fast_time > self.config.threshold


class Balancer:
    """Contract shared by all balancer strategies.

    Subclasses implement :meth:`decide` -- one redistribution round, reading
    a :class:`DecisionView` and returning the :class:`Move` list *without*
    mutating the assignment. Strategies with internal state participate in
    checkpointing through :meth:`state_dict` / :meth:`load_state`; all four
    built-ins are stateless.
    """

    #: Registry key; subclasses override.
    name = "abstract"
    #: True when every decided move obeys the permanent-cell invariants
    #: (lend-to-lower-neighbours only); the balancer shell applies moves
    #: through the strict ``CellAssignment.transfer`` for constrained
    #: strategies and through ``transfer_any`` otherwise.
    constrained = True
    #: True when :meth:`decide` wants per-cell particle counts in the view.
    needs_counts = False

    def decide(self, view: DecisionView, step: int = 0) -> list[Move]:
        """Run one decision round; must not mutate ``view.assignment``."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Checkpoint snapshot of strategy-internal state."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""


class PermanentCellsBalancer(Balancer):
    """The paper's protocol, extracted move-for-move from the pre-seam code.

    Per PE: find the fastest of the 8-neighbourhood (bounded-staleness view
    under faults), gate on the policy, then run the offset case analysis
    (:func:`repro.dlb.protocol.decide_move`) up to ``max_sends_per_step``
    times with already-committed cells excluded.
    """

    name = "permanent"
    constrained = True

    def decide(self, view: DecisionView, step: int = 0) -> list[Move]:
        moves: list[Move] = []
        committed: dict[int, set[int]] = {}
        for pe in range(view.assignment.n_pes):
            fastest, fast_time = view.fastest_for(pe)
            if fastest == pe:
                continue
            if not view.wants_rebalance(float(view.times[pe]), fast_time):
                continue
            exclude = committed.setdefault(pe, set())
            for _ in range(view.config.max_sends_per_step):
                move = decide_move(
                    view.assignment, view.topology, pe, fastest, exclude
                )
                if move is None:
                    break
                exclude.add(move.cell)
                moves.append(move)
        return moves


def _column_torus_distance(
    cells: np.ndarray, target_pe: int, assignment: CellAssignment
) -> np.ndarray:
    """L1 torus distance (in cell columns) from cells to a PE's block centre."""
    nc = assignment.cells_per_side
    m = assignment.m
    column = cells // nc
    cx, cy = np.divmod(column, nc)
    ti, tj = assignment.pe_coords(target_pe)
    centre_x = ti * m + (m - 1) / 2.0
    centre_y = tj * m + (m - 1) / 2.0
    dx = np.abs(cx - centre_x)
    dy = np.abs(cy - centre_y)
    return np.minimum(dx, nc - dx) + np.minimum(dy, nc - dy)


class DiffusionBalancer(Balancer):
    """Nearest-neighbour load diffusion (Demirel & Sbalzarini).

    Every PE compares its own time against the fastest neighbour it knows
    of; when slower, it sheds cells whose summed estimated cost approaches
    half the time difference (the diffusive flux), capped by
    ``max_sends_per_step``. Cost per cell is estimated as ``my_time /
    cells_held`` -- crude, but self-correcting over steps exactly as
    diffusion schemes are. Cells geometrically closest to the receiver move
    first (ties broken by depth then id, like the paper's protocol), which
    keeps the partition roughly compact without enforcing it.

    Unconstrained: permanent cells may move and any 8-neighbour may receive,
    so the assignment's strict lending invariants do not apply.
    """

    name = "diffusion"
    constrained = False

    def decide(self, view: DecisionView, step: int = 0) -> list[Move]:
        moves: list[Move] = []
        for pe in range(view.assignment.n_pes):
            moves.extend(self.decide_for_rank(view, pe))
        return moves

    def decide_for_rank(self, view: DecisionView, pe: int) -> list[Move]:
        """One rank's decision -- PEs act only on cells they hold, so the
        SPMD path calls this per rank and matches the centralised result."""
        fastest, fast_time = view.fastest_for(pe)
        if fastest == pe:
            return []
        my_time = float(view.times[pe])
        if not view.wants_rebalance(my_time, fast_time):
            return []
        held = np.flatnonzero(view.assignment.holder == pe)
        if held.size <= 1 or my_time <= 0:
            return []
        per_cell = my_time / held.size
        flux = 0.5 * (my_time - fast_time)
        quota = min(
            view.config.max_sends_per_step,
            int(flux / per_cell),
            int(held.size) - 1,
        )
        if quota <= 0:  # natural hysteresis: small imbalances stay put
            return []
        distance = _column_torus_distance(held, fastest, view.assignment)
        z = held % view.assignment.cells_per_side
        order = np.lexsort((held, z, distance))
        home = view.assignment.home
        moves = []
        for cell in held[order[:quota]]:
            kind = Case.RETURN_BORROWED if int(home[cell]) == fastest else Case.SEND_OWN
            moves.append(Move(int(cell), pe, fastest, kind))
        return moves


def _morton_interleave(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Morton (z-order) code of non-negative integer coordinate arrays."""
    code = np.zeros(np.shape(x), dtype=np.int64)
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    for bit in range(16):
        code |= ((x >> bit) & 1) << (2 * bit + 1)
        code |= ((y >> bit) & 1) << (2 * bit)
    return code


class SFCBalancer(Balancer):
    """Space-filling-curve repartition of cell ownership.

    Walks every cell column along a Morton curve over the cross-section
    (cells within a column stay contiguous, preserving the pillar locality
    the force pass likes), weights each cell by its particle count plus one
    (pure geometry when counts are unavailable), and cuts the curve into
    ``P`` chunks of equal cumulative weight. Chunk ``k`` belongs to the PE
    with Morton rank ``k``, so neighbouring chunks land on geometrically
    nearby PEs. Moves are the cells whose target differs from their current
    holder, emitted in curve order and capped at ``max_sends_per_step * P``
    per round -- the partition converges to the SFC cut over a few steps
    instead of migrating half the box at once.

    Global by construction (needs every cell's weight), hence
    centralised-only: the SPMD decide path rejects it.
    """

    name = "sfc"
    constrained = False
    needs_counts = True

    def decide(self, view: DecisionView, step: int = 0) -> list[Move]:
        assignment = view.assignment
        nc = assignment.cells_per_side
        n_cells = assignment.n_cells
        n_pes = assignment.n_pes
        if view.counts is not None:
            weights = np.asarray(view.counts, dtype=np.float64) + 1.0
            if weights.shape != (n_cells,):
                raise ConfigurationError(
                    f"counts shape {np.shape(view.counts)} != ({n_cells},)"
                )
        else:
            weights = np.ones(n_cells, dtype=np.float64)

        columns = np.arange(nc * nc)
        cx, cy = np.divmod(columns, nc)
        column_order = columns[np.argsort(_morton_interleave(cx, cy), kind="stable")]
        # Cells of column c are ids c*nc .. c*nc+nc-1; keep them contiguous.
        walk = (column_order[:, None] * nc + np.arange(nc)[None, :]).ravel()

        w = weights[walk]
        # Chunk of each cell: centre-of-mass position along the curve against
        # P-1 equal-weight boundaries.
        centre = np.cumsum(w) - w / 2.0
        total = float(w.sum())
        boundaries = np.arange(1, n_pes) * (total / n_pes)
        chunk = np.searchsorted(boundaries, centre, side="left")

        pes = np.arange(n_pes)
        pi, pj = np.divmod(pes, assignment.pe_side)
        pe_by_rank = pes[np.argsort(_morton_interleave(pi, pj), kind="stable")]
        target = np.empty(n_cells, dtype=np.int64)
        target[walk] = pe_by_rank[chunk]

        holder = assignment.holder
        home = assignment.home
        budget = view.config.max_sends_per_step * n_pes
        moves: list[Move] = []
        for cell in walk:
            if len(moves) >= budget:
                break
            src = int(holder[cell])
            dst = int(target[cell])
            if src == dst:
                continue
            kind = Case.RETURN_BORROWED if int(home[cell]) == dst else Case.SEND_OWN
            moves.append(Move(int(cell), src, dst, kind))
        return moves


class NoBalancer(Balancer):
    """The no-balance counterfactual: never moves a cell.

    Running with ``balancer="none"`` keeps the whole DLB machinery -- timing
    exchange, decision events, cost-model overhead -- while pinning every
    cell at home, which is exactly the baseline the imbalance analytics
    (and the balancer comparison matrix) measure rivals against.
    """

    name = "none"
    constrained = True  # vacuously: no move ever violates an invariant

    def decide(self, view: DecisionView, step: int = 0) -> list[Move]:
        return []


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, type[Balancer]] = {}


def register_strategy(name: str, factory: type[Balancer]) -> None:
    """Register a balancer strategy class under ``name`` (overwrites allowed)."""
    _REGISTRY[name] = factory


register_strategy("permanent", PermanentCellsBalancer)
register_strategy("diffusion", DiffusionBalancer)
register_strategy("sfc", SFCBalancer)
register_strategy("none", NoBalancer)


def available() -> tuple[str, ...]:
    """Registered strategy names, sorted (for docs, CLI help and errors)."""
    return tuple(sorted(_REGISTRY))


def create_strategy(name: str | None = None) -> Balancer:
    """Instantiate the strategy for ``name`` (after ``auto`` resolution)."""
    resolved = resolve_balancer_name(name)
    try:
        factory = _REGISTRY[resolved]
    except KeyError:  # a registered-then-removed or exotic name
        raise ConfigurationError(
            f"no balancer strategy registered under {resolved!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def create_balancer(
    assignment: CellAssignment,
    config: DLBConfig | None = None,
    injector=None,
    strategy: str | None = None,
):
    """Build a :class:`~repro.dlb.balancer.DynamicLoadBalancer` around the
    resolved strategy -- the supported construction path (direct
    ``DynamicLoadBalancer(...)`` construction is deprecated)."""
    from .balancer import DynamicLoadBalancer

    return DynamicLoadBalancer(
        assignment,
        config,
        injector=injector,
        strategy=create_strategy(strategy),
        _from_factory=True,
    )
