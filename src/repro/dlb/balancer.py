"""The dynamic load balancer: protocol + policy + bookkeeping.

Since the strategy seam landed, this class is a *shell*: it owns the
assignment, the policy config, the bounded-staleness timing view and the
stats counters, and delegates the per-round decision to a pluggable
:class:`~repro.dlb.strategies.Balancer` strategy. Build instances through
:func:`repro.dlb.strategies.create_balancer` (or the ``balancer=`` knobs on
:func:`repro.api.simulate` / ``RunConfig``); constructing this class
directly is deprecated and hard-defaults to the ``permanent`` strategy so
legacy call sites keep the paper's exact behaviour regardless of the
``REPRO_BALANCER`` environment.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..config import DLBConfig
from ..decomp.assignment import CellAssignment
from ..errors import ConfigurationError
from ..obs.profiler import scope
from ..parallel.topology import Torus2D
from .protocol import Case, Move
from .strategies import Balancer, DecisionView, PermanentCellsBalancer, create_strategy
from .views import TimingView


@dataclass
class BalancerStats:
    """Cumulative counters of a balancer's activity."""

    steps: int = 0
    lends: int = 0
    returns: int = 0
    idle_steps: int = 0
    moves_per_step: list[int] = field(default_factory=list)

    @property
    def moves_total(self) -> int:
        """Total cells moved (lends + returns)."""
        return self.lends + self.returns

    def as_dict(self) -> dict[str, int]:
        """Flat summary for reports and the metrics exporter."""
        return {
            "steps": self.steps,
            "lends": self.lends,
            "returns": self.returns,
            "idle_steps": self.idle_steps,
            "moves_total": self.moves_total,
        }


class DynamicLoadBalancer:
    """Drives one redistribution round per (configured) step.

    All PEs decide simultaneously from the same per-PE times (the times of
    the *previous* step, exactly as in the paper where each PE broadcasts its
    last-step execution time first). Decisions are conflict-free by
    construction: each PE only moves cells it currently holds, and each cell
    has one holder.
    """

    def __init__(
        self,
        assignment: CellAssignment,
        config: DLBConfig | None = None,
        injector=None,
        strategy: "Balancer | str | None" = None,
        _from_factory: bool = False,
    ) -> None:
        if not _from_factory:
            warnings.warn(
                "constructing DynamicLoadBalancer directly is deprecated; use "
                "repro.dlb.create_balancer(...), which resolves the strategy "
                "registry (config > REPRO_BALANCER > permanent)",
                DeprecationWarning,
                stacklevel=2,
            )
        if assignment.pe_side < 3:
            raise ConfigurationError(
                f"DLB needs a torus side of at least 3 (got {assignment.pe_side}): "
                "smaller tori collapse the 8-neighbour offsets"
            )
        self.assignment = assignment
        self.config = config or DLBConfig()
        self.topology = Torus2D(assignment.pe_side)
        self.stats = BalancerStats()
        # Direct construction hard-defaults to the paper's protocol -- NOT the
        # environment -- so legacy call sites stay permanent-cells under any
        # REPRO_BALANCER value. Env resolution happens in create_balancer.
        if strategy is None:
            strategy = PermanentCellsBalancer()
        elif isinstance(strategy, str):
            strategy = create_strategy(strategy)
        self.strategy: Balancer = strategy
        # Fault injection is strictly opt-in: with no injector the decision
        # path below is byte-for-byte the original (perf gate relies on it).
        self.injector = injector
        self._view: TimingView | None = None
        if injector is not None:
            self._view = TimingView(assignment.n_pes, injector.max_staleness)

    @property
    def strategy_name(self) -> str:
        """Resolved name of the active strategy (stamped into run metadata)."""
        return self.strategy.name

    @property
    def view(self) -> TimingView | None:
        """The bounded-staleness timing view (None without fault injection).

        After :meth:`decide` this holds exactly the per-observer knowledge
        the decision was made from -- the flight recorder snapshots it into
        ``dlb.decision`` events so ``repro explain`` can replay the round.
        """
        return self._view

    def decide(
        self,
        per_pe_times: np.ndarray,
        step: int = 0,
        counts: np.ndarray | None = None,
    ) -> list[Move]:
        """Run one decision round; does not mutate the assignment.

        With a fault injector attached, the step-1 timing broadcast goes
        through a :class:`~repro.dlb.views.TimingView`: dropped reports fall
        back to bounded-staleness last-known values, and a PE with no usable
        neighbour information degrades to the safe no-move decision.

        ``counts`` are optional per-cell particle counts; strategies that
        declare ``needs_counts`` (``sfc``) weight cells by them and degrade
        to uniform weights when they are missing.
        """
        times = np.asarray(per_pe_times, dtype=np.float64)
        if times.shape != (self.assignment.n_pes,):
            raise ConfigurationError(
                f"times shape {times.shape} != ({self.assignment.n_pes},)"
            )
        if self._view is not None:
            self._view.refresh(step, times, self.topology, self.injector)
        if counts is not None:
            # Accept the cell list's (nc, nc, nc) grid: its C-order flatten
            # is exactly the cell-id ordering the assignment uses.
            counts = np.asarray(counts).reshape(-1)
        with scope("dlb.decide"):
            view = DecisionView(
                times=times,
                assignment=self.assignment,
                topology=self.topology,
                config=self.config,
                timing=self._view,
                counts=counts,
            )
            return self.strategy.decide(view, step)

    def apply(self, moves: list[Move]) -> None:
        """Execute decided moves and update counters.

        Constrained strategies (``permanent``) go through the strict
        ``CellAssignment.transfer`` that enforces the permanent-cell
        invariants; unconstrained rivals use ``transfer_any``.
        """
        transfer = (
            self.assignment.transfer
            if self.strategy.constrained
            else self.assignment.transfer_any
        )
        for move in moves:
            transfer(move.cell, move.dst)
            if move.kind is Case.SEND_OWN:
                self.stats.lends += 1
            else:
                self.stats.returns += 1
        self.stats.steps += 1
        self.stats.moves_per_step.append(len(moves))
        if not moves:
            self.stats.idle_steps += 1

    def step(
        self,
        per_pe_times: np.ndarray,
        step: int = 0,
        counts: np.ndarray | None = None,
    ) -> list[Move]:
        """Decide and apply one redistribution round; returns the moves."""
        moves = self.decide(per_pe_times, step=step, counts=counts)
        self.apply(moves)
        return moves

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of balancer bookkeeping (assignment is snapshotted by
        the runner; the two are restored together)."""
        state: dict = {
            "stats": {
                "steps": self.stats.steps,
                "lends": self.stats.lends,
                "returns": self.stats.returns,
                "idle_steps": self.stats.idle_steps,
                "moves_per_step": list(self.stats.moves_per_step),
            },
            "view": self._view.state_dict() if self._view is not None else None,
            "strategy": {
                "name": self.strategy.name,
                "state": self.strategy.state_dict(),
            },
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        stats = state["stats"]
        self.stats.steps = int(stats["steps"])
        self.stats.lends = int(stats["lends"])
        self.stats.returns = int(stats["returns"])
        self.stats.idle_steps = int(stats["idle_steps"])
        self.stats.moves_per_step = list(stats["moves_per_step"])
        if state.get("view") is not None and self._view is not None:
            self._view.load_state_dict(state["view"])
        recorded = state.get("strategy")  # absent in pre-seam checkpoints
        if recorded is not None:
            if recorded["name"] != self.strategy.name:
                raise ConfigurationError(
                    f"checkpoint was written by balancer {recorded['name']!r}; "
                    f"this run uses {self.strategy.name!r} -- rerun with "
                    f"--balancer {recorded['name']}"
                )
            self.strategy.load_state(recorded["state"])
