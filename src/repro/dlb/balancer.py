"""The dynamic load balancer: protocol + policy + bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DLBConfig
from ..decomp.assignment import CellAssignment
from ..errors import ConfigurationError
from ..obs.profiler import scope
from ..parallel.topology import Torus2D
from .protocol import Case, Move, decide_move
from .views import TimingView


@dataclass
class BalancerStats:
    """Cumulative counters of a balancer's activity."""

    steps: int = 0
    lends: int = 0
    returns: int = 0
    idle_steps: int = 0
    moves_per_step: list[int] = field(default_factory=list)

    @property
    def moves_total(self) -> int:
        """Total cells moved (lends + returns)."""
        return self.lends + self.returns

    def as_dict(self) -> dict[str, int]:
        """Flat summary for reports and the metrics exporter."""
        return {
            "steps": self.steps,
            "lends": self.lends,
            "returns": self.returns,
            "idle_steps": self.idle_steps,
            "moves_total": self.moves_total,
        }


class DynamicLoadBalancer:
    """Drives one redistribution round per (configured) step.

    All PEs decide simultaneously from the same per-PE times (the times of
    the *previous* step, exactly as in the paper where each PE broadcasts its
    last-step execution time first). Decisions are conflict-free by
    construction: each PE only moves cells it currently holds, and each cell
    has one holder.
    """

    def __init__(
        self,
        assignment: CellAssignment,
        config: DLBConfig | None = None,
        injector=None,
    ) -> None:
        if assignment.pe_side < 3:
            raise ConfigurationError(
                f"DLB needs a torus side of at least 3 (got {assignment.pe_side}): "
                "smaller tori collapse the 8-neighbour offsets"
            )
        self.assignment = assignment
        self.config = config or DLBConfig()
        self.topology = Torus2D(assignment.pe_side)
        self.stats = BalancerStats()
        # Fault injection is strictly opt-in: with no injector the decision
        # path below is byte-for-byte the original (perf gate relies on it).
        self.injector = injector
        self._view: TimingView | None = None
        if injector is not None:
            self._view = TimingView(assignment.n_pes, injector.max_staleness)

    @property
    def view(self) -> TimingView | None:
        """The bounded-staleness timing view (None without fault injection).

        After :meth:`decide` this holds exactly the per-observer knowledge
        the decision was made from — the flight recorder snapshots it into
        ``dlb.decision`` events so ``repro explain`` can replay the round.
        """
        return self._view

    def _wants_rebalance(self, my_time: float, fast_time: float) -> bool:
        if self.config.policy == "fastest":
            return True
        # "threshold" policy: only move when relative imbalance is large enough.
        if fast_time <= 0:
            return my_time > 0
        return (my_time - fast_time) / fast_time > self.config.threshold

    def decide(self, per_pe_times: np.ndarray, step: int = 0) -> list[Move]:
        """Run one decision round; does not mutate the assignment.

        With a fault injector attached, the step-1 timing broadcast goes
        through a :class:`~repro.dlb.views.TimingView`: dropped reports fall
        back to bounded-staleness last-known values, and a PE with no usable
        neighbour information degrades to the safe no-move decision.
        """
        times = np.asarray(per_pe_times, dtype=np.float64)
        if times.shape != (self.assignment.n_pes,):
            raise ConfigurationError(
                f"times shape {times.shape} != ({self.assignment.n_pes},)"
            )
        if self._view is not None:
            self._view.refresh(step, times, self.topology, self.injector)
        with scope("dlb.decide"):
            moves: list[Move] = []
            committed: dict[int, set[int]] = {}
            for pe in range(self.assignment.n_pes):
                if self._view is not None:
                    fastest = self._view.fastest_known(pe, times, self.topology)
                    believed = self._view.effective(pe, fastest)
                    assert believed is not None  # fastest_known only picks usable views
                    fast_time = believed
                else:
                    neighborhood = self.topology.neighborhood(pe)
                    local = times[neighborhood]
                    fastest = neighborhood[int(np.argmin(local))]
                    fast_time = float(times[fastest])
                if fastest == pe:
                    continue
                if not self._wants_rebalance(float(times[pe]), fast_time):
                    continue
                exclude = committed.setdefault(pe, set())
                for _ in range(self.config.max_sends_per_step):
                    move = decide_move(
                        self.assignment, self.topology, pe, fastest, exclude
                    )
                    if move is None:
                        break
                    exclude.add(move.cell)
                    moves.append(move)
            return moves

    def apply(self, moves: list[Move]) -> None:
        """Execute decided moves and update counters."""
        for move in moves:
            self.assignment.transfer(move.cell, move.dst)
            if move.kind is Case.SEND_OWN:
                self.stats.lends += 1
            else:
                self.stats.returns += 1
        self.stats.steps += 1
        self.stats.moves_per_step.append(len(moves))
        if not moves:
            self.stats.idle_steps += 1

    def step(self, per_pe_times: np.ndarray, step: int = 0) -> list[Move]:
        """Decide and apply one redistribution round; returns the moves."""
        moves = self.decide(per_pe_times, step=step)
        self.apply(moves)
        return moves

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of balancer bookkeeping (assignment is snapshotted by
        the runner; the two are restored together)."""
        state: dict = {
            "stats": {
                "steps": self.stats.steps,
                "lends": self.stats.lends,
                "returns": self.stats.returns,
                "idle_steps": self.stats.idle_steps,
                "moves_per_step": list(self.stats.moves_per_step),
            },
            "view": self._view.state_dict() if self._view is not None else None,
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        stats = state["stats"]
        self.stats.steps = int(stats["steps"])
        self.stats.lends = int(stats["lends"])
        self.stats.returns = int(stats["returns"])
        self.stats.idle_steps = int(stats["idle_steps"])
        self.stats.moves_per_step = list(stats["moves_per_step"])
        if state.get("view") is not None and self._view is not None:
            self._view.load_state_dict(state["view"])
