"""The cell redistribution protocol of Section 2.3.

Every step, each PE:

1. sends its last-step execution time to its 8 neighbours;
2. finds the fastest PE among itself and those neighbours;
3. decides a cell ``C_send`` by the case analysis below;
4. broadcasts the new assignment to its neighbours.

The case analysis, for PE(i, j) and the fastest PE at relative offset
``(di, dj)``:

* **Case 1** -- offset in {(-1,-1), (-1,0), (0,-1)}: send one of PE(i,j)'s own
  movable cells (if any remain at home).
* **Case 2** -- offset in {(-1,+1), (+1,-1)}: no cell can be sent (the
  permanent wall blocks those diagonals).
* **Case 3** -- offset in {(0,+1), (+1,0), (+1,+1)}: if PE(i,j) previously
  *received* cells from the fastest PE, return one of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..decomp.assignment import CellAssignment
from ..errors import ProtocolError
from ..parallel.topology import Torus2D


class Case(enum.Enum):
    """Outcome class of the protocol's case analysis."""

    SELF = "self"
    SEND_OWN = "send_own"
    NOTHING = "nothing"
    RETURN_BORROWED = "return_borrowed"


#: Offsets toward which a PE may lend its own movable cells.
CASE1_OFFSETS = frozenset({(-1, -1), (-1, 0), (0, -1)})
#: Offsets toward which nothing can ever be sent.
CASE2_OFFSETS = frozenset({(-1, 1), (1, -1)})
#: Offsets from which cells were borrowed and may be returned.
CASE3_OFFSETS = frozenset({(0, 1), (1, 0), (1, 1)})


def classify_case(offset: tuple[int, int]) -> Case:
    """Classify a neighbour offset into the protocol's cases."""
    if offset == (0, 0):
        return Case.SELF
    if offset in CASE1_OFFSETS:
        return Case.SEND_OWN
    if offset in CASE2_OFFSETS:
        return Case.NOTHING
    if offset in CASE3_OFFSETS:
        return Case.RETURN_BORROWED
    raise ProtocolError(f"offset {offset} is not an 8-neighbour offset")


@dataclass(frozen=True)
class Move:
    """One cell transfer decided by the protocol."""

    cell: int
    src: int
    dst: int
    kind: Case


def _pick_own_movable(
    assignment: CellAssignment, pe: int, offset: tuple[int, int], exclude: set[int]
) -> int | None:
    """Choose which of ``pe``'s at-home movable cells to lend.

    Prefers the cell geometrically closest to the receiving neighbour in the
    cross-section (lowest local ``u`` for offset (-1, 0), lowest ``v`` for
    (0, -1), lowest ``u + v`` for the corner); ties break on depth ``z`` and
    then cell id, so the protocol is deterministic.
    """
    candidates = assignment.movable_at_home(pe)
    if exclude:
        candidates = candidates[~np.isin(candidates, list(exclude))]
    if len(candidates) == 0:
        return None
    nc = assignment.cells_per_side
    m = assignment.m
    column, z = np.divmod(candidates, nc)
    cx, cy = np.divmod(column, nc)
    u, v = cx % m, cy % m
    di, dj = offset
    distance = np.zeros(len(candidates))
    if di < 0:
        distance = distance + u
    if dj < 0:
        distance = distance + v
    order = np.lexsort((candidates, z, distance))
    return int(candidates[order[0]])


def decide_move(
    assignment: CellAssignment,
    topology: Torus2D,
    pe: int,
    fastest: int,
    exclude: set[int] | None = None,
) -> Move | None:
    """Apply the case analysis for ``pe`` with ``fastest`` as the target.

    Returns the decided :class:`Move`, or ``None`` when the case yields
    ``C_send = 0``. ``exclude`` lists cells already committed this step (used
    when a PE may send more than one cell per step).
    """
    exclude = exclude or set()
    offset = topology.offset(pe, fastest)
    case = classify_case(offset)
    if case in (Case.SELF, Case.NOTHING):
        return None
    if case is Case.SEND_OWN:
        cell = _pick_own_movable(assignment, pe, offset, exclude)
        if cell is None:
            return None
        return Move(cell=cell, src=pe, dst=fastest, kind=Case.SEND_OWN)
    # Case 3: return one previously borrowed cell to its home.
    borrowed = assignment.borrowed_by(pe, fastest)
    if exclude:
        borrowed = borrowed[~np.isin(borrowed, list(exclude))]
    if len(borrowed) == 0:
        return None
    return Move(cell=int(borrowed[0]), src=pe, dst=fastest, kind=Case.RETURN_BORROWED)
