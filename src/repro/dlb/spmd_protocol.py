"""Distributed (SPMD) implementation of the redistribution protocol.

The paper's protocol is a distributed algorithm: step 1 sends each PE's
execution time to its 8 neighbours, steps 2-3 decide locally, step 4
broadcasts the new assignment. :class:`repro.dlb.balancer.DynamicLoadBalancer`
computes the same decisions centrally for speed; this module implements the
message-passing version on the BSP :class:`~repro.parallel.spmd.SPMDExecutor`
-- and a test asserts the two produce *identical* move lists, which is the
strongest evidence that the centralised shortcut is faithful.
"""

from __future__ import annotations

import numpy as np

from ..config import DLBConfig
from ..decomp.assignment import CellAssignment
from ..errors import ConfigurationError
from ..parallel.spmd import SPMDExecutor
from ..parallel.topology import Torus2D
from .protocol import Move, decide_move
from .strategies import DecisionView, DiffusionBalancer
from .views import TimingView

#: Strategies with a distributed formulation. ``sfc`` is global by
#: construction (it re-cuts a curve over *every* cell's weight), so it has
#: no SPMD equivalent and :func:`spmd_decide` rejects it with a clear error.
SPMD_STRATEGIES = ("permanent", "diffusion", "none")


def spmd_decide(
    assignment: CellAssignment,
    per_pe_times: np.ndarray,
    max_sends_per_step: int = 1,
    injector=None,
    step: int = 0,
    view: "TimingView | None" = None,
    strategy: str = "permanent",
    config: "DLBConfig | None" = None,
) -> list[Move]:
    """One distributed decision round; returns the moves in PE order.

    Superstep 1: every rank posts its last-step time to its 8 neighbours.
    Superstep 2: every rank reads its inbox, finds the fastest PE among
    itself and the senders (ties broken in the fixed neighbourhood order,
    exactly as the centralised balancer does), and runs the case analysis.

    With an ``injector``, the broadcast goes through the executor's fault
    hook: a dropped report simply never appears in the receiver's inbox, and
    the receiver falls back to the bounded-staleness last-known value in
    ``view`` (pass the same ``view`` across steps to carry staleness over).
    The hook consults ``injector.report_delivered(step, src, dst)`` -- the
    exact query the centralised balancer makes -- so the two implementations
    observe identical drop patterns and stay move-for-move equivalent.

    ``strategy`` selects among the distributed-capable strategies
    (:data:`SPMD_STRATEGIES`): ``permanent`` runs the paper's case analysis,
    ``diffusion`` runs the same per-rank flux rule as the centralised
    balancer (each rank only sheds cells it holds, so the formulations are
    identical), ``none`` broadcasts times but never moves. ``sfc`` raises
    :class:`~repro.errors.ConfigurationError` -- use a centralised engine.
    """
    times = np.asarray(per_pe_times, dtype=np.float64)
    n_pes = assignment.n_pes
    if times.shape != (n_pes,):
        raise ConfigurationError(f"times shape {times.shape} != ({n_pes},)")
    if assignment.pe_side < 3:
        raise ConfigurationError("SPMD protocol needs a torus side of at least 3")
    if strategy not in SPMD_STRATEGIES:
        raise ConfigurationError(
            f"balancer {strategy!r} has no distributed formulation; the SPMD "
            f"decide path supports {SPMD_STRATEGIES} -- run 'sfc' on a "
            "centralised engine instead"
        )
    if config is None:
        config = DLBConfig(max_sends_per_step=max_sends_per_step)

    topology = Torus2D(assignment.pe_side)
    fault_hook = None
    if injector is not None:
        if view is None:
            view = TimingView(n_pes, injector.max_staleness)

        def fault_hook(_superstep: int, src: int, dst: int) -> int:
            return 1 if injector.report_delivered(step, src, dst) else 0

    executor = SPMDExecutor(n_pes, fault_hook=fault_hook)

    def broadcast_times(rank: int, ex: SPMDExecutor) -> None:
        for neighbor in topology.neighbors(rank):
            ex.send(rank, neighbor, float(times[rank]))

    executor.superstep(broadcast_times)

    moves: list[Move] = []
    diffusion = DiffusionBalancer() if strategy == "diffusion" else None
    decision_view = DecisionView(
        times=times,
        assignment=assignment,
        topology=topology,
        config=config,
        timing=view,
    )

    def decide(rank: int, ex: SPMDExecutor) -> None:
        received = {src: t for src, t in ex.inbox(rank)}
        received[rank] = float(times[rank])
        if view is not None:
            # Fold this round's inbox into the rank's persistent view:
            # delivered reports refresh it, holes age the last-known value.
            view.observe(rank, rank, float(times[rank]))
            for neighbor in topology.neighbors(rank):
                if neighbor in received:
                    view.observe(rank, neighbor, received[neighbor])
                else:
                    view.miss(rank, neighbor)
        if strategy == "none":
            return
        if diffusion is not None:
            # The diffusion rule is already per-rank (a rank only sheds
            # cells it holds), so the centralised helper *is* the SPMD one;
            # its view-aware fastest_for reads the state folded above.
            moves.extend(diffusion.decide_for_rank(decision_view, rank))
            return
        if view is not None:
            fastest = view.fastest_known(rank, times, topology)
        else:
            # Fixed neighbourhood order = deterministic tie-breaking,
            # identical to the centralised balancer's argmin over the same
            # ordering.
            fastest = rank
            best = received[rank]
            for peer in topology.neighborhood(rank)[1:]:
                if received[peer] < best:
                    best = received[peer]
                    fastest = peer
        if fastest == rank:
            return
        exclude: set[int] = set()
        for _ in range(config.max_sends_per_step):
            move = decide_move(assignment, topology, rank, fastest, exclude)
            if move is None:
                break
            exclude.add(move.cell)
            moves.append(move)

    executor.superstep(decide)
    return moves
