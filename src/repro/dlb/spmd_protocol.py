"""Distributed (SPMD) implementation of the redistribution protocol.

The paper's protocol is a distributed algorithm: step 1 sends each PE's
execution time to its 8 neighbours, steps 2-3 decide locally, step 4
broadcasts the new assignment. :class:`repro.dlb.balancer.DynamicLoadBalancer`
computes the same decisions centrally for speed; this module implements the
message-passing version on the BSP :class:`~repro.parallel.spmd.SPMDExecutor`
-- and a test asserts the two produce *identical* move lists, which is the
strongest evidence that the centralised shortcut is faithful.
"""

from __future__ import annotations

import numpy as np

from ..decomp.assignment import CellAssignment
from ..errors import ConfigurationError
from ..parallel.spmd import SPMDExecutor
from ..parallel.topology import Torus2D
from .protocol import Move, decide_move


def spmd_decide(
    assignment: CellAssignment,
    per_pe_times: np.ndarray,
    max_sends_per_step: int = 1,
) -> list[Move]:
    """One distributed decision round; returns the moves in PE order.

    Superstep 1: every rank posts its last-step time to its 8 neighbours.
    Superstep 2: every rank reads its inbox, finds the fastest PE among
    itself and the senders (ties broken in the fixed neighbourhood order,
    exactly as the centralised balancer does), and runs the case analysis.
    """
    times = np.asarray(per_pe_times, dtype=np.float64)
    n_pes = assignment.n_pes
    if times.shape != (n_pes,):
        raise ConfigurationError(f"times shape {times.shape} != ({n_pes},)")
    if assignment.pe_side < 3:
        raise ConfigurationError("SPMD protocol needs a torus side of at least 3")

    topology = Torus2D(assignment.pe_side)
    executor = SPMDExecutor(n_pes)

    def broadcast_times(rank: int, ex: SPMDExecutor) -> None:
        for neighbor in topology.neighbors(rank):
            ex.send(rank, neighbor, float(times[rank]))

    executor.superstep(broadcast_times)

    moves: list[Move] = []

    def decide(rank: int, ex: SPMDExecutor) -> None:
        received = {src: t for src, t in ex.inbox(rank)}
        received[rank] = float(times[rank])
        # Fixed neighbourhood order = deterministic tie-breaking, identical
        # to the centralised balancer's argmin over the same ordering.
        fastest = rank
        best = received[rank]
        for peer in topology.neighborhood(rank)[1:]:
            if received[peer] < best:
                best = received[peer]
                fastest = peer
        if fastest == rank:
            return
        exclude: set[int] = set()
        for _ in range(max_sends_per_step):
            move = decide_move(assignment, topology, rank, fastest, exclude)
            if move is None:
                break
            exclude.add(move.cell)
            moves.append(move)

    executor.superstep(decide)
    return moves
