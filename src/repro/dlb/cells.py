"""Counting movable and permanent cells of a square-pillar domain.

From Section 2.3 / Figure 3: within each PE's ``m x m`` column block, one row
and one column of columns are permanent (the wall), ``2m - 1`` columns in
total, leaving ``(m - 1)^2`` movable.
"""

from __future__ import annotations

from ..errors import ConfigurationError


def _check_m(m: int) -> None:
    if m < 1:
        raise ConfigurationError(f"pillar cross-section m must be >= 1, got {m}")


def permanent_count(m: int) -> int:
    """Permanent columns per domain: ``2m - 1``."""
    _check_m(m)
    return 2 * m - 1


def movable_count(m: int) -> int:
    """Movable columns per domain: ``(m - 1)^2``."""
    _check_m(m)
    return (m - 1) ** 2


def movable_fraction(m: int) -> float:
    """Fraction of a domain that is movable: ``(m-1)^2 / m^2``.

    The paper's examples: 1/4 for m=2, 9/16 for m=4 (Section 3.3), so larger
    m means larger load-balancing capability.
    """
    _check_m(m)
    return movable_count(m) / (m * m)
