"""Dynamic load balancing with permanent cells -- the paper's contribution.

Each PE's square-pillar domain keeps a wall of *permanent* cell columns that
never migrate, guaranteeing the regular 8-neighbour communication pattern;
the remaining *movable* columns flow toward faster neighbours one column per
step, following the protocol of Section 2.3.

Since the strategy seam landed, the permanent-cell protocol is one of
several registered strategies behind the :class:`~repro.dlb.strategies.Balancer`
protocol (see :mod:`repro.dlb.strategies`); select one with the
``balancer=`` knobs (``RunConfig.balancer`` / ``simulate(balancer=...)`` /
``--balancer`` / ``REPRO_BALANCER``) and build balancer instances through
:func:`create_balancer`.
"""

from .balancer import DynamicLoadBalancer, Move
from .cells import movable_count, movable_fraction, permanent_count
from .limits import dlb_limit_ratio, max_domain_cells, max_domain_columns
from .protocol import Case, classify_case, decide_move
from .spmd_protocol import spmd_decide
from .strategies import (
    Balancer,
    DecisionView,
    available,
    create_balancer,
    create_strategy,
    register_strategy,
    resolve_balancer_name,
)

__all__ = [
    "Balancer",
    "Case",
    "DecisionView",
    "DynamicLoadBalancer",
    "Move",
    "available",
    "classify_case",
    "create_balancer",
    "create_strategy",
    "decide_move",
    "dlb_limit_ratio",
    "max_domain_cells",
    "max_domain_columns",
    "movable_count",
    "movable_fraction",
    "permanent_count",
    "register_strategy",
    "resolve_balancer_name",
    "spmd_decide",
]
