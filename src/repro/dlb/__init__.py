"""Dynamic load balancing with permanent cells -- the paper's contribution.

Each PE's square-pillar domain keeps a wall of *permanent* cell columns that
never migrate, guaranteeing the regular 8-neighbour communication pattern;
the remaining *movable* columns flow toward faster neighbours one column per
step, following the protocol of Section 2.3.
"""

from .balancer import DynamicLoadBalancer, Move
from .cells import movable_count, movable_fraction, permanent_count
from .limits import dlb_limit_ratio, max_domain_cells, max_domain_columns
from .protocol import Case, classify_case, decide_move
from .spmd_protocol import spmd_decide

__all__ = [
    "Case",
    "DynamicLoadBalancer",
    "Move",
    "classify_case",
    "decide_move",
    "dlb_limit_ratio",
    "max_domain_cells",
    "max_domain_columns",
    "movable_count",
    "movable_fraction",
    "permanent_count",
    "spmd_decide",
]
