"""Offline replay of balancer decisions from the flight recorder.

A ``dlb.decision`` event records the round's complete inputs: the per-PE
times the balancer consumed, the pre-round lent-cell set (enough to rebuild
the holder map), and — under fault injection — the post-refresh
:class:`~repro.dlb.views.TimingView` matrices. The decision logic itself
(:func:`~repro.dlb.protocol.decide_move` plus the policy gate) is pure, so
the round can be replayed bit-exactly long after the run finished, and the
replay cross-checked against the moves the log says were made.

``repro explain <events.jsonl> --step K`` renders the replay as a
human-readable "why cells moved" narrative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DLBConfig
from ..decomp.assignment import CellAssignment
from ..errors import AnalysisError
from ..parallel.topology import Torus2D
from .protocol import decide_move
from .strategies import DecisionView, available, create_strategy
from .views import TimingView

__all__ = [
    "ReplayedDecision",
    "explain_events",
    "find_run_start",
    "render_explanation",
    "replay_decision",
]


def find_run_start(records: list[dict]) -> dict:
    """The log's ``run.start`` record (the replay's static context)."""
    for record in records:
        if record.get("kind") == "run.start":
            return record
    raise AnalysisError("event log has no run.start record")


def _wants_rebalance(
    policy: str, threshold: float, my_time: float, fast_time: float
) -> bool:
    """The policy gate, mirroring ``DynamicLoadBalancer._wants_rebalance``."""
    if policy == "fastest":
        return True
    if fast_time <= 0:
        return my_time > 0
    return (my_time - fast_time) / fast_time > threshold


@dataclass
class ReplayedDecision:
    """One replayed balancer round and its cross-check against the log."""

    step: int
    replayed_moves: list[dict]
    logged_moves: list[dict]
    narrative: list[str]

    @property
    def matches(self) -> bool:
        """Whether the replay reproduced the logged moves exactly, in order."""
        return self.replayed_moves == self.logged_moves


def replay_decision(run_start: dict, event: dict) -> ReplayedDecision:
    """Re-run one logged balancer round from its recorded inputs.

    Rebuilds the pre-round assignment from the event's lent set, the timing
    view from its logged matrices (when present), and dispatches on the
    ``balancer`` strategy the ``run.start`` record names (logs predating
    the strategy seam replay as ``permanent``). The paper's protocol gets
    the detailed per-PE narrative; rival strategies replay through their
    registered :class:`~repro.dlb.strategies.Balancer` implementation. A
    log recorded by a strategy this build does not know raises
    :class:`~repro.errors.AnalysisError` instead of reporting a spurious
    divergence.
    """
    dlb = run_start.get("dlb") or {}
    balancer_name = dlb.get("balancer", "permanent")
    if balancer_name not in available():
        raise AnalysisError(
            f"event log was recorded with balancer {balancer_name!r}, which "
            f"is not registered in this build (known: {list(available())}); "
            "cannot replay its decisions"
        )
    n_pes = int(run_start["n_pes"])
    assignment = CellAssignment(int(run_start["cells_per_side"]), n_pes)
    for cell, holder in event.get("lent") or []:
        # Mirror runner.restore: the holder map is data, not a protocol step.
        assignment.holder[int(cell)] = int(holder)
    topology = Torus2D(assignment.pe_side)
    times = np.asarray(event["times"], dtype=np.float64)
    if times.shape != (n_pes,):
        raise AnalysisError(
            f"decision at step {event.get('step')} logged {times.shape} times "
            f"for a {n_pes}-PE machine"
        )
    view: TimingView | None = None
    view_state = event.get("view")
    if view_state is not None:
        view = TimingView(n_pes, int(view_state["max_staleness"]))
        view.times[...] = np.asarray(view_state["times"], dtype=np.float64)
        view.age[...] = np.asarray(view_state["age"], dtype=np.int64)
    policy = dlb.get("policy", "fastest")
    threshold = float(dlb.get("threshold", 0.0))
    max_sends = int(dlb.get("max_sends_per_step", 1))

    if balancer_name != "permanent":
        return _replay_strategy(
            balancer_name, event, assignment, topology, times, view,
            DLBConfig(policy=policy, threshold=threshold, max_sends_per_step=max_sends),
        )

    replayed: list[dict] = []
    narrative: list[str] = []
    committed: dict[int, set[int]] = {}
    for pe in range(n_pes):
        if view is not None:
            fastest = int(view.fastest_known(pe, times, topology))
            believed = view.effective(pe, fastest)
            assert believed is not None  # fastest_known only picks usable views
            fast_time = believed
        else:
            neighborhood = topology.neighborhood(pe)
            fastest = int(neighborhood[int(np.argmin(times[neighborhood]))])
            fast_time = float(times[fastest])
        my_time = float(times[pe])
        if fastest == pe:
            continue
        if not _wants_rebalance(policy, threshold, my_time, fast_time):
            narrative.append(
                f"PE {pe} ({my_time:.4g} s) saw fastest neighbour PE {fastest} "
                f"({fast_time:.4g} s) but stayed under the {threshold:g} "
                f"imbalance threshold — no move"
            )
            continue
        exclude = committed.setdefault(pe, set())
        sent = 0
        for _ in range(max_sends):
            move = decide_move(assignment, topology, pe, fastest, exclude)
            if move is None:
                break
            exclude.add(move.cell)
            replayed.append(
                {
                    "cell": int(move.cell),
                    "src": int(move.src),
                    "dst": int(move.dst),
                    "case": move.kind.value,
                }
            )
            verb = "lent" if move.kind.value == "send_own" else "returned"
            narrative.append(
                f"PE {pe} ({my_time:.4g} s) {verb} cell {int(move.cell)} to "
                f"PE {fastest} ({fast_time:.4g} s"
                + (", last-known report" if view is not None else "")
                + ")"
            )
            sent += 1
        if sent == 0:
            narrative.append(
                f"PE {pe} ({my_time:.4g} s) wanted to offload toward fastest "
                f"PE {fastest} ({fast_time:.4g} s) but had no eligible cell "
                f"(permanent wall or nothing left to lend/return)"
            )
    return ReplayedDecision(
        step=int(event["step"]),
        replayed_moves=replayed,
        logged_moves=list(event.get("moves") or []),
        narrative=narrative,
    )


def _replay_strategy(
    balancer_name: str,
    event: dict,
    assignment: CellAssignment,
    topology: Torus2D,
    times: np.ndarray,
    view: "TimingView | None",
    config: DLBConfig,
) -> ReplayedDecision:
    """Replay a non-permanent round through its registered strategy.

    The decision event carries every input the strategy consumed: times,
    the lent set (already folded into ``assignment``), the timing view, and
    -- for count-weighted strategies like ``sfc`` -- the per-cell particle
    counts.
    """
    counts = event.get("counts")
    strategy = create_strategy(balancer_name)
    decision_view = DecisionView(
        times=times,
        assignment=assignment,
        topology=topology,
        config=config,
        timing=view,
        counts=np.asarray(counts, dtype=np.int64) if counts is not None else None,
    )
    replayed: list[dict] = []
    narrative: list[str] = []
    if balancer_name == "none":
        narrative.append(
            "balancer 'none': redistribution disabled by construction — "
            "no moves to replay"
        )
    for move in strategy.decide(decision_view, int(event["step"])):
        replayed.append(
            {
                "cell": int(move.cell),
                "src": int(move.src),
                "dst": int(move.dst),
                "case": move.kind.value,
            }
        )
        verb = "lent" if move.kind.value == "send_own" else "returned"
        narrative.append(
            f"PE {move.src} ({float(times[move.src]):.4g} s) {verb} cell "
            f"{int(move.cell)} to PE {move.dst} "
            f"({float(times[move.dst]):.4g} s) [{balancer_name}]"
        )
    return ReplayedDecision(
        step=int(event["step"]),
        replayed_moves=replayed,
        logged_moves=list(event.get("moves") or []),
        narrative=narrative,
    )


def explain_events(
    records: list[dict], step: int | None = None
) -> list[ReplayedDecision]:
    """Replay the log's balancer rounds (all, or only the one at ``step``).

    Raises :class:`~repro.errors.AnalysisError` when ``step`` names a step
    with no recorded decision.
    """
    run_start = find_run_start(records)
    decisions = [
        record
        for record in records
        if record.get("kind") == "dlb.decision"
        and (step is None or int(record["step"]) == step)
    ]
    if step is not None and not decisions:
        recorded = sorted(
            {int(r["step"]) for r in records if r.get("kind") == "dlb.decision"}
        )
        raise AnalysisError(
            f"no balancer decision recorded at step {step} "
            f"(decisions at steps {recorded[:12]}{'...' if len(recorded) > 12 else ''})"
        )
    return [replay_decision(run_start, event) for event in decisions]


def render_explanation(decision: ReplayedDecision) -> str:
    """The human-readable block ``repro explain`` prints for one round."""
    check = (
        "replay matches the log"
        if decision.matches
        else "REPLAY DIVERGES FROM THE LOG"
    )
    lines = [
        f"step {decision.step}: {len(decision.logged_moves)} move(s) — {check}"
    ]
    lines.extend(f"  {line}" for line in decision.narrative)
    if not decision.narrative:
        lines.append("  every PE already saw itself as fastest — nothing to move")
    if not decision.matches:
        lines.append(f"  logged:   {decision.logged_moves}")
        lines.append(f"  replayed: {decision.replayed_moves}")
    return "\n".join(lines)
