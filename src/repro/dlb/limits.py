"""The DLB limit: how much load the permanent cells allow to move.

The maximum domain (Figure 4 / Figure 8) is a PE's own ``m^2`` columns plus
all ``(m-1)^2`` movable columns of each of the three neighbours that may lend
to it: ``C' = [m^2 + 3(m-1)^2] * C^(1/3)`` cells.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .cells import movable_count


def max_domain_columns(m: int) -> int:
    """Columns of the maximum domain: ``m^2 + 3 (m-1)^2``."""
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    return m * m + 3 * movable_count(m)


def max_domain_cells(m: int, cells_per_side: int) -> int:
    """Cells of the maximum domain: ``C' = [m^2 + 3(m-1)^2] C^(1/3)``."""
    if cells_per_side < 1:
        raise ConfigurationError(f"cells_per_side must be >= 1, got {cells_per_side}")
    return max_domain_columns(m) * cells_per_side


def dlb_limit_ratio(m: int) -> float:
    """Maximum growth factor of a domain: ``[m^2 + 3(m-1)^2] / m^2``.

    Section 2.3's "up to 2.3 times the number of cells allocated initially"
    is this ratio at m = 3 (the 3x3-cells-per-PE example of Figure 4).
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    return max_domain_columns(m) / (m * m)
