"""Per-PE views of neighbour timing reports, with staleness tracking.

Step 1 of the redistribution protocol has every PE broadcast its last-step
execution time to its 8 neighbours. On a healthy machine every report
arrives and each PE's view of its neighbourhood is exact. Under faults a
report may be dropped; the receiver then falls back to the **last value it
saw**, up to a bounded staleness, and beyond that treats the neighbour as
*unknown* -- excluding it from the fastest-PE selection entirely.

That bounded-staleness fallback is the protocol's graceful degradation: a
PE with no usable neighbour information makes the safe no-move decision
instead of acting on garbage, and a PE acting on a slightly stale time can
only propose moves the structural invariants already allow (the assignment
layer rejects anything else). Related balancing work shows convergence
guarantees hinge exactly on this withheld/stale-information behaviour
(arXiv:1308.0148).

The same :class:`TimingView` is shared by the centralised balancer and the
SPMD protocol so the two remain move-for-move equivalent under identical
fault injection.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..parallel.topology import Torus2D

#: Age marking a report that was never received (effectively infinite but
#: safely incrementable).
NEVER = np.iinfo(np.int64).max // 2


class TimingView:
    """Each PE's last-known execution times of its neighbours.

    Parameters
    ----------
    n_pes:
        Number of PEs.
    max_staleness:
        How many steps old a last-known report may be and still be used.
        0 means only fresh (this-step) reports count.
    """

    def __init__(self, n_pes: int, max_staleness: int = 0) -> None:
        if n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {n_pes}")
        if max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be non-negative, got {max_staleness}"
            )
        self.n_pes = int(n_pes)
        self.max_staleness = int(max_staleness)
        #: ``times[observer, src]``: last value ``observer`` received from ``src``.
        self.times = np.zeros((n_pes, n_pes), dtype=np.float64)
        #: ``age[observer, src]``: steps since that value arrived (NEVER = never).
        self.age = np.full((n_pes, n_pes), NEVER, dtype=np.int64)

    def observe(self, observer: int, src: int, value: float) -> None:
        """Record a delivered report: ``observer`` learns ``src``'s time."""
        self.times[observer, src] = value
        self.age[observer, src] = 0

    def miss(self, observer: int, src: int) -> None:
        """Record a dropped report: the last-known value ages by one step."""
        if self.age[observer, src] < NEVER:
            self.age[observer, src] += 1

    def effective(self, observer: int, src: int) -> float | None:
        """The time ``observer`` may use for ``src``, or None when unusable."""
        if self.age[observer, src] > self.max_staleness:
            return None
        return float(self.times[observer, src])

    def refresh(self, step: int, times: np.ndarray, topology: Torus2D, injector) -> None:
        """One broadcast round: deliver or age every neighbour report.

        ``injector`` follows the :class:`~repro.faults.injector.FaultInjector`
        protocol (``report_delivered(step, src, dst)``); ``None`` delivers
        everything.
        """
        for dst in range(self.n_pes):
            self.observe(dst, dst, float(times[dst]))
            for src in topology.neighbors(dst):
                if injector is None or injector.report_delivered(step, src, dst):
                    self.observe(dst, src, float(times[src]))
                else:
                    self.miss(dst, src)

    def fastest_known(self, observer: int, times: np.ndarray, topology: Torus2D) -> int:
        """The fastest PE among ``observer`` and its *usable* neighbour views.

        Iterates the fixed neighbourhood order (deterministic tie-breaking,
        identical to the healthy path's argmin); neighbours with no usable
        report are skipped, so with every report dropped the PE simply
        elects itself -- the safe no-move decision.
        """
        best_pe = observer
        best = float(times[observer])
        for peer in topology.neighborhood(observer)[1:]:
            value = self.effective(observer, peer)
            if value is not None and value < best:
                best = value
                best_pe = peer
        return best_pe

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the view (both arrays, copied)."""
        return {
            "max_staleness": self.max_staleness,
            "times": self.times.copy(),
            "age": self.age.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.max_staleness = int(state["max_staleness"])
        self.times[...] = state["times"]
        self.age[...] = state["age"]
