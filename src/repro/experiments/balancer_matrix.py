"""Balancer strategy matrix: competing strategies over one workload grid.

The permanent-cells protocol is the paper's contribution, but its efficiency
claim only means something against alternatives. This driver runs the same
workloads under every registered balancer strategy -- ``permanent`` (the
paper), ``diffusion`` (nearest-neighbour load diffusion), ``sfc``
(space-filling-curve repartition) and ``none`` (static decomposition, the
control) -- over a (workload x PE-count) grid and renders one comparison
table per grid point via
:func:`repro.reporting.balancer_comparison_report`.

Workloads are the two regimes the paper contrasts: ``uniform`` (no
attraction -- the gas stays homogeneous, so there is nothing to balance) and
``clustered`` (seeded nucleation concentrates particles, the Figure 5
scenario where DLB pays off). The headline check -- ``permanent`` beating
``none`` on the clustered workload -- is what the CI smoke job asserts.

Run it directly::

    python -m repro.experiments.balancer_matrix --quick
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace

from .. import api
from ..config import RunConfig
from ..core.results import RunResult
from ..errors import ConfigurationError
from ..reporting import balancer_comparison_report
from ..units import PAPER_RHO
from .common import geometry_for, simulation_config_for

#: Strategy order of the comparison tables (the control row leads).
DEFAULT_BALANCERS = ("none", "permanent", "diffusion", "sfc")

#: Workload regimes: name -> nucleation-attraction strength.
WORKLOADS = {"uniform": 0.0, "clustered": 0.6}


@dataclass(frozen=True)
class MatrixCell:
    """One completed run of the (balancer x workload x P) grid."""

    balancer: str
    workload: str
    n_pes: int
    result: RunResult


@dataclass(frozen=True)
class BalancerMatrixResult:
    """The full grid plus the comparison views over it."""

    cells: tuple[MatrixCell, ...]
    steps: int
    seed: int

    def grid_points(self) -> list[tuple[str, int]]:
        """The distinct (workload, n_pes) points, in first-seen order."""
        seen: list[tuple[str, int]] = []
        for cell in self.cells:
            key = (cell.workload, cell.n_pes)
            if key not in seen:
                seen.append(key)
        return seen

    def results_at(self, workload: str, n_pes: int) -> dict[str, RunResult]:
        """Balancer -> result at one grid point (insertion = run order)."""
        return {
            cell.balancer: cell.result
            for cell in self.cells
            if cell.workload == workload and cell.n_pes == n_pes
        }

    def report(self) -> str:
        """One comparison table per grid point."""
        blocks = []
        for workload, n_pes in self.grid_points():
            blocks.append(
                balancer_comparison_report(
                    self.results_at(workload, n_pes),
                    title=(
                        f"Balancer comparison: {workload} workload, "
                        f"P={n_pes} ({self.steps} steps, seed {self.seed})"
                    ),
                )
            )
        return "\n\n".join(blocks)

    def permanent_beats_none(self, workload: str = "clustered") -> bool | None:
        """Whether ``permanent`` out-balanced the static control.

        Compares mean per-step simulated time at every ``workload`` grid
        point; ``None`` when the grid lacks either strategy there. This is
        the paper's headline claim restated over the seam: the protocol's
        redistribution must beat doing nothing where load concentrates.
        """
        verdicts = []
        for point_workload, n_pes in self.grid_points():
            if point_workload != workload:
                continue
            results = self.results_at(point_workload, n_pes)
            if "permanent" not in results or "none" not in results:
                continue
            verdicts.append(
                results["permanent"].summary()["tt_mean"]
                < results["none"].summary()["tt_mean"]
            )
        if not verdicts:
            return None
        return all(verdicts)


def _config_for(workload: str, n_pes: int, m: int):
    """The simulation config of one grid point (dlb always enabled).

    The ``none`` strategy -- not ``dlb=False`` -- is the control: every run
    takes the same decision cadence through the same seam, so the comparison
    isolates the *strategy*, not the presence of the balancing machinery.
    """
    try:
        attraction = WORKLOADS[workload]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    geometry = geometry_for(m, n_pes, PAPER_RHO)
    config = simulation_config_for(geometry, dlb_enabled=True, attraction=attraction)
    if attraction > 0:
        # Several seeded nucleation sites, like the scaled Figure 5 presets:
        # clustering happens in hundreds of steps instead of thousands.
        config = replace(config, md=replace(config.md, n_attractors=5))
    return config


def run_balancer_matrix(
    balancers: tuple[str, ...] = DEFAULT_BALANCERS,
    workloads: tuple[str, ...] = ("uniform", "clustered"),
    pe_counts: tuple[int, ...] = (9,),
    steps: int = 300,
    seed: int = 7,
    m: int = 2,
    record_interval: int = 5,
) -> BalancerMatrixResult:
    """Run the balancer x workload x PE-count grid and collect the results.

    Every run goes through :func:`repro.api.simulate` with an explicit
    ``balancer=`` -- the same redesigned selection surface users hit -- so
    the matrix exercises exactly the code path it reports on.
    """
    cells = []
    for workload in workloads:
        for n_pes in pe_counts:
            config = _config_for(workload, n_pes, m)
            for balancer in balancers:
                result = api.simulate(
                    config,
                    run=RunConfig(
                        steps=steps,
                        seed=seed,
                        record_interval=record_interval,
                    ),
                    balancer=balancer,
                )
                cells.append(
                    MatrixCell(
                        balancer=result.meta["balancer"],
                        workload=workload,
                        n_pes=n_pes,
                        result=result,
                    )
                )
    return BalancerMatrixResult(cells=tuple(cells), steps=steps, seed=seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare balancer strategies over a workload grid"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized grid: one PE count, short runs (seconds, not minutes)",
    )
    parser.add_argument("--steps", type=int, default=None,
                        help="override the per-run step count")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--balancers",
        nargs="+",
        default=list(DEFAULT_BALANCERS),
        help="strategies to compare (default: all registered)",
    )
    parser.add_argument(
        "--pe-counts",
        nargs="+",
        type=int,
        default=None,
        help="PE counts of the grid (default: 9, plus 16 without --quick)",
    )
    args = parser.parse_args(argv)
    pe_counts = tuple(args.pe_counts) if args.pe_counts else (
        (9,) if args.quick else (9, 16)
    )
    steps = args.steps if args.steps is not None else (150 if args.quick else 300)
    matrix = run_balancer_matrix(
        balancers=tuple(args.balancers),
        pe_counts=pe_counts,
        steps=steps,
        seed=args.seed,
    )
    print(matrix.report())
    verdict = matrix.permanent_beats_none()
    if verdict is None:
        print("\nheadline check skipped (grid lacks permanent/none "
              "on the clustered workload)")
        return 0
    if verdict:
        print("\nheadline check: permanent beats the static 'none' baseline "
              "on the clustered workload")
        return 0
    print("\nheadline check FAILED: permanent did not beat 'none' "
          "on the clustered workload")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
