"""Shared geometry and configuration helpers for the experiment drivers.

The paper's evaluation varies the pillar cross-section ``m`` and the PE count
``P`` while keeping the *cell size* pinned to "r_c or a little larger"
(Section 3.2). :func:`geometry_for` reproduces that coupling: given ``(m, P,
density)`` it derives the grid ``nc = m sqrt(P)``, the box ``L = nc * cell``
and the particle count ``N = density * L^3``, so different ``m`` values are
compared at identical cell size and gas statistics, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import DecompositionConfig, DLBConfig, MachineConfig, MDConfig, SimulationConfig
from ..errors import ConfigurationError
from ..units import PAPER_CUTOFF, PAPER_RHO

#: Cell edge used across experiments: "a little larger" than the cut-off,
#: matching the paper's N=8000 / C=1728 run (31.50 / 12 = 2.62).
EXPERIMENT_CELL_SIZE = 1.05 * PAPER_CUTOFF


@dataclass(frozen=True)
class ExperimentGeometry:
    """Derived problem geometry for one (m, P, density) experiment point."""

    m: int
    n_pes: int
    density: float
    cells_per_side: int
    box_length: float
    n_particles: int

    @property
    def pe_side(self) -> int:
        """Torus side ``sqrt(P)``."""
        return math.isqrt(self.n_pes)


def geometry_for(m: int, n_pes: int, density: float = PAPER_RHO) -> ExperimentGeometry:
    """Problem geometry for a pillar cross-section ``m`` on ``P`` PEs."""
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    pe_side = math.isqrt(n_pes)
    if pe_side * pe_side != n_pes:
        raise ConfigurationError(f"n_pes must be a perfect square, got {n_pes}")
    cells_per_side = m * pe_side
    box_length = cells_per_side * EXPERIMENT_CELL_SIZE
    n_particles = int(round(density * box_length**3))
    return ExperimentGeometry(
        m=m,
        n_pes=n_pes,
        density=density,
        cells_per_side=cells_per_side,
        box_length=box_length,
        n_particles=n_particles,
    )


def simulation_config_for(
    geometry: ExperimentGeometry,
    dlb_enabled: bool,
    machine: MachineConfig | None = None,
    attraction: float = 0.0,
) -> SimulationConfig:
    """Materialise a geometry as a full simulation config."""
    return SimulationConfig(
        md=MDConfig(
            n_particles=geometry.n_particles,
            density=geometry.density,
            attraction=attraction,
        ),
        decomposition=DecompositionConfig(
            cells_per_side=geometry.cells_per_side,
            n_pes=geometry.n_pes,
            shape="pillar",
        ),
        dlb=DLBConfig(enabled=dlb_enabled),
        machine=machine if machine is not None else MachineConfig(),
    )


def droplets_for(geometry: ExperimentGeometry, cells_per_droplet: float = 8.0) -> int:
    """Initial nucleation-site count: one droplet per ~8 cells.

    Scaling with the cell count (not the PE count) keeps the early sweep
    statistically balanced across domains for every problem size, as real
    homogeneous nucleation is.
    """
    n_cells = geometry.cells_per_side**3
    return max(12, int(round(n_cells / cells_per_droplet)))
