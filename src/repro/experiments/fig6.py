"""Figure 6: per-step timing detail -- Tt, Fmax, Fave, Fmin.

Panel (a) shows plain DDM: the gap between Fmax and Fmin widens rapidly with
the time step and Tt tracks Fmax (barrier synchronisation). Panel (b) shows
DLB-DDM holding Fmax close to Fmin for thousands of steps, with the gap
reopening only once concentration exceeds the DLB limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import RunResult
from ..errors import AnalysisError
from .fig5 import Fig5Result, run_fig5


@dataclass(frozen=True)
class Fig6Panel:
    """The four curves of one Figure 6 panel."""

    steps: np.ndarray
    tt: np.ndarray
    fmax: np.ndarray
    fave: np.ndarray
    fmin: np.ndarray

    @property
    def gap(self) -> np.ndarray:
        """``Fmax - Fmin`` over the run."""
        return self.fmax - self.fmin

    def gap_growth(self) -> float:
        """Gap at the end relative to the start (decile-smoothed)."""
        gap = self.gap
        k = max(1, len(gap) // 10)
        start = float(gap[:k].mean())
        end = float(gap[-k:].mean())
        if start <= 0:
            raise AnalysisError("degenerate gap baseline")
        return end / start


@dataclass(frozen=True)
class Fig6Result:
    """Both panels: DDM (a) and DLB-DDM (b)."""

    ddm: Fig6Panel
    dlb: Fig6Panel


def _panel(result: RunResult) -> Fig6Panel:
    log = result.timing
    return Fig6Panel(
        steps=log.steps, tt=log.tt, fmax=log.fmax, fave=log.fave, fmin=log.fmin
    )


def run_fig6(
    preset: str = "fig5a-scaled",
    steps: int | None = None,
    seed: int = 7,
    record_interval: int = 20,
) -> Fig6Result:
    """Run the Figure 6 detail experiment (same workload as Figure 5a)."""
    fig5 = run_fig5(preset=preset, steps=steps, seed=seed, record_interval=record_interval)
    return fig6_from_fig5(fig5)


def fig6_from_fig5(fig5: Fig5Result) -> Fig6Result:
    """Extract the Figure 6 panels from an existing Figure 5 run (no rerun)."""
    return Fig6Result(ddm=_panel(fig5.ddm), dlb=_panel(fig5.dlb))
