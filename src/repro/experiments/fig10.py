"""Figure 10: theoretical upper bounds vs experimental boundary points.

For each pillar cross-section m (panels a-c) and each reduced density, the
paper runs ten repetitions (five initial configurations x two runs), detects
each run's boundary point -- the step where ``Fmax - Fmin`` begins to
increase -- and plots the averaged points against the theoretical bound
``f(m, n)``. The experimental boundary (a least-squares fit through the
points) always lies below the bound, is closer to it for larger m, and mostly
exceeds half of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import api
from ..errors import AnalysisError
from ..rng import repetition_seeds
from ..theory.boundary import BoundaryPoint, boundary_point
from ..theory.bounds import upper_bound
from ..theory.fitting import ETComparison, average_points, fit_boundary_scale
from ..units import PAPER_RHO_SWEEP
from ..workloads.concentration import ConcentrationSchedule
from .common import ExperimentGeometry, droplets_for, geometry_for, simulation_config_for


@dataclass(frozen=True)
class RepetitionOutcome:
    """One repetition of a boundary experiment, keyed by its schedule seed.

    ``point`` is None when the repetition's spread never diverged.  The seed
    alone reproduces the run: it is the :class:`ConcentrationSchedule` seed,
    and every other input is determined by the (m, P, density) geometry.
    """

    seed: int
    point: BoundaryPoint | None

    @property
    def diverged(self) -> bool:
        """Whether this repetition produced a boundary point."""
        return self.point is not None


@dataclass(frozen=True)
class BoundaryExperiment:
    """All repetitions of one (m, P, density) experiment point.

    Attributes
    ----------
    geometry:
        Derived problem geometry.
    points:
        Boundary points of the individual repetitions (diverged runs only).
    mean_point:
        The averaged point the paper plots, or None if no run diverged.
    n_failed:
        Repetitions whose spread never diverged within the sweep.
    repetitions:
        Per-repetition outcomes (seed + optional point), in run order --
        includes the non-diverged repetitions that ``points`` omits.
    """

    geometry: ExperimentGeometry
    points: list[BoundaryPoint]
    mean_point: BoundaryPoint | None
    n_failed: int
    repetitions: tuple[RepetitionOutcome, ...] = ()

    def error_range(self) -> tuple[float, float]:
        """Std of (n, C0/C) across repetitions -- Figure 10's error bars."""
        from ..theory.fitting import point_error_ranges

        if not self.points:
            return (0.0, 0.0)
        return point_error_ranges([self.points])[0]


def auto_rounds(geometry: ExperimentGeometry) -> int:
    """Balancer rounds per configuration, scaled with the domain size.

    The protocol moves one cell per PE per round; for the quasi-static sweep
    to stay quasi-static across problem sizes, the number of rounds between
    configurations must grow with the cells each PE may need to shift (the
    paper's MD runs give DLB thousands of steps for the same reason).
    """
    cells_per_pe = geometry.cells_per_side**3 // geometry.n_pes
    return max(2, round(cells_per_pe / 20))


def run_boundary_repetition(
    m: int,
    n_pes: int,
    density: float,
    schedule_seed: int,
    n_steps: int = 130,
    rounds_per_config: int | None = None,
    detector_kwargs: dict | None = None,
) -> RepetitionOutcome:
    """One concentration sweep: the unit of work a campaign schedules.

    ``schedule_seed`` fully determines the run (geometry is derived from the
    arguments); the same seed always reproduces the same outcome.
    """
    geometry = geometry_for(m, n_pes, density)
    config = simulation_config_for(geometry, dlb_enabled=True)
    # A conservative detector (sustained exceedance well above baseline)
    # avoids flagging the first noise bump as the boundary; the paper's own
    # criterion ("begins to increase") is equally about a sustained rise.
    detector_kwargs = {"factor": 2.5, "sustain": 15, **(detector_kwargs or {})}
    if rounds_per_config is None:
        rounds_per_config = auto_rounds(geometry)
    schedule = ConcentrationSchedule(
        n_particles=geometry.n_particles,
        box_length=geometry.box_length,
        n_steps=n_steps,
        n_droplets=droplets_for(geometry),
        seed=int(schedule_seed),
    )
    # Boundary repetitions probe the permanent-cell protocol's DLB limit,
    # so the strategy is part of the experiment's definition.
    result = api.simulate_driven(
        config, schedule, rounds_per_config=rounds_per_config,
        balancer="permanent",
    )
    try:
        point = boundary_point(
            result.spread, result.trajectory, steps=result.steps, **detector_kwargs
        )
    except AnalysisError:
        point = None
    return RepetitionOutcome(seed=int(schedule_seed), point=point)


def experiment_from_outcomes(
    geometry: ExperimentGeometry, outcomes: list[RepetitionOutcome]
) -> BoundaryExperiment:
    """Aggregate per-repetition outcomes into one experiment point."""
    points = [o.point for o in outcomes if o.point is not None]
    return BoundaryExperiment(
        geometry=geometry,
        points=points,
        mean_point=average_points([points])[0] if points else None,
        n_failed=sum(1 for o in outcomes if o.point is None),
        repetitions=tuple(outcomes),
    )


def run_boundary_experiment(
    m: int,
    n_pes: int,
    density: float,
    n_repetitions: int = 10,
    n_steps: int = 130,
    rounds_per_config: int | None = None,
    seed: int = 0,
    detector_kwargs: dict | None = None,
) -> BoundaryExperiment:
    """Repeatedly sweep concentration and detect DLB's breakdown point."""
    geometry = geometry_for(m, n_pes, density)
    # One independent RNG stream per repetition (the paper's five initial
    # configurations, each executed twice, are ten independent runs here).
    outcomes = [
        run_boundary_repetition(
            m,
            n_pes,
            density,
            schedule_seed=schedule_seed,
            n_steps=n_steps,
            rounds_per_config=rounds_per_config,
            detector_kwargs=detector_kwargs,
        )
        for schedule_seed in repetition_seeds(seed, n_repetitions)
    ]
    return experiment_from_outcomes(geometry, outcomes)


@dataclass(frozen=True)
class Fig10Panel:
    """One panel of Figure 10: the four density points for one m."""

    m: int
    n_pes: int
    experiments: list[BoundaryExperiment]
    fit: ETComparison | None

    def theoretical_curve(self, n_values: np.ndarray) -> np.ndarray:
        """Samples of the theoretical bound ``f(m, n)``."""
        return np.asarray(upper_bound(self.m, n_values))


@dataclass(frozen=True)
class Fig10Result:
    """All panels of Figure 10."""

    panels: dict[int, Fig10Panel]

    def et_ratios(self) -> dict[int, float]:
        """Fitted E/T ratio per m (panels without a fit are omitted)."""
        return {
            m: panel.fit.ratio for m, panel in self.panels.items() if panel.fit is not None
        }


def run_fig10(
    m_values: tuple[int, ...] = (2, 3, 4),
    densities: tuple[float, ...] = PAPER_RHO_SWEEP,
    n_pes: int = 36,
    n_repetitions: int = 10,
    n_steps: int = 130,
    seed: int = 0,
) -> Fig10Result:
    """Run every panel of Figure 10.

    Defaults reproduce the paper's setting (36 PEs, densities 0.128-0.512,
    ten repetitions per point); benchmarks pass smaller ``n_pes`` and
    ``n_repetitions`` for speed.
    """
    panels: dict[int, Fig10Panel] = {}
    for m in m_values:
        experiments = [
            run_boundary_experiment(
                m,
                n_pes,
                density,
                n_repetitions=n_repetitions,
                n_steps=n_steps,
                seed=seed + int(1000 * density),
            )
            for density in densities
        ]
        mean_points = [e.mean_point for e in experiments if e.mean_point is not None]
        fit = fit_boundary_scale(mean_points, m) if mean_points else None
        panels[m] = Fig10Panel(m=m, n_pes=n_pes, experiments=experiments, fit=fit)
    return Fig10Result(panels=panels)
