"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each driver returns plain data structures (arrays + dataclasses) that the
benchmarks print and the examples plot as ASCII; nothing here touches the
terminal directly, so the same code backs tests, benchmarks and scripts.
"""

from .common import ExperimentGeometry, geometry_for
from .fig5 import Fig5Result, run_fig5
from .fig6 import Fig6Result, fig6_from_fig5, run_fig6
from .fig9 import Fig9Result, run_fig9
from .fig10 import (
    BoundaryExperiment,
    Fig10Result,
    RepetitionOutcome,
    experiment_from_outcomes,
    run_boundary_experiment,
    run_boundary_repetition,
    run_fig10,
)
from .table1 import Table1Result, run_table1

__all__ = [
    "BoundaryExperiment",
    "ExperimentGeometry",
    "Fig5Result",
    "Fig6Result",
    "Fig9Result",
    "Fig10Result",
    "RepetitionOutcome",
    "Table1Result",
    "experiment_from_outcomes",
    "fig6_from_fig5",
    "geometry_for",
    "run_boundary_experiment",
    "run_boundary_repetition",
    "run_fig5",
    "run_fig6",
    "run_fig9",
    "run_fig10",
    "run_table1",
]
