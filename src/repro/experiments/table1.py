"""Table 1: E/T ratios across machine sizes.

The ratio of the experimental boundary (E) to the theoretical upper bound (T)
for m = 2, 3, 4 on 16, 36 and 64 PEs. The paper's findings: E/T barely
depends on the PE count, grows with m, and exceeds 1/2 for most cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..theory.fitting import fit_boundary_scale
from ..units import PAPER_RHO_SWEEP
from .fig10 import run_boundary_experiment


@dataclass(frozen=True)
class Table1Result:
    """The E/T grid: ``ratios[(m, n_pes)]`` (missing = no divergence found)."""

    ratios: dict[tuple[int, int], float]
    m_values: tuple[int, ...]
    pe_counts: tuple[int, ...]

    def row(self, m: int) -> list[float | None]:
        """One table row: E/T of ``m`` across the PE counts."""
        return [self.ratios.get((m, p)) for p in self.pe_counts]

    def spread_across_pes(self, m: int) -> float:
        """Max - min of a row (the paper: rows are nearly constant)."""
        values = [v for v in self.row(m) if v is not None]
        return max(values) - min(values) if len(values) > 1 else 0.0


def run_table1(
    m_values: tuple[int, ...] = (2, 3, 4),
    pe_counts: tuple[int, ...] = (16, 36, 64),
    densities: tuple[float, ...] = PAPER_RHO_SWEEP,
    n_repetitions: int = 10,
    n_steps: int = 130,
    seed: int = 0,
) -> Table1Result:
    """Compute the full E/T grid (paper defaults; trim for benchmarks)."""
    ratios: dict[tuple[int, int], float] = {}
    for m in m_values:
        for n_pes in pe_counts:
            points = []
            for density in densities:
                experiment = run_boundary_experiment(
                    m,
                    n_pes,
                    density,
                    n_repetitions=n_repetitions,
                    n_steps=n_steps,
                    seed=seed + int(1000 * density) + n_pes,
                )
                if experiment.mean_point is not None:
                    points.append(experiment.mean_point)
            if points:
                ratios[(m, n_pes)] = fit_boundary_scale(points, m).ratio
    return Table1Result(ratios=ratios, m_values=tuple(m_values), pe_counts=tuple(pe_counts))
