"""Figure 5: execution time per step, DDM vs DLB-DDM.

The paper runs the supercooled gas for thousands of steps on 36 T3E PEs and
plots the per-step execution time of plain DDM against DLB-DDM: DDM's time
grows as particles concentrate, DLB-DDM's stays nearly flat (much more so for
m = 4 than m = 2, whose movable fraction is only 1/4).

The scaled reproduction keeps m, the density, and the cells-per-PE ratio
while shrinking N and P, and accelerates the gas's clustering with seeded
nucleation sites (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import api
from ..config import RunConfig
from ..core.results import RunResult
from ..workloads.presets import Preset, get_preset


@dataclass(frozen=True)
class Fig5Result:
    """Both curves of one Figure 5 panel."""

    preset: Preset
    ddm: RunResult
    dlb: RunResult

    @property
    def steps(self) -> np.ndarray:
        """Recorded step indices (identical for both runs)."""
        return self.ddm.steps

    def growth(self) -> tuple[float, float]:
        """Per-curve growth factor ``tt_last / tt_first`` (DDM, DLB-DDM).

        The paper's qualitative claim is ``growth(DDM) >> growth(DLB-DDM)``.
        Both series are smoothed over their first/last deciles to keep one
        noisy step from dominating.
        """

        def factor(result: RunResult) -> float:
            tt = result.tt
            k = max(1, len(tt) // 10)
            return float(tt[-k:].mean() / tt[:k].mean())

        return factor(self.ddm), factor(self.dlb)


def run_fig5(
    preset: str | Preset = "fig5b-scaled",
    steps: int | None = None,
    seed: int = 7,
    record_interval: int = 20,
    n_attractors: int | None = None,
    engine: str | None = None,
    engine_workers: int | None = None,
) -> Fig5Result:
    """Run one Figure 5 panel (both curves) and return the series.

    ``preset`` names a workload (e.g. ``"fig5a-scaled"`` for the m=4 panel,
    ``"fig5b-scaled"`` for m=2); ``steps`` overrides its recommended length.
    ``engine`` selects an execution engine for the force path (see
    :func:`repro.api.simulate`); results are engine-independent by design.
    """
    preset = get_preset(preset) if isinstance(preset, str) else preset
    run_config = RunConfig(
        steps=steps if steps is not None else preset.steps,
        seed=seed,
        record_interval=record_interval,
    )
    results = {}
    for dlb_enabled in (False, True):
        config = preset.simulation_config(dlb_enabled=dlb_enabled)
        if n_attractors is not None:
            from dataclasses import replace

            config = replace(config, md=replace(config.md, n_attractors=n_attractors))
        results[dlb_enabled] = api.simulate(
            config,
            run=run_config,
            engine=engine,
            engine_workers=engine_workers,
        )
    return Fig5Result(preset=preset, ddm=results[False], dlb=results[True])
