"""Figure 9: the trajectory of a run through (n, C0/C) space.

A concentrating run starts near the origin (no empty cells, no excess
concentration in any maximum domain) and climbs as cells empty out; the
experimental boundary point sits where the force-time spread starts rising.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runner import DrivenLoadRunner
from ..errors import AnalysisError
from ..theory.boundary import BoundaryPoint, boundary_point
from ..theory.trajectory import Trajectory
from ..workloads.concentration import ConcentrationSchedule
from .common import ExperimentGeometry, droplets_for, geometry_for, simulation_config_for


@dataclass(frozen=True)
class Fig9Result:
    """One trajectory plus (when detected) its boundary point."""

    geometry: ExperimentGeometry
    trajectory: Trajectory
    boundary: BoundaryPoint | None


def run_fig9(
    m: int = 3,
    n_pes: int = 9,
    density: float = 0.256,
    n_steps: int = 150,
    seed: int = 1,
    rounds_per_config: int = 3,
) -> Fig9Result:
    """Drive one concentration sweep and record its (n, C0/C) trajectory."""
    geometry = geometry_for(m, n_pes, density)
    config = simulation_config_for(geometry, dlb_enabled=True)
    schedule = ConcentrationSchedule(
        n_particles=geometry.n_particles,
        box_length=geometry.box_length,
        n_steps=n_steps,
        n_droplets=droplets_for(geometry),
        seed=seed,
    )
    # The trajectory/boundary analysis is defined on the paper's balancer:
    # the C' limit being probed is the permanent-cell protocol's.
    result = DrivenLoadRunner(
        config, rounds_per_config=rounds_per_config, balancer="permanent"
    ).run(schedule)
    trajectory = result.trajectory
    try:
        boundary = boundary_point(result.spread, trajectory, steps=result.steps)
    except AnalysisError:
        boundary = None
    return Fig9Result(geometry=geometry, trajectory=trajectory, boundary=boundary)
