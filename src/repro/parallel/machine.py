"""The virtual multicomputer: PEs + network + traffic accounting."""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import ConfigurationError
from .clock import PEClocks
from .message import TrafficLog
from .network import NetworkModel, preset


class VirtualMachine:
    """``P`` virtual PEs with clocks, a postal-model network and traffic log.

    The machine does not execute code; the simulation core charges it with
    per-PE compute and communication durations and reads back barrier times.
    """

    def __init__(
        self, n_pes: int, machine: MachineConfig | str = "t3e", faults=None
    ) -> None:
        if n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {n_pes}")
        if isinstance(machine, str):
            machine = preset(machine)
        self.n_pes = int(n_pes)
        self.config = machine
        self.network = NetworkModel(machine)
        self.clocks = PEClocks(n_pes)
        self.traffic = TrafficLog(n_pes)
        #: Nullable :class:`~repro.faults.injector.FaultInjector`; consulted
        #: at the charge hooks so any client of the virtual machine observes
        #: the same perturbations the step accountant does.
        self.faults = faults
        #: Simulation step the charge hooks attribute faults to (advance
        #: with :meth:`start_step` or set directly).
        self.step = 0

    def charge_compute(self, per_pe_times) -> None:
        """Charge per-PE compute durations for the current step."""
        if self.faults is not None:
            (per_pe_times,) = self.faults.perturb_compute(self.step, per_pe_times)
        self.clocks.advance_all(per_pe_times)

    def charge_exchange(
        self, pe: int, peer: int, n_messages: int, n_bytes: int, tag: str = ""
    ) -> float:
        """Charge ``pe`` for receiving ``n_messages`` totalling ``n_bytes``.

        Returns the charged duration. Traffic is logged from ``peer`` to
        ``pe``. With a fault injector the exchange may be delayed,
        lost-and-retransmitted or duplicated (reliable delivery; only time
        and wire traffic change).
        """
        duration = self.network.exchange_time(n_messages, n_bytes)
        wire = 1
        if self.faults is not None:
            pert = self.faults.perturb_message(self.step, peer, pe, tag or "*")
            duration = pert.perturbed_time(duration)
            wire = pert.attempts
        self.clocks.advance(pe, duration)
        self.traffic.record_bulk(
            peer, pe, n_bytes * wire, count=n_messages * wire, tag=tag
        )
        return duration

    def barrier(self) -> float:
        """Synchronise all PEs; returns the barrier time."""
        return self.clocks.barrier()

    def start_step(self) -> None:
        """Reset per-step clocks (the core keeps cumulative time itself)."""
        self.clocks.reset()
        self.step += 1
