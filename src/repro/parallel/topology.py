"""Virtual interconnect topologies.

The three domain shapes of Figure 2 map onto a ring (plane domains), a 2-D
torus (square pillars -- the DLB case) and a 3-D torus (cubes). Topologies
answer two questions: who are a PE's neighbours, and what is the relative
offset between two PEs (the DLB protocol classifies its cases by that
offset).
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


class Ring:
    """1-D ring of ``n_pes`` PEs (plane decomposition)."""

    def __init__(self, n_pes: int) -> None:
        if n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {n_pes}")
        self.n_pes = int(n_pes)

    def neighbors(self, pe: int) -> list[int]:
        """The (at most two) distinct ring neighbours of ``pe``."""
        self._check(pe)
        out = {(pe - 1) % self.n_pes, (pe + 1) % self.n_pes}
        out.discard(pe)
        return sorted(out)

    def _check(self, pe: int) -> None:
        if not 0 <= pe < self.n_pes:
            raise ConfigurationError(f"PE {pe} out of range [0, {self.n_pes})")


class Torus2D:
    """2-D torus of ``side x side`` PEs with 8-neighbour connectivity.

    PE(i, j) has flat id ``i * side + j``. This is the virtual interconnect of
    the square-pillar decomposition (Figure 3).
    """

    #: Relative offsets of the 8 neighbours, row-major.
    OFFSETS: tuple[tuple[int, int], ...] = (
        (-1, -1),
        (-1, 0),
        (-1, 1),
        (0, -1),
        (0, 1),
        (1, -1),
        (1, 0),
        (1, 1),
    )

    def __init__(self, side: int) -> None:
        if side <= 0:
            raise ConfigurationError(f"torus side must be positive, got {side}")
        self.side = int(side)
        self.n_pes = self.side * self.side

    def coords(self, pe: int) -> tuple[int, int]:
        """Torus coordinates ``(i, j)`` of a flat PE id."""
        self._check(pe)
        return pe // self.side, pe % self.side

    def flat(self, i: int, j: int) -> int:
        """Flat PE id of (wrapped) torus coordinates."""
        return (i % self.side) * self.side + (j % self.side)

    def neighbors(self, pe: int) -> list[int]:
        """Distinct 8-neighbourhood of ``pe`` (fewer on tiny tori)."""
        i, j = self.coords(pe)
        out = {self.flat(i + di, j + dj) for di, dj in self.OFFSETS}
        out.discard(pe)
        return sorted(out)

    def neighborhood(self, pe: int) -> list[int]:
        """``pe`` followed by its 8 neighbours in OFFSETS order (may repeat on
        tiny tori); the DLB protocol iterates this fixed order so ties are
        broken deterministically."""
        i, j = self.coords(pe)
        return [pe] + [self.flat(i + di, j + dj) for di, dj in self.OFFSETS]

    def offset(self, src: int, dst: int) -> tuple[int, int]:
        """Minimal signed offset ``(di, dj)`` from ``src`` to ``dst``.

        Each component is folded into ``[-side/2, side/2)``; for tori of side
        >= 3 adjacent PEs always yield components in {-1, 0, 1}.
        """
        si, sj = self.coords(src)
        di_raw = (dst // self.side) - si
        dj_raw = (dst % self.side) - sj
        di = int(di_raw - self.side * math.floor(di_raw / self.side + 0.5))
        dj = int(dj_raw - self.side * math.floor(dj_raw / self.side + 0.5))
        return di, dj

    def are_neighbors(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are distinct 8-neighbours."""
        if a == b:
            return False
        di, dj = self.offset(a, b)
        return abs(di) <= 1 and abs(dj) <= 1

    def _check(self, pe: int) -> None:
        if not 0 <= pe < self.n_pes:
            raise ConfigurationError(f"PE {pe} out of range [0, {self.n_pes})")


class Torus3D:
    """3-D torus with 26-neighbour connectivity (cube decomposition)."""

    def __init__(self, side: int) -> None:
        if side <= 0:
            raise ConfigurationError(f"torus side must be positive, got {side}")
        self.side = int(side)
        self.n_pes = self.side**3

    def coords(self, pe: int) -> tuple[int, int, int]:
        """Torus coordinates ``(i, j, k)`` of a flat PE id."""
        if not 0 <= pe < self.n_pes:
            raise ConfigurationError(f"PE {pe} out of range [0, {self.n_pes})")
        s = self.side
        return pe // (s * s), (pe // s) % s, pe % s

    def flat(self, i: int, j: int, k: int) -> int:
        """Flat PE id of (wrapped) torus coordinates."""
        s = self.side
        return ((i % s) * s + (j % s)) * s + (k % s)

    def neighbors(self, pe: int) -> list[int]:
        """Distinct 26-neighbourhood of ``pe``."""
        i, j, k = self.coords(pe)
        out = {
            self.flat(i + di, j + dj, k + dk)
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
            for dk in (-1, 0, 1)
            if (di, dj, dk) != (0, 0, 0)
        }
        out.discard(pe)
        return sorted(out)


def torus_for_pes(n_pes: int) -> Torus2D:
    """The 2-D torus for a square PE count (convenience for pillar runs)."""
    side = math.isqrt(n_pes)
    if side * side != n_pes:
        raise ConfigurationError(f"n_pes={n_pes} is not a perfect square")
    return Torus2D(side)
