"""Per-PE virtual clocks with barrier semantics.

The paper's per-step execution time ``Tt`` is governed by the *slowest* PE
because of the synchronisation between steps (Section 3.3, discussion of
Figure 6). :class:`PEClocks` models exactly that: each PE accumulates its own
work and communication time within a step; a barrier advances everyone to the
maximum.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class PEClocks:
    """Virtual clocks of ``P`` PEs."""

    def __init__(self, n_pes: int) -> None:
        if n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {n_pes}")
        self.n_pes = int(n_pes)
        self.times = np.zeros(self.n_pes, dtype=np.float64)

    def advance(self, pe: int, dt: float) -> None:
        """Charge ``dt`` of work to one PE."""
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        self.times[pe] += dt

    def advance_all(self, dts: np.ndarray) -> None:
        """Charge per-PE durations in one vectorised call."""
        dts = np.asarray(dts, dtype=np.float64)
        if dts.shape != (self.n_pes,):
            raise ConfigurationError(f"dts shape {dts.shape} != ({self.n_pes},)")
        if np.any(dts < 0):
            raise ConfigurationError("durations must be non-negative")
        self.times += dts

    def barrier(self) -> float:
        """Synchronise: set all clocks to the maximum; returns that time."""
        t = float(self.times.max())
        self.times[...] = t
        return t

    def reset(self) -> None:
        """Zero all clocks (start of a new step)."""
        self.times[...] = 0.0

    def spread(self) -> float:
        """Max - min clock value (the step's imbalance)."""
        return float(self.times.max() - self.times.min())
