"""Message records and traffic accounting for the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Message:
    """One point-to-point message in the simulated machine."""

    src: int
    dst: int
    n_bytes: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ConfigurationError("PE ids must be non-negative")
        if self.n_bytes < 0:
            raise ConfigurationError("n_bytes must be non-negative")


@dataclass
class TrafficLog:
    """Aggregate traffic counters, per PE and per tag.

    Records are cheap scalars, not message objects, so logging every step of
    a long run stays O(P) in memory.
    """

    n_pes: int
    bytes_sent: np.ndarray = field(init=False)
    bytes_received: np.ndarray = field(init=False)
    messages_sent: np.ndarray = field(init=False)
    by_tag: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {self.n_pes}")
        self.bytes_sent = np.zeros(self.n_pes, dtype=np.int64)
        self.bytes_received = np.zeros(self.n_pes, dtype=np.int64)
        self.messages_sent = np.zeros(self.n_pes, dtype=np.int64)

    def record(self, message: Message) -> None:
        """Account one message."""
        if message.src >= self.n_pes or message.dst >= self.n_pes:
            raise ConfigurationError(
                f"message endpoints ({message.src}, {message.dst}) outside machine of "
                f"{self.n_pes} PEs"
            )
        self.bytes_sent[message.src] += message.n_bytes
        self.bytes_received[message.dst] += message.n_bytes
        self.messages_sent[message.src] += 1
        if message.tag:
            self.by_tag[message.tag] = self.by_tag.get(message.tag, 0) + message.n_bytes

    def record_bulk(self, src: int, dst: int, n_bytes: int, count: int = 1, tag: str = "") -> None:
        """Account ``count`` messages totalling ``n_bytes`` without objects."""
        if n_bytes < 0 or count < 0:
            raise ConfigurationError("bytes and count must be non-negative")
        self.bytes_sent[src] += n_bytes
        self.bytes_received[dst] += n_bytes
        self.messages_sent[src] += count
        if tag:
            self.by_tag[tag] = self.by_tag.get(tag, 0) + n_bytes

    @property
    def total_bytes(self) -> int:
        """Total bytes sent machine-wide."""
        return int(self.bytes_sent.sum())
