"""Message records and traffic accounting for the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Message:
    """One point-to-point message in the simulated machine."""

    src: int
    dst: int
    n_bytes: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ConfigurationError("PE ids must be non-negative")
        if self.n_bytes < 0:
            raise ConfigurationError("n_bytes must be non-negative")


@dataclass
class TagTraffic:
    """Per-tag aggregate: bytes carried and messages sent.

    The seed only tracked bytes per tag, which made a tag's *message count*
    unrecoverable (latency-dominated phases like the DLB bookkeeping
    broadcasts are invisible in byte counts). Both now accumulate together.
    """

    bytes: int = 0
    messages: int = 0

    def add(self, n_bytes: int, count: int) -> None:
        """Fold ``count`` messages totalling ``n_bytes`` in."""
        self.bytes += int(n_bytes)
        self.messages += int(count)


@dataclass
class TrafficLog:
    """Aggregate traffic counters, per PE and per tag.

    Records are cheap scalars, not message objects, so logging every step of
    a long run stays O(P) in memory. ``by_tag`` maps each tag to a
    :class:`TagTraffic` (bytes *and* message counts).
    """

    n_pes: int
    bytes_sent: np.ndarray = field(init=False)
    bytes_received: np.ndarray = field(init=False)
    messages_sent: np.ndarray = field(init=False)
    by_tag: dict[str, TagTraffic] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {self.n_pes}")
        self.bytes_sent = np.zeros(self.n_pes, dtype=np.int64)
        self.bytes_received = np.zeros(self.n_pes, dtype=np.int64)
        self.messages_sent = np.zeros(self.n_pes, dtype=np.int64)

    def _tag(self, tag: str) -> TagTraffic:
        stats = self.by_tag.get(tag)
        if stats is None:
            stats = self.by_tag[tag] = TagTraffic()
        return stats

    def record(self, message: Message) -> None:
        """Account one message."""
        if message.src >= self.n_pes or message.dst >= self.n_pes:
            raise ConfigurationError(
                f"message endpoints ({message.src}, {message.dst}) outside machine of "
                f"{self.n_pes} PEs"
            )
        self.bytes_sent[message.src] += message.n_bytes
        self.bytes_received[message.dst] += message.n_bytes
        self.messages_sent[message.src] += 1
        if message.tag:
            self._tag(message.tag).add(message.n_bytes, 1)

    def record_bulk(self, src: int, dst: int, n_bytes: int, count: int = 1, tag: str = "") -> None:
        """Account ``count`` messages totalling ``n_bytes`` without objects."""
        if n_bytes < 0 or count < 0:
            raise ConfigurationError("bytes and count must be non-negative")
        self.bytes_sent[src] += n_bytes
        self.bytes_received[dst] += n_bytes
        self.messages_sent[src] += count
        if tag:
            self._tag(tag).add(n_bytes, count)

    @property
    def total_bytes(self) -> int:
        """Total bytes sent machine-wide."""
        return int(self.bytes_sent.sum())

    @property
    def total_messages(self) -> int:
        """Total messages sent machine-wide."""
        return int(self.messages_sent.sum())

    def summary(self) -> dict:
        """Flat summary for the metrics exporter and reports."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "max_pe_bytes_sent": int(self.bytes_sent.max()),
            "by_tag": {
                tag: {"bytes": stats.bytes, "messages": stats.messages}
                for tag, stats in sorted(self.by_tag.items())
            },
        }
