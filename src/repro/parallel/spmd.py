"""Deterministic SPMD-style execution over virtual ranks.

The paper implements DDM as an SPMD program (Section 3.1). With no real MPI
available offline, :class:`SPMDExecutor` provides the same programming shape
-- a per-rank function plus neighbour message exchange -- executed
sequentially and deterministically: rank functions run in rank order within
each superstep, and messages posted in superstep ``k`` are delivered at the
start of superstep ``k+1`` (BSP semantics, which is how the DLB protocol's
"send execution time, then decide" rounds behave).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..engine.router import DeterministicRouter
from ..errors import ConfigurationError, ProtocolError
from ..obs.profiler import scope

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..obs.trace import TraceRecorder


class SPMDExecutor:
    """Bulk-synchronous executor over ``n_ranks`` virtual ranks.

    ``trace`` (nullable) records every superstep as a wall-clock span on the
    host track, with the superstep index and the number of messages posted;
    the default ``None`` path records nothing and allocates nothing.

    All traffic flows through a :class:`~repro.engine.router.DeterministicRouter`
    (pass ``router`` to share one with an execution engine): messages are
    delivered at the superstep barrier in ``(step, tag, src, dst, seq)``
    order, which makes inbox order — and therefore every reduction a rank
    computes over its inbox — independent of the posting backend.
    """

    def __init__(
        self,
        n_ranks: int,
        trace: "TraceRecorder | None" = None,
        fault_hook: Callable[[int, int, int], int] | None = None,
        router: DeterministicRouter | None = None,
    ) -> None:
        if n_ranks <= 0:
            raise ConfigurationError(f"n_ranks must be positive, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.trace = trace
        #: Nullable fault-injection hook ``(superstep, src, dst) -> copies``:
        #: 0 drops the message, 1 delivers normally, >1 duplicates. The
        #: default ``None`` path delivers everything and costs nothing.
        self.fault_hook = fault_hook
        self.router = router if router is not None else DeterministicRouter()
        self.superstep_count = 0
        self._epoch = time.perf_counter()
        self._inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(self.n_ranks)]

    def send(self, src: int, dst: int, payload: Any, tag: str = "msg") -> None:
        """Post a message for delivery at the next superstep.

        With a ``fault_hook`` attached the message may be dropped (0 copies)
        or duplicated (>1); BSP delivery order is unaffected either way.
        """
        self._check(src)
        self._check(dst)
        copies = 1
        if self.fault_hook is not None:
            copies = self.fault_hook(self.superstep_count, src, dst)
            if copies < 0:
                raise ProtocolError(
                    f"fault hook returned negative copy count {copies}"
                )
        for _ in range(copies):
            self.router.post(self.superstep_count, tag, src, dst, payload)

    def inbox(self, rank: int) -> list[tuple[int, Any]]:
        """Messages delivered to ``rank`` this superstep, as (src, payload)."""
        self._check(rank)
        return list(self._inboxes[rank])

    def superstep(self, body: Callable[[int, "SPMDExecutor"], Any]) -> list[Any]:
        """Run ``body(rank, executor)`` for every rank, then exchange messages.

        Returns the per-rank results in rank order. Messages posted by the
        bodies become visible in the *next* superstep's inboxes (BSP).
        """
        with scope("spmd.superstep"):
            start = time.perf_counter()
            results = [body(rank, self) for rank in range(self.n_ranks)]
            delivered = self.router.drain()
            posted = len(delivered)
            self._inboxes = [[] for _ in range(self.n_ranks)]
            for message in delivered:
                self._inboxes[message.dst].append((message.src, message.payload))
            if self.trace is not None:
                now = time.perf_counter()
                self.trace.host_span(
                    "spmd.superstep",
                    start - self._epoch,
                    now - start,
                    args={"superstep": self.superstep_count, "messages": posted},
                )
            self.superstep_count += 1
            return results

    def allgather(self, values: list[Any]) -> list[list[Any]]:
        """Simulated allgather: every rank sees every value (convenience)."""
        if len(values) != self.n_ranks:
            raise ProtocolError(
                f"allgather needs one value per rank, got {len(values)} for {self.n_ranks}"
            )
        return [list(values) for _ in range(self.n_ranks)]

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} out of range [0, {self.n_ranks})")
