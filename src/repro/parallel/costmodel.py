"""Compute cost model: from cell occupancy to per-PE work time.

The paper's force loop computes "distances between two molecules with every
combination of molecules within each cell and its neighbouring 26 cells"
(Section 3.2), so the work of cell ``c`` is proportional to
``count(c) * sum_{c' in stencil(c)} count(c')`` candidate evaluations. The
cost model turns those counts into per-PE times using the calibratable
constants of :class:`repro.config.MachineConfig`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import MachineConfig
from ..errors import ConfigurationError
from ..md.celllist import CellList
from ..md.forces import forces_from_pairs
from ..md.neighbors import pairs_kdtree
from ..md.potential import LennardJones


@dataclass(frozen=True)
class PEWork:
    """Per-PE work decomposition for one step (arrays of shape ``(P,)``)."""

    force_times: np.ndarray
    integrate_times: np.ndarray
    cell_times: np.ndarray

    @property
    def compute_times(self) -> np.ndarray:
        """Total compute (non-communication) time per PE."""
        return self.force_times + self.integrate_times + self.cell_times


class ComputeCostModel:
    """Maps per-cell particle counts + an owner map to per-PE compute times."""

    def __init__(self, machine: MachineConfig, cell_list: CellList) -> None:
        self.machine = machine
        self.cell_list = cell_list

    def cell_work(self, counts_grid: np.ndarray) -> np.ndarray:
        """Candidate pair evaluations charged to each cell (flat ``(C,)``).

        ``count(c) * sum over the 27-stencil of counts``: the cell's particles
        against everything in reach, exactly what the paper's kernel checks.
        """
        neighbor_sum = self.cell_list.neighbor_count_sum(counts_grid)
        return (counts_grid * neighbor_sum).reshape(-1).astype(np.float64)

    def per_pe_work(
        self, counts_grid: np.ndarray, cell_owner: np.ndarray, n_pes: int
    ) -> PEWork:
        """Per-PE compute times for one step.

        ``cell_owner`` is the flat ``(C,)`` owner map. Force time aggregates
        :meth:`cell_work` per owner; integration time is per owned particle;
        cell time is per owned cell (rebuild of the cell-molecule relation,
        which the paper's programs redo every step).
        """
        n_cells = self.cell_list.n_cells
        if cell_owner.shape != (n_cells,):
            raise ConfigurationError(f"owner map shape {cell_owner.shape} != ({n_cells},)")
        work = self.cell_work(counts_grid)
        counts_flat = counts_grid.reshape(-1).astype(np.float64)
        force = self.machine.tau_pair * np.bincount(cell_owner, weights=work, minlength=n_pes)
        particles = np.bincount(cell_owner, weights=counts_flat, minlength=n_pes)
        integrate = self.machine.tau_particle * particles
        cells = np.bincount(cell_owner, minlength=n_pes).astype(np.float64)
        cell_time = self.machine.tau_cell * cells
        return PEWork(force, integrate, cell_time)


def calibrate_tau_pair(
    n_particles: int = 4096,
    density: float = 0.256,
    cutoff: float = 2.5,
    seed: int = 0,
    repeats: int = 3,
) -> float:
    """Measure the real per-candidate-pair cost of this host's force kernel.

    Runs the actual NumPy force kernel on a random gas and divides wall time
    by the number of candidate evaluations a cell-based loop would make. Use
    the result as ``MachineConfig.tau_pair`` to express simulated times in
    this host's seconds instead of T3E seconds.
    """
    if n_particles <= 0 or repeats <= 0:
        raise ConfigurationError("n_particles and repeats must be positive")
    rng = np.random.default_rng(seed)
    box = (n_particles / density) ** (1.0 / 3.0)
    positions = rng.uniform(0.0, box, size=(n_particles, 3))
    potential = LennardJones(cutoff=cutoff)
    nc = max(3, int(box // cutoff))
    cell_list = CellList(box, nc)
    counts = cell_list.counts(positions)
    candidates = float((counts * cell_list.neighbor_count_sum(counts)).sum())

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        pairs = pairs_kdtree(positions, box, cutoff)
        forces_from_pairs(positions, pairs, box, potential)
        best = min(best, time.perf_counter() - start)
    return best / max(candidates, 1.0)
