"""Simulated multicomputer: virtual PEs, topologies and cost models.

The paper runs on a Cray T3E; this subpackage replaces the hardware with a
deterministic model -- per-PE clocks, torus topologies and a latency/bandwidth
network -- that reproduces the quantities the paper measures (per-step
execution time ``Tt`` and the per-PE force-time spread ``Fmax/Fave/Fmin``).
See DESIGN.md, "Substitutions".
"""

from .clock import PEClocks
from .costmodel import ComputeCostModel, calibrate_tau_pair
from .instrumentation import NeighborStats, StepTiming, TimingLog
from .machine import VirtualMachine
from .message import Message, TrafficLog
from .network import NetworkModel, preset
from .spmd import SPMDExecutor
from .topology import Ring, Torus2D, Torus3D

__all__ = [
    "ComputeCostModel",
    "Message",
    "NeighborStats",
    "NetworkModel",
    "PEClocks",
    "Ring",
    "SPMDExecutor",
    "StepTiming",
    "TimingLog",
    "Torus2D",
    "Torus3D",
    "TrafficLog",
    "VirtualMachine",
    "calibrate_tau_pair",
    "preset",
]
