"""Latency/bandwidth communication cost model with machine presets.

Message time follows the classic postal model ``t = alpha + beta * bytes``
with ``alpha`` the startup latency and ``beta`` the inverse bandwidth. The
presets carry published figures for the machines the paper and its
predecessors used (T3E: 2.8 GB/s links; CM-5: ~10 MB/s per node through the
fat tree), so relative communication overheads are realistic even though the
absolute scale is arbitrary for shape purposes.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import ConfigurationError

#: Built-in machine presets.
PRESETS: dict[str, MachineConfig] = {
    # Cray T3E (Section 3.1): DECchip 21164 @ 300 MHz, 600 MFLOPS,
    # 3-D torus, 2.8 GB/s per PE, low-latency remote memory access.
    "t3e": MachineConfig(
        name="t3e",
        latency=10e-6,
        inv_bandwidth=1.0 / 2.8e9,
        tau_pair=60e-9,
        tau_particle=150e-9,
        tau_cell=40e-9,
        dlb_overhead=30e-6,
    ),
    # Thinking Machines CM-5 (the platform of the authors' earlier DLB
    # papers [6][7]): slower nodes, much slower network.
    "cm5": MachineConfig(
        name="cm5",
        latency=80e-6,
        inv_bandwidth=1.0 / 1.0e7,
        tau_pair=300e-9,
        tau_particle=700e-9,
        tau_cell=200e-9,
        dlb_overhead=150e-6,
    ),
    # An idealised machine with free communication; isolates pure
    # load-balance effects in ablations.
    "ideal": MachineConfig(
        name="ideal",
        latency=0.0,
        inv_bandwidth=0.0,
        tau_pair=60e-9,
        tau_particle=150e-9,
        tau_cell=40e-9,
        dlb_overhead=0.0,
    ),
}


def preset(name: str) -> MachineConfig:
    """Look up a built-in machine preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine preset {name!r}; available: {sorted(PRESETS)}"
        ) from None


class NetworkModel:
    """Message timing under the postal model of a :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    def transfer_time(self, n_bytes: int | float) -> float:
        """Time for one message of ``n_bytes``."""
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be non-negative, got {n_bytes}")
        return self.config.latency + float(n_bytes) * self.config.inv_bandwidth

    def exchange_time(self, n_messages: int | float, total_bytes: int | float) -> float:
        """Time of a phase of ``n_messages`` carrying ``total_bytes`` in total.

        Messages are assumed serialised at the PE's network interface (the
        conservative model for a single-port node).
        """
        if n_messages < 0 or total_bytes < 0:
            raise ConfigurationError("message counts and bytes must be non-negative")
        return float(n_messages) * self.config.latency + float(total_bytes) * self.config.inv_bandwidth

    def particles_time(self, n_messages: int | float, n_particles: int | float) -> float:
        """Exchange time for messages carrying ``n_particles`` particle payloads."""
        return self.exchange_time(
            n_messages, float(n_particles) * self.config.bytes_per_particle
        )
