"""Per-step timing records: the quantities Figures 5 and 6 plot.

``Tt``  -- execution time of the step (max over PEs: barrier semantics).
``Fmax/Fave/Fmin`` -- maximum / average / minimum force-calculation time
across PEs (Figure 6's four curves).

This module also surfaces :class:`NeighborStats` -- the pair-search layer's
counters (Verlet-list rebuilds vs reuses, candidate vs accepted pairs) --
so runners can report the neighbour-caching win alongside the timing series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..md.neighbors import NeighborStats

__all__ = ["NeighborStats", "StepComponents", "StepTiming", "TimingLog"]


@dataclass(frozen=True)
class StepComponents:
    """Per-PE phase breakdown of one accounted step.

    The :class:`~repro.core.accounting.StepAccountant` keeps its latest
    breakdown so observers (the trace recorder's per-PE phase spans, the
    per-phase report) can see *where* each PE's time went, not just the
    aggregates of :class:`StepTiming`.
    """

    force_times: np.ndarray
    comm_times: np.ndarray
    other_times: np.ndarray
    dlb_time: float = 0.0

    @property
    def n_pes(self) -> int:
        """Number of PEs in the breakdown."""
        return len(self.force_times)


@dataclass(frozen=True)
class StepTiming:
    """Timing of one simulated step."""

    step: int
    tt: float
    fmax: float
    fave: float
    fmin: float
    comm_max: float = 0.0
    dlb_time: float = 0.0

    @property
    def spread(self) -> float:
        """Force-time imbalance ``Fmax - Fmin`` (the boundary detector's input)."""
        return self.fmax - self.fmin

    @staticmethod
    def from_components(
        step: int,
        force_times: np.ndarray,
        comm_times: np.ndarray,
        other_times: np.ndarray,
        dlb_time: float = 0.0,
    ) -> "StepTiming":
        """Build a record from per-PE component arrays.

        ``Tt`` is the barrier time: max over PEs of (force + comm + other)
        plus the DLB overhead charged to every PE.
        """
        totals = force_times + comm_times + other_times + dlb_time
        return StepTiming(
            step=step,
            tt=float(totals.max()),
            fmax=float(force_times.max()),
            fave=float(force_times.mean()),
            fmin=float(force_times.min()),
            comm_max=float(comm_times.max()),
            dlb_time=float(dlb_time),
        )


@dataclass
class TimingLog:
    """Append-only log of :class:`StepTiming` with array views for analysis.

    Column arrays are cached and invalidated on append, so repeated property
    access (the boundary detector scans ``spread`` once per sweep candidate)
    costs one build per appended batch instead of one per read. Cached arrays
    are shared: treat them as read-only.
    """

    records: list[StepTiming] = field(default_factory=list)
    _columns: dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def append(self, record: StepTiming) -> None:
        """Add one step record (invalidates the cached column arrays)."""
        self.records.append(record)
        if self._columns:
            self._columns.clear()

    def __len__(self) -> int:
        return len(self.records)

    def _column(self, name: str) -> np.ndarray:
        if not self.records:
            raise AnalysisError("timing log is empty")
        cached = self._columns.get(name)
        if cached is None:
            cached = np.array([getattr(r, name) for r in self.records], dtype=np.float64)
            self._columns[name] = cached
        return cached

    @property
    def steps(self) -> np.ndarray:
        """Step indices of the records."""
        if not self.records:
            raise AnalysisError("timing log is empty")
        cached = self._columns.get("steps")
        if cached is None:
            cached = np.array([r.step for r in self.records], dtype=np.int64)
            self._columns["steps"] = cached
        return cached

    @property
    def tt(self) -> np.ndarray:
        """Per-step execution times (``Tt`` series of Figure 5/6)."""
        return self._column("tt")

    @property
    def fmax(self) -> np.ndarray:
        """Per-step maximum force time across PEs."""
        return self._column("fmax")

    @property
    def fave(self) -> np.ndarray:
        """Per-step average force time across PEs."""
        return self._column("fave")

    @property
    def fmin(self) -> np.ndarray:
        """Per-step minimum force time across PEs."""
        return self._column("fmin")

    @property
    def comm_max(self) -> np.ndarray:
        """Per-step maximum communication time across PEs."""
        return self._column("comm_max")

    @property
    def dlb_time(self) -> np.ndarray:
        """Per-step DLB protocol overhead."""
        return self._column("dlb_time")

    @property
    def spread(self) -> np.ndarray:
        """Per-step ``Fmax - Fmin`` series."""
        cached = self._columns.get("spread")
        if cached is None:
            cached = self.fmax - self.fmin
            self._columns["spread"] = cached
        return cached

    @property
    def imbalance_ratio(self) -> np.ndarray:
        """Per-step ``Fmax / Fave`` (1.0 = perfectly balanced force load)."""
        cached = self._columns.get("imbalance_ratio")
        if cached is None:
            fave = self.fave
            with np.errstate(divide="ignore", invalid="ignore"):
                cached = np.where(fave > 0, self.fmax / fave, 1.0)
            self._columns["imbalance_ratio"] = cached
        return cached

    @property
    def efficiency(self) -> np.ndarray:
        """Per-step ``Fave / Fmax`` — the paper's parallel-efficiency estimate."""
        cached = self._columns.get("efficiency")
        if cached is None:
            fmax = self.fmax
            with np.errstate(divide="ignore", invalid="ignore"):
                cached = np.where(fmax > 0, self.fave / fmax, 1.0)
            self._columns["efficiency"] = cached
        return cached
