"""Reduced Lennard-Jones units and the Argon parameter set used by the paper.

The whole library works in *reduced units*: distances in units of the LJ
``sigma``, energies in units of ``epsilon``, masses in units of the particle
mass ``m``. In these units the reduced time step ``dt* = 0.001`` of the paper
(Section 3.2) corresponds to ``dt* * tau`` seconds with
``tau = sigma * sqrt(m / epsilon)``.

The paper simulates Argon (``T* = 0.722``, ``rho* = 0.256`` -- a supercooled
gas below Argon's boiling point). :data:`ARGON` carries the conventional
Argon LJ parameters so reduced results can be mapped back to SI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Boltzmann constant in J/K (SI), used only for unit conversion helpers.
BOLTZMANN_JK = 1.380649e-23


@dataclass(frozen=True)
class Substance:
    """Physical LJ parameters of a substance.

    Attributes
    ----------
    name:
        Human-readable substance name.
    sigma_m:
        LJ length parameter in metres.
    epsilon_j:
        LJ well depth in joules.
    mass_kg:
        Particle mass in kilograms.
    """

    name: str
    sigma_m: float
    epsilon_j: float
    mass_kg: float

    @property
    def tau_s(self) -> float:
        """Reduced time unit ``sigma * sqrt(m / epsilon)`` in seconds."""
        return self.sigma_m * math.sqrt(self.mass_kg / self.epsilon_j)

    def temperature_to_reduced(self, kelvin: float) -> float:
        """Convert an absolute temperature to reduced units ``kT/epsilon``."""
        return BOLTZMANN_JK * kelvin / self.epsilon_j

    def temperature_from_reduced(self, t_star: float) -> float:
        """Convert a reduced temperature back to kelvin."""
        return t_star * self.epsilon_j / BOLTZMANN_JK

    def time_from_reduced(self, t_star: float) -> float:
        """Convert a reduced time to seconds."""
        return t_star * self.tau_s


#: Conventional Argon LJ parameters (Heermann, *Computer Simulation Methods in
#: Theoretical Physics*, the paper's reference [1]).
ARGON = Substance(
    name="argon",
    sigma_m=3.405e-10,
    epsilon_j=119.8 * BOLTZMANN_JK,
    mass_kg=6.6335209e-26,
)

#: Reduced temperature used throughout the paper's evaluation.
PAPER_T_REF = 0.722
#: Reduced density of the main runs (Figures 5 and 6).
PAPER_RHO = 0.256
#: Reduced densities of the effective-range sweep (Figure 10).
PAPER_RHO_SWEEP = (0.128, 0.256, 0.384, 0.512)
#: Reduced cut-off distance used by the paper.
PAPER_CUTOFF = 2.5
#: Reduced integration time step used by the paper.
PAPER_DT = 0.001
#: The paper rescales velocities to T_ref every this many steps.
PAPER_RESCALE_INTERVAL = 50


def box_length_for(n_particles: int, density: float) -> float:
    """Edge length of the cubic box holding ``n_particles`` at ``density``.

    Parameters are in reduced units; the box is always cubic, matching the
    paper's periodic simulation space.
    """
    if n_particles <= 0:
        raise ValueError(f"n_particles must be positive, got {n_particles}")
    if density <= 0:
        raise ValueError(f"density must be positive, got {density}")
    return (n_particles / density) ** (1.0 / 3.0)
