"""repro.service — simulation-as-a-service over the exactly-once run store.

An asyncio HTTP/JSON API (stdlib only, no web framework) that accepts run
submissions, dedupes them onto the campaign engine's content-hash-keyed
SQLite :class:`~repro.campaign.store.RunStore`, executes them on a bounded
worker pool, and serves status, progress streams, results, flight-recorder
events and Prometheus metrics. See DESIGN.md §13 and the "Simulation
service" section of the README.

Public surface:

:class:`ServiceConfig` / :class:`SimulationService` / :func:`serve`
    Server construction and the blocking CLI entry point.
:class:`ServiceClient`
    A stdlib HTTP client for the API (used by the tests, the benchmark and
    the CI smoke job — and handy from a notebook), with full-jitter retry
    helpers (:func:`full_jitter_backoff`).
:class:`LeaseKeeper` / :class:`Reaper`
    The fleet layer: per-instance lease heartbeats and the expired-lease
    reaper that make N instances over one store a self-healing service
    (DESIGN.md §14).
:func:`validate_submission` and friends
    The submission/response schema layer.
"""

from __future__ import annotations

from .client import ServiceClient, full_jitter_backoff
from .fleet import LeaseKeeper, Reaper
from .queue import QueuedRun, RunQueue, RunRegistry, RunState, TERMINAL_STATES
from .schemas import (
    SERVICE_KEYS,
    Submission,
    error_body,
    response_body,
    validate_submission,
)
from .server import ServiceConfig, SimulationService, serve
from .worker import WorkerPool

__all__ = [
    "SERVICE_KEYS",
    "TERMINAL_STATES",
    "LeaseKeeper",
    "QueuedRun",
    "Reaper",
    "RunQueue",
    "RunRegistry",
    "RunState",
    "ServiceClient",
    "ServiceConfig",
    "SimulationService",
    "Submission",
    "WorkerPool",
    "error_body",
    "full_jitter_backoff",
    "response_body",
    "serve",
    "validate_submission",
]
