"""A small stdlib client for the simulation service.

``http.client`` only — the client must work everywhere the service does
(tests, CI smoke job, benchmark harness, a bare notebook) without pulling
in an HTTP library the container may not have. One connection per request,
matching the server's ``Connection: close`` discipline.

Every JSON response is passed through
:func:`repro.core.results.check_schema_version`, so a client built against
this schema fails loudly (not subtly) against a future incompatible server.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Callable, Iterator

from ..core.results import check_schema_version
from ..errors import ServiceError

__all__ = ["ServiceClient", "ServiceResponse", "full_jitter_backoff"]


def full_jitter_backoff(
    attempt: int,
    base: float = 0.2,
    cap: float = 5.0,
    rng: random.Random | None = None,
) -> float:
    """A full-jitter exponential backoff delay for retry ``attempt`` (0-based).

    ``uniform(0, min(cap, base * 2**attempt))`` — the full-jitter variant
    spreads retries across the whole window instead of synchronizing every
    client onto the same schedule, which is exactly what turns one
    recovering instance's backlog into a retry storm.  ``rng`` is
    injectable for deterministic tests.
    """
    window = min(float(cap), float(base) * (2.0 ** attempt))
    return (rng or random).uniform(0.0, window)


def _retry_after_s(response: "ServiceResponse") -> float | None:
    """The server's Retry-After in seconds, when present and readable."""
    for name, value in response.headers.items():
        if name.lower() == "retry-after":
            try:
                return max(0.0, float(value))
            except ValueError:
                return None
    return None


class ServiceResponse:
    """Status code + decoded JSON body of one service exchange."""

    def __init__(self, status: int, body: dict[str, Any], headers: dict[str, str]):
        self.status = status
        self.body = body
        self.headers = headers

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def raise_for_status(self) -> "ServiceResponse":
        if not self.ok:
            raise ServiceError(
                f"service answered {self.status}: "
                f"{self.body.get('error', self.body)}"
            )
        return self


class ServiceClient:
    """Synchronous client for one :class:`~repro.service.SimulationService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: float = 30.0,
                 rng: random.Random | None = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Jitter source and sleep hook — injectable so retry/backoff tests
        #: are deterministic and instant.
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> ServiceResponse:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            decoded = json.loads(raw) if raw else {}
            if isinstance(decoded, dict) and "schema_version" in decoded:
                check_schema_version(decoded, source=f"{method} {path}")
            return ServiceResponse(
                response.status,
                decoded if isinstance(decoded, dict) else {"body": decoded},
                dict(response.getheaders()),
            )
        finally:
            conn.close()

    def _request_text(self, path: str) -> str:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            text = response.read().decode()
            if response.status != 200:
                raise ServiceError(f"GET {path} answered {response.status}")
            return text
        finally:
            conn.close()

    # -- API ---------------------------------------------------------------

    def health(self) -> ServiceResponse:
        return self._request("GET", "/healthz")

    def ready(self) -> ServiceResponse:
        return self._request("GET", "/readyz")

    def submit(self, submission: dict[str, Any]) -> ServiceResponse:
        """POST a run spec; 202/200 on acceptance, see the server docs."""
        return self._request("POST", "/v1/runs", body=submission)

    def submit_with_retry(
        self,
        submission: dict[str, Any],
        retries: int = 5,
        base: float = 0.2,
        cap: float = 5.0,
    ) -> ServiceResponse:
        """Submit, retrying 429/503 with full-jitter backoff.

        The server's ``Retry-After`` is honoured as the *floor* of each
        delay (never retry sooner than asked); full jitter on top spreads
        a thundering herd of clients across the window instead of letting
        them re-synchronize against a recovering instance.  Other statuses
        (including validation errors and quarantine 409s) return
        immediately — retrying them would never succeed.
        """
        attempt = 0
        while True:
            response = self.submit(submission)
            if response.status not in (429, 503) or attempt >= retries:
                return response
            delay = full_jitter_backoff(attempt, base=base, cap=cap, rng=self.rng)
            floor = _retry_after_s(response)
            if floor is not None:
                delay = floor + full_jitter_backoff(
                    attempt, base=base, cap=cap, rng=self.rng
                )
            self.sleep(delay)
            attempt += 1

    def status(self, run_id: str) -> ServiceResponse:
        return self._request("GET", f"/v1/runs/{run_id}")

    def result(self, run_id: str) -> ServiceResponse:
        return self._request("GET", f"/v1/runs/{run_id}/result")

    def events(self, run_id: str) -> list[dict[str, Any]]:
        """The run's recorded flight-recorder events (JSONL decoded)."""
        text = self._request_text(f"/v1/runs/{run_id}/events")
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def metrics(self) -> str:
        """Prometheus text exposition from ``/metrics``."""
        return self._request_text("/metrics")

    def quarantine(self) -> list[dict[str, Any]]:
        """Quarantined runs with their structured error payloads."""
        response = self._request("GET", "/v1/quarantine").raise_for_status()
        return response.body.get("quarantined", [])

    def stream(self, run_id: str) -> Iterator[dict[str, Any]]:
        """Yield the run's progress records until the terminal one.

        Reads the chunked ``application/x-ndjson`` stream line by line;
        ``http.client`` de-chunks transparently.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/runs/{run_id}/stream")
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                body = json.loads(raw) if raw else {}
                raise ServiceError(
                    f"stream for {run_id} answered {response.status}: "
                    f"{body.get('error', body)}"
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()

    def wait(self, run_id: str, timeout: float = 120.0,
             poll_s: float = 0.2, poll_cap_s: float = 2.0) -> dict[str, Any]:
        """Block until the run is done and return the result payload.

        Follows the progress stream when possible, falling back to status
        polling (e.g. when the stream ends on a server drain). Polls back
        off exponentially from ``poll_s`` to ``poll_cap_s`` with full
        jitter, so a thousand waiting clients don't hammer a recovering
        instance in lockstep. Raises :class:`~repro.errors.ServiceError` on
        failure, demotion, quarantine or timeout.
        """
        deadline = time.monotonic() + timeout
        last: dict[str, Any] | None = None
        try:
            for record in self.stream(run_id):
                last = record
                if record.get("final"):
                    break
                if time.monotonic() > deadline:
                    raise ServiceError(f"run {run_id} timed out after {timeout}s")
        except (OSError, http.client.HTTPException):
            last = None  # stream broke; fall through to polling
        poll = 0
        while True:
            if last is not None and last.get("status") in (
                "done", "failed", "demoted", "quarantined"
            ):
                status = last["status"]
            else:
                if time.monotonic() > deadline:
                    raise ServiceError(f"run {run_id} timed out after {timeout}s")
                probe = self.status(run_id)
                if probe.status == 404:
                    raise ServiceError(f"run {run_id} is unknown to the service")
                status = probe.body.get("status")
                last = probe.body
            if status == "done":
                return self.result(run_id).raise_for_status().body
            if status in ("failed", "demoted", "quarantined"):
                raise ServiceError(
                    f"run {run_id} ended {status!r}: {last.get('error')}"
                )
            last = None
            self.sleep(
                full_jitter_backoff(
                    poll, base=poll_s, cap=poll_cap_s, rng=self.rng
                )
            )
            poll += 1
