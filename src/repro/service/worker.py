"""The service's worker pool: claim, execute, retry, drain.

Workers are asyncio tasks that drain the :class:`~repro.service.queue.RunQueue`
through the SQLite :class:`~repro.campaign.store.RunStore`'s exactly-once
primitives — the same :meth:`~repro.campaign.store.RunStore.claim` /
:meth:`~repro.campaign.store.RunStore.release` compare-and-set pair the
campaign scheduler uses, so a service instance, a campaign drainer and a
second service sharing one store never double-execute a hash.

Execution itself happens off the event loop:

* by default on a lazily-created ``ProcessPoolExecutor`` running the
  campaign engine's picklable :func:`~repro.campaign.executor._pool_worker`
  (per-run ``SIGALRM`` timeout inside the child, warm workers across runs);
* or through an injectable ``runner`` callable on a thread pool — the
  deterministic hook the tests use to block, fail or count executions.

Concurrency respects the host: each multiprocess-engine spec is rewritten
through :func:`repro.engine.effective_engine_workers` with the pool size as
the sibling count, so service slots x engine workers never oversubscribes
the machine (and, since worker count is not part of the content hash, the
rewrite never invalidates stored runs).

``drain()`` is the graceful-SIGTERM half: stop consuming, cancel the worker
tasks, demote every still-claimed row back to ``pending`` (resumable by a
successor process) and tear the executor down without waiting for in-flight
compute. A run whose claim was released is *never* recorded by this pool —
late results from an abandoned child are discarded, which is what keeps the
"never double-executed" contract under restart races.
"""

from __future__ import annotations

import asyncio
import logging
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Awaitable, Callable

from ..campaign.executor import _pool_worker
from ..campaign.store import RunStore
from ..engine import effective_engine_workers
from ..errors import ServiceError
from .queue import QueuedRun, RunQueue, RunRegistry

__all__ = ["WorkerPool"]

log = logging.getLogger("repro.service")

#: Signature of an injectable runner: ``(spec_dict, timeout, events_path)``
#: returning the campaign outcome dict ``{"ok", "payload"|"error",
#: "duration_s"}``. The default is the campaign pool worker itself.
Runner = Callable[[dict, float | None, str | None], dict]


class WorkerPool:
    """Bounded pool of queue-draining workers over one run store."""

    def __init__(
        self,
        store: RunStore,
        queue: RunQueue,
        registry: RunRegistry,
        *,
        workers: int = 1,
        run_timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.5,
        runner: Runner | None = None,
        events_dir: str | None = None,
        on_resolved: Callable[[str, str], Awaitable[None]] | None = None,
    ) -> None:
        if workers <= 0:
            raise ServiceError(f"worker count must be positive, got {workers}")
        if retries < 0:
            raise ServiceError(f"retries must be non-negative, got {retries}")
        self.store = store
        self.queue = queue
        self.registry = registry
        self.workers = int(workers)
        self.run_timeout = run_timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.runner = runner
        self.events_dir = events_dir
        #: Optional async hook ``(run_hash, status)`` awaited after every
        #: terminal resolution (the server bumps metrics there).
        self.on_resolved = on_resolved
        self.draining = False
        #: Hashes this pool has claimed and not yet resolved — exactly what
        #: a drain demotes, never a sibling process's claims.
        self.inflight: set[str] = set()
        self._tasks: list[asyncio.Task] = []
        self._watchers: set[asyncio.Task] = set()
        self._executor: Executor | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        if self._tasks:
            raise ServiceError("worker pool already started")
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"repro-service-worker-{i}")
            for i in range(self.workers)
        ]

    async def drain(self) -> int:
        """Stop executing, demote in-flight claims; returns the demoted count.

        Idempotent. After a drain the pool accepts no more work; queued
        items simply stay registered as ``pending`` in the store for a
        successor process (their in-memory states turn ``demoted`` so open
        progress streams end cleanly).
        """
        if self.draining:
            return 0
        self.draining = True
        for task in self._tasks + list(self._watchers):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._watchers:
            await asyncio.gather(*self._watchers, return_exceptions=True)
        demoted = 0
        for run_hash in sorted(self.inflight):
            if self.store.release(run_hash):
                demoted += 1
            await self.registry.transition(run_hash, "demoted")
            log.info("drain: demoted in-flight run %s to pending", run_hash)
        self.inflight.clear()
        # Queued-but-unclaimed runs are already 'pending' in the store; end
        # their streams so clients know to come back after the restart.
        while True:
            try:
                item = self.queue._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            await self.registry.transition(item.run_hash, "demoted")
            demoted += 0  # pending already; nothing to release
        self._shutdown_executor()
        return demoted

    def _shutdown_executor(self) -> None:
        pool = self._executor
        self._executor = None
        if pool is None:
            return
        pool.shutdown(wait=False, cancel_futures=True)
        # A ProcessPoolExecutor cannot cancel a *running* future; its claim
        # is already released, so terminate the children rather than letting
        # an abandoned simulation hold up process exit.
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except (OSError, AttributeError):  # pragma: no cover - best effort
                pass

    # -- execution ---------------------------------------------------------

    def _events_path(self, item: QueuedRun) -> str | None:
        if not item.record_events or self.events_dir is None:
            return None
        return f"{self.events_dir}/{item.run_hash}.events.jsonl"

    def _guarded_spec(self, spec):
        """Apply the nested-parallelism guard to multiprocess-engine specs."""
        if getattr(spec, "engine", None) != "multiprocess":
            return spec
        return replace(
            spec,
            engine_workers=effective_engine_workers(
                spec.engine_workers, sibling_processes=self.workers
            ),
        )

    async def _execute(self, item: QueuedRun) -> dict:
        """Run one spec off the event loop; never raises (outcome dict)."""
        spec = self._guarded_spec(item.spec)
        loop = asyncio.get_running_loop()
        if self.runner is not None:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-service-runner",
                )
            call = self.runner
        else:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            call = _pool_worker
        return await loop.run_in_executor(
            self._executor,
            call,
            spec.to_dict(),
            self.run_timeout,
            self._events_path(item),
        )

    async def _resolved(self, run_hash: str, status: str) -> None:
        if self.on_resolved is not None:
            await self.on_resolved(run_hash, status)

    async def _worker_loop(self) -> None:
        while not self.draining:
            item = await self.queue.get()
            try:
                await self._run_one(item)
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - defensive: keep draining
                log.exception("worker crashed on run %s", item.run_hash)

    async def _run_one(self, item: QueuedRun) -> None:
        run_hash = item.run_hash
        if not self.store.claim(run_hash):
            # Someone else owns or finished the hash. Serve 'done' straight
            # from the store; otherwise watch the store until the external
            # owner resolves it so progress streams still terminate.
            stored = self.store.get(run_hash)
            if stored is not None and stored.status == "done":
                await self.registry.transition(run_hash, "done")
                await self._resolved(run_hash, "cached")
            else:
                await self.registry.transition(run_hash, "external")
                watcher = asyncio.create_task(self._watch_external(run_hash))
                self._watchers.add(watcher)
                watcher.add_done_callback(self._watchers.discard)
            return
        self.inflight.add(run_hash)
        attempt = 1
        await self.registry.transition(run_hash, "running", attempts=attempt)
        while True:
            outcome = await self._execute(item)
            if run_hash not in self.inflight:
                # Drained (claim released) while executing: a successor may
                # already be re-running this hash — discard the late result.
                log.warning("discarding late result for demoted run %s", run_hash)
                return
            if outcome.get("ok"):
                self.store.complete(
                    run_hash, outcome["payload"], outcome.get("duration_s", 0.0)
                )
                self.inflight.discard(run_hash)
                await self.registry.transition(run_hash, "done", attempts=attempt)
                await self._resolved(run_hash, "done")
                return
            if attempt <= self.retries:
                if self.backoff > 0:
                    await asyncio.sleep(self.backoff * 2 ** (attempt - 1))
                if self.draining or run_hash not in self.inflight:
                    return
                attempt += 1
                self.store.start(run_hash)
                await self.registry.transition(run_hash, "running", attempts=attempt)
                continue
            self.store.fail(
                run_hash, outcome.get("error", "unknown error"),
                outcome.get("duration_s"),
            )
            self.inflight.discard(run_hash)
            await self.registry.transition(
                run_hash, "failed", attempts=attempt,
                error=outcome.get("error", "unknown error"),
            )
            await self._resolved(run_hash, "failed")
            return

    async def _watch_external(self, run_hash: str, poll_s: float = 0.25) -> None:
        """Poll the store while another process executes ``run_hash``."""
        while not self.draining:
            stored = self.store.get(run_hash)
            if stored is None or stored.status in ("done", "failed"):
                status = stored.status if stored is not None else "failed"
                await self.registry.transition(
                    run_hash, status,
                    error=stored.error if stored is not None else "row vanished",
                )
                await self._resolved(run_hash, status)
                return
            await asyncio.sleep(poll_s)
