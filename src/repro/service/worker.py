"""The service's worker pool: lease, execute, retry, drain.

Workers are asyncio tasks that drain the :class:`~repro.service.queue.RunQueue`
through the SQLite :class:`~repro.campaign.store.RunStore`'s exactly-once
primitives — the same :meth:`~repro.campaign.store.RunStore.acquire_lease` /
:meth:`~repro.campaign.store.RunStore.release_lease` compare-and-swap pair
the campaign scheduler uses, so a service instance, a campaign drainer and a
second service sharing one store never double-execute a hash.  With a
``lease_ttl`` the pool takes *monitored* leases: the fleet's
:class:`~repro.service.fleet.LeaseKeeper` heartbeats them, a sibling's
reaper reclaims them if this process dies, and every store write this pool
makes is ownership-guarded — a lease lost mid-run means the result is
discarded here, never committed over the reclaimer's.

Execution itself happens off the event loop:

* by default on a lazily-created ``ProcessPoolExecutor`` running the
  campaign engine's picklable :func:`~repro.campaign.executor._pool_worker`
  (per-run ``SIGALRM`` timeout inside the child, warm workers across runs);
* or through an injectable ``runner`` callable on a thread pool — the
  deterministic hook the tests use to block, fail or count executions.

Concurrency respects the host: each multiprocess-engine spec is rewritten
through :func:`repro.engine.effective_engine_workers` with the pool size as
the sibling count, so service slots x engine workers never oversubscribes
the machine (and, since worker count is not part of the content hash, the
rewrite never invalidates stored runs).

``drain()`` is the graceful-SIGTERM half: stop consuming, cancel the worker
tasks, demote every still-claimed row back to ``pending`` (resumable by a
successor process) and tear the executor down without waiting for in-flight
compute. A run whose claim was released is *never* recorded by this pool —
late results from an abandoned child are discarded, which is what keeps the
"never double-executed" contract under restart races.
"""

from __future__ import annotations

import asyncio
import logging
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Awaitable, Callable

from ..campaign.executor import _pool_worker
from ..campaign.store import Lease, RunStore
from ..engine import effective_engine_workers
from ..errors import ServiceError
from .queue import QueuedRun, RunQueue, RunRegistry

__all__ = ["WorkerPool"]

log = logging.getLogger("repro.service")

#: Signature of an injectable runner: ``(spec_dict, timeout, events_path)``
#: returning the campaign outcome dict ``{"ok", "payload"|"error",
#: "duration_s"}``. The default is the campaign pool worker itself.  When
#: the pool checkpoints (``checkpoint_dir`` set), the runner is called with
#: two extra positional arguments ``(checkpoint_dir, checkpoint_every)``.
Runner = Callable[[dict, float | None, str | None], dict]


class WorkerPool:
    """Bounded pool of queue-draining workers over one run store."""

    def __init__(
        self,
        store: RunStore,
        queue: RunQueue,
        registry: RunRegistry,
        *,
        workers: int = 1,
        run_timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.5,
        runner: Runner | None = None,
        events_dir: str | None = None,
        on_resolved: Callable[[str, str], Awaitable[None]] | None = None,
        lease_ttl: float | None = None,
        max_attempts: int | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        on_lease_event: Callable[[str], None] | None = None,
    ) -> None:
        if workers <= 0:
            raise ServiceError(f"worker count must be positive, got {workers}")
        if retries < 0:
            raise ServiceError(f"retries must be non-negative, got {retries}")
        if lease_ttl is not None and lease_ttl <= 0:
            raise ServiceError(f"lease ttl must be positive, got {lease_ttl}")
        if max_attempts is not None and max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be at least 1, got {max_attempts}"
            )
        self.store = store
        self.queue = queue
        self.registry = registry
        self.workers = int(workers)
        self.run_timeout = run_timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.runner = runner
        self.events_dir = events_dir
        #: Optional async hook ``(run_hash, status)`` awaited after every
        #: terminal resolution (the server bumps metrics there).
        self.on_resolved = on_resolved
        #: None = legacy unmonitored claims (single-process deployments);
        #: a float arms monitored leases siblings can reclaim on expiry.
        self.lease_ttl = lease_ttl
        #: Distinct-instance failures before a run is quarantined
        #: (None = never quarantine, the legacy behaviour).
        self.max_attempts = max_attempts
        #: Base directory for per-run checkpoint subdirectories; with a
        #: cadence this arms crash-safe mid-run snapshots so a reclaimed
        #: run resumes instead of restarting.
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = int(checkpoint_every)
        #: Optional sync hook for lease lifecycle metrics: called with
        #: ``"renewed"``, ``"lost"`` or ``"quarantined"``.
        self.on_lease_event = on_lease_event
        self.draining = False
        #: Hashes this pool has claimed and not yet resolved — exactly what
        #: a drain demotes, never a sibling process's claims.
        self.inflight: set[str] = set()
        #: The store leases backing ``inflight``, keyed by run hash.
        self.leases: dict[str, Lease] = {}
        self._tasks: list[asyncio.Task] = []
        self._watchers: set[asyncio.Task] = set()
        self._executor: Executor | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        if self._tasks:
            raise ServiceError("worker pool already started")
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"repro-service-worker-{i}")
            for i in range(self.workers)
        ]

    async def drain(self) -> int:
        """Stop executing, demote in-flight claims; returns the demoted count.

        Idempotent. After a drain the pool accepts no more work; queued
        items simply stay registered as ``pending`` in the store for a
        successor process (their in-memory states turn ``demoted`` so open
        progress streams end cleanly).
        """
        if self.draining:
            return 0
        self.draining = True
        for task in self._tasks + list(self._watchers):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._watchers:
            await asyncio.gather(*self._watchers, return_exceptions=True)
        demoted = 0
        for run_hash in sorted(self.inflight):
            lease = self.leases.pop(run_hash, None)
            released = (
                self.store.release_lease(lease)
                if lease is not None
                else self.store.release(run_hash)
            )
            if released:
                demoted += 1
            await self.registry.transition(run_hash, "demoted")
            log.info("drain: demoted in-flight run %s to pending", run_hash)
        self.inflight.clear()
        self.leases.clear()
        # Queued-but-unclaimed runs are already 'pending' in the store; end
        # their streams so clients know to come back after the restart.
        while True:
            try:
                item = self.queue._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            await self.registry.transition(item.run_hash, "demoted")
            demoted += 0  # pending already; nothing to release
        self._shutdown_executor()
        return demoted

    def _shutdown_executor(self) -> None:
        pool = self._executor
        self._executor = None
        if pool is None:
            return
        pool.shutdown(wait=False, cancel_futures=True)
        # A ProcessPoolExecutor cannot cancel a *running* future; its claim
        # is already released, so terminate the children rather than letting
        # an abandoned simulation hold up process exit.
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except (OSError, AttributeError):  # pragma: no cover - best effort
                pass

    # -- execution ---------------------------------------------------------

    def _events_path(self, item: QueuedRun) -> str | None:
        if not item.record_events or self.events_dir is None:
            return None
        return f"{self.events_dir}/{item.run_hash}.events.jsonl"

    def _run_checkpoint_dir(self, run_hash: str) -> str | None:
        if self.checkpoint_dir is None or self.checkpoint_every <= 0:
            return None
        return f"{self.checkpoint_dir}/{run_hash}"

    def _clear_checkpoints(self, run_hash: str) -> None:
        """Drop a committed run's snapshots (they have served their purpose)."""
        directory = self._run_checkpoint_dir(run_hash)
        if directory is None:
            return
        from ..core.checkpoint import CheckpointManager

        try:
            CheckpointManager(directory).clear()
        except OSError:  # pragma: no cover - cleanup is best effort
            log.warning("could not clear checkpoints for %s", run_hash)

    def _guarded_spec(self, spec):
        """Apply the nested-parallelism guard to multiprocess-engine specs."""
        if getattr(spec, "engine", None) != "multiprocess":
            return spec
        return replace(
            spec,
            engine_workers=effective_engine_workers(
                spec.engine_workers, sibling_processes=self.workers
            ),
        )

    async def _execute(self, item: QueuedRun) -> dict:
        """Run one spec off the event loop; never raises (outcome dict)."""
        spec = self._guarded_spec(item.spec)
        loop = asyncio.get_running_loop()
        if self.runner is not None:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-service-runner",
                )
            call = self.runner
        else:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            call = _pool_worker
        args = [spec.to_dict(), self.run_timeout, self._events_path(item)]
        checkpoint_dir = self._run_checkpoint_dir(item.run_hash)
        if checkpoint_dir is not None:
            # Only extend the call when checkpointing is armed, so injected
            # three-argument runners keep working unchanged.
            args += [checkpoint_dir, self.checkpoint_every]
        return await loop.run_in_executor(self._executor, call, *args)

    async def _resolved(self, run_hash: str, status: str) -> None:
        if self.on_resolved is not None:
            await self.on_resolved(run_hash, status)

    def _lease_event(self, event: str) -> None:
        if self.on_lease_event is not None:
            self.on_lease_event(event)

    def renew_leases(self) -> list[str]:
        """Heartbeat every held lease; returns the hashes whose lease was lost.

        Called by the fleet's :class:`~repro.service.fleet.LeaseKeeper` on
        its cadence.  A failed renewal means a sibling reclaimed the run
        (this process was paused/overloaded past its deadline): ownership is
        dropped immediately so the in-flight result is discarded, and the
        run is watched externally like any other sibling-owned hash.
        """
        lost: list[str] = []
        for run_hash, lease in list(self.leases.items()):
            renewed = self.store.renew_lease(lease)
            if renewed is None:
                lost.append(run_hash)
            else:
                self.leases[run_hash] = renewed
                self._lease_event("renewed")
        return lost

    async def surrender(self, run_hash: str) -> None:
        """Drop ownership of a run whose lease was lost (no store write)."""
        if run_hash not in self.inflight:
            return
        self.inflight.discard(run_hash)
        self.leases.pop(run_hash, None)
        self._lease_event("lost")
        log.warning(
            "lost lease on run %s (reclaimed by a sibling); "
            "discarding the local execution", run_hash,
        )
        await self.registry.transition(run_hash, "external")
        self._watch(run_hash)

    def _watch(self, run_hash: str) -> None:
        watcher = asyncio.create_task(self._watch_external(run_hash))
        self._watchers.add(watcher)
        watcher.add_done_callback(self._watchers.discard)

    async def _worker_loop(self) -> None:
        while not self.draining:
            item = await self.queue.get()
            try:
                await self._run_one(item)
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - defensive: keep draining
                log.exception("worker crashed on run %s", item.run_hash)

    async def _run_one(self, item: QueuedRun) -> None:
        run_hash = item.run_hash
        # A reaper-reclaimed run arrives with its lease already acquired;
        # fresh submissions lease here.
        lease = item.lease
        if lease is None:
            lease = self.store.acquire_lease(run_hash, ttl=self.lease_ttl)
        if lease is None:
            # Someone else owns or finished the hash. Serve 'done' straight
            # from the store; surface a quarantine as the terminal error it
            # is; otherwise watch the store until the external owner
            # resolves it so progress streams still terminate.
            stored = self.store.get(run_hash)
            if stored is not None and stored.status == "done":
                await self.registry.transition(run_hash, "done")
                await self._resolved(run_hash, "cached")
            elif stored is not None and stored.status == "quarantined":
                await self.registry.transition(
                    run_hash, "quarantined", error=stored.error
                )
                await self._resolved(run_hash, "quarantined")
            else:
                await self.registry.transition(run_hash, "external")
                self._watch(run_hash)
            return
        self.inflight.add(run_hash)
        self.leases[run_hash] = lease
        attempt = 1
        await self.registry.transition(run_hash, "running", attempts=lease.attempt)
        if item.resume:
            log.info(
                "resuming reclaimed run %s (attempt %d)", run_hash, lease.attempt
            )
        while True:
            outcome = await self._execute(item)
            if run_hash not in self.inflight:
                # Drained, or the lease was lost while executing: a sibling
                # may already be re-running this hash — discard the late
                # result (its store write would be CAS-rejected anyway).
                log.warning("discarding late result for demoted run %s", run_hash)
                return
            lease = self.leases.get(run_hash, lease)
            if outcome.get("ok"):
                committed = self.store.complete(
                    run_hash, outcome["payload"], outcome.get("duration_s", 0.0),
                    lease=lease,
                )
                if not committed:
                    # The ownership CAS rejected the write: the lease was
                    # reclaimed between our last renewal and the commit.
                    # Exactly-once holds because the store never took our
                    # payload; the reclaimer's is the only one.
                    await self.surrender(run_hash)
                    return
                self.inflight.discard(run_hash)
                self.leases.pop(run_hash, None)
                self._clear_checkpoints(run_hash)
                await self.registry.transition(
                    run_hash, "done", attempts=lease.attempt
                )
                await self._resolved(run_hash, "done")
                return
            if attempt <= self.retries:
                if self.backoff > 0:
                    await asyncio.sleep(self.backoff * 2 ** (attempt - 1))
                if self.draining or run_hash not in self.inflight:
                    return
                attempt += 1
                retried = self.store.retry_lease(self.leases.get(run_hash, lease))
                if retried is None:
                    await self.surrender(run_hash)
                    return
                lease = self.leases[run_hash] = retried
                await self.registry.transition(
                    run_hash, "running", attempts=lease.attempt
                )
                continue
            status = self.store.fail(
                run_hash, outcome.get("error", "unknown error"),
                outcome.get("duration_s"), lease=lease,
                quarantine_after=self.max_attempts,
            )
            if status is None:
                await self.surrender(run_hash)
                return
            self.inflight.discard(run_hash)
            self.leases.pop(run_hash, None)
            if status == "quarantined":
                self._lease_event("quarantined")
                stored = self.store.get(run_hash)
                await self.registry.transition(
                    run_hash, "quarantined", attempts=lease.attempt,
                    error=stored.error if stored is not None else None,
                )
                await self._resolved(run_hash, "quarantined")
                return
            await self.registry.transition(
                run_hash, "failed", attempts=lease.attempt,
                error=outcome.get("error", "unknown error"),
            )
            await self._resolved(run_hash, "failed")
            return

    async def _watch_external(self, run_hash: str, poll_s: float = 0.25) -> None:
        """Poll the store while another process executes ``run_hash``."""
        while not self.draining:
            stored = self.store.get(run_hash)
            if stored is None or stored.status in ("done", "failed", "quarantined"):
                status = stored.status if stored is not None else "failed"
                await self.registry.transition(
                    run_hash, status,
                    error=stored.error if stored is not None else "row vanished",
                )
                await self._resolved(run_hash, status)
                return
            await asyncio.sleep(poll_s)
