"""Bounded submission queue and the in-memory run registry.

Two small pieces the server and the worker pool share:

:class:`RunQueue`
    A bounded FIFO of :class:`QueuedRun` items. ``try_put`` never blocks —
    a full queue is the service's backpressure signal (HTTP 429 with
    ``Retry-After``), because an unbounded queue would just convert
    overload into unbounded memory and unbounded latency.

:class:`RunRegistry`
    The live, in-process view of every run this server instance has seen:
    ``queued -> running -> done | failed`` (plus ``demoted`` when a drain
    releases an in-flight claim, and ``external`` while another process
    sharing the store executes the hash). The persistent truth stays in the
    SQLite :class:`~repro.campaign.store.RunStore`; the registry exists so
    progress streams get push-notified transitions instead of polling the
    database, via one shared :class:`asyncio.Condition`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator

from ..errors import ServiceError

__all__ = ["QueuedRun", "RunQueue", "RunRegistry", "RunState", "TERMINAL_STATES"]

#: States a run cannot leave on this server instance. ``demoted`` is
#: terminal *here* (the claim was released for a successor process);
#: ``failed`` is terminal until a client resubmits the hash;
#: ``quarantined`` is terminal everywhere until an operator requeues it.
TERMINAL_STATES = ("done", "failed", "demoted", "quarantined")

#: Every state the registry can report.
RUN_STATES = (
    "queued", "running", "done", "failed", "demoted", "external", "quarantined"
)


@dataclass(frozen=True)
class QueuedRun:
    """One unit of queued work (hash + executable spec + service flags).

    ``lease`` carries a pre-acquired store lease when the reaper reclaimed
    this run from a dead instance (the worker then resumes instead of
    re-claiming); ``resume`` marks the run as a failover continuation so
    the worker reports it distinctly.
    """

    run_hash: str
    spec: Any
    record_events: bool = False
    lease: Any = None
    resume: bool = False


class RunQueue:
    """Bounded FIFO with a non-blocking producer side.

    The consumer side (:meth:`get`) is a plain awaitable; the producer side
    deliberately has no awaitable variant — the server must answer *now*
    with either 202 (queued) or 429 (full), never park a client connection
    on queue space.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ServiceError(f"queue size must be positive, got {maxsize}")
        self.maxsize = int(maxsize)
        self._queue: asyncio.Queue[QueuedRun] = asyncio.Queue(maxsize=self.maxsize)

    def try_put(self, item: QueuedRun) -> bool:
        """Enqueue without blocking; False means full (backpressure)."""
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            return False
        return True

    async def get(self) -> QueuedRun:
        """Wait for the next queued run (worker side)."""
        return await self._queue.get()

    @property
    def depth(self) -> int:
        """Runs currently waiting (the ``repro_service_queue_depth`` gauge)."""
        return self._queue.qsize()

    @property
    def full(self) -> bool:
        return self._queue.full()


@dataclass
class RunState:
    """The registry's view of one run on this server instance."""

    run_hash: str
    status: str = "queued"
    attempts: int = 0
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (status responses and progress-stream records)."""
        return {
            "run_id": self.run_hash,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "age_s": round(time.time() - self.submitted_at, 6),
        }


class RunRegistry:
    """Tracks run states and wakes progress-stream watchers on transitions."""

    def __init__(self) -> None:
        self._states: dict[str, RunState] = {}
        self._condition: asyncio.Condition = asyncio.Condition()
        #: Monotonic transition counter; watchers use it to detect changes
        #: they slept through instead of comparing state objects.
        self.version = 0

    def get(self, run_hash: str) -> RunState | None:
        return self._states.get(run_hash)

    def active(self, run_hash: str) -> bool:
        """True while this instance is responsible for the hash."""
        state = self._states.get(run_hash)
        return state is not None and not state.terminal

    def mark(
        self,
        run_hash: str,
        status: str,
        *,
        attempts: int | None = None,
        error: str | None = None,
    ) -> RunState:
        """Record a state change *without* waking watchers.

        Synchronous on purpose: the submit handler's check-and-enqueue must
        not yield between reading the registry and writing it, or two
        concurrent submissions of one hash both look "new". Follow up with
        :meth:`notify` (or use :meth:`transition`) once outside the critical
        section.
        """
        if status not in RUN_STATES:
            raise ServiceError(f"unknown run state {status!r}")
        state = self._states.get(run_hash)
        if state is None:
            state = self._states[run_hash] = RunState(run_hash=run_hash)
        state.status = status
        state.updated_at = time.time()
        if attempts is not None:
            state.attempts = int(attempts)
        state.error = error
        return state

    async def notify(self) -> None:
        """Wake every watcher to re-read the registry."""
        async with self._condition:
            self.version += 1
            self._condition.notify_all()

    async def transition(
        self,
        run_hash: str,
        status: str,
        *,
        attempts: int | None = None,
        error: str | None = None,
    ) -> RunState:
        """Record a state change and notify every watcher."""
        state = self.mark(run_hash, status, attempts=attempts, error=error)
        await self.notify()
        return state

    async def watch(
        self, run_hash: str, heartbeat_s: float = 1.0
    ) -> AsyncIterator[RunState | None]:
        """Yield the run's state on every transition (and each heartbeat).

        Yields the current state immediately, then again whenever *any*
        registry transition lands or ``heartbeat_s`` elapses — the consumer
        decides what is worth emitting. ``None`` is yielded on heartbeats
        where the hash is unknown to this instance (e.g. a cached run), so
        streams over store-served hashes still tick. Ends when the state
        turns terminal.
        """
        while True:
            state = self._states.get(run_hash)
            yield state
            if state is not None and state.terminal:
                return
            seen = self.version
            async with self._condition:
                if self.version == seen:
                    try:
                        await asyncio.wait_for(
                            self._condition.wait(), timeout=heartbeat_s
                        )
                    except TimeoutError:
                        pass
