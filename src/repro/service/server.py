"""The asyncio HTTP/JSON simulation service.

One process, one event loop, no web framework: :class:`SimulationService`
binds :func:`asyncio.start_server`, parses HTTP/1.1 by hand (short-lived
``Connection: close`` exchanges), and exposes the campaign engine's
exactly-once run store as a service:

====== =============================== =========================================
Method Route                           Meaning
====== =============================== =========================================
POST   ``/v1/runs``                    Submit a run spec (202 queued,
                                       202 deduplicated, 200 cached,
                                       429 backpressure, 503 draining)
GET    ``/v1/runs/<id>``               Point-in-time status
GET    ``/v1/runs/<id>/stream``        Progress stream: chunked JSONL of state
                                       transitions + heartbeats until terminal
GET    ``/v1/runs/<id>/result``        The stored payload (409 until done)
GET    ``/v1/runs/<id>/events``        The run's flight-recorder JSONL
GET    ``/v1/quarantine``              Quarantined runs + structured errors
GET    ``/healthz``                    Liveness (always 200 while serving)
GET    ``/readyz``                     Readiness (503 + reason when
                                       draining, store down, or saturated)
GET    ``/metrics``                    Prometheus text exposition
====== =============================== =========================================

Submissions are validated against the typed :mod:`repro.api` surface and
keyed by the campaign engine's resolved-config hash, so duplicates — across
clients, restarts, or a concurrently-running campaign sharing the store —
dedupe to one execution. A SIGTERM starts a drain: new submissions get 503
with ``Retry-After``, in-flight claims are demoted back to ``pending``
(never double-executed), open streams are given a grace period to observe
the terminal ``demoted`` state, and the process exits cleanly.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import sqlite3

from ..campaign.store import RunStore
from ..errors import ConfigurationError, ReproError, SchemaError, ServiceError
from ..obs import Observability, collect_service, scope
from .fleet import RENEWALS_PER_TTL, LeaseKeeper, Reaper
from .queue import QueuedRun, RunQueue, RunRegistry
from .schemas import error_body, response_body, validate_submission
from .worker import Runner, WorkerPool

__all__ = ["ServiceConfig", "SimulationService", "serve"]

log = logging.getLogger("repro.service")

#: Seconds a client is told to wait before retrying a 429/503.
RETRY_AFTER_S = 2

#: Cap on request-head reads (request line + each header line).
_MAX_LINE = 8192

#: Seconds to wait for a complete request head + body before giving up.
_READ_TIMEOUT_S = 10.0


@dataclass
class ServiceConfig:
    """Everything a :class:`SimulationService` needs to run."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the bound port lands on ``service.port``).
    port: int = 8321
    #: Campaign directory holding the SQLite run store (None = in-memory,
    #: which forfeits restart-resume but is handy for tests and demos).
    store_dir: str | None = None
    #: Concurrent worker slots (the service-level parallelism).
    workers: int = 2
    #: Bounded submission queue; a full queue answers 429.
    queue_size: int = 64
    #: Per-run wall-clock timeout (None = no limit).
    run_timeout: float | None = None
    #: Extra attempts after a failed run before recording ``failed``.
    retries: int = 1
    #: Base of the exponential retry backoff, in seconds.
    backoff: float = 0.5
    #: Directory for flight-recorder event logs (None disables
    #: ``record_events`` submissions).
    events_dir: str | None = None
    #: Campaign name service submissions are registered under.
    campaign: str = "service"
    #: Seconds to let open progress streams finish after a drain.
    drain_grace_s: float = 3.0
    #: Largest accepted request body, in bytes (413 beyond).
    max_body: int = 1 << 20
    #: Lease TTL in seconds for monitored run ownership. None falls back to
    #: legacy unmonitored claims (single-instance; no failover). Any float
    #: arms the fleet machinery: heartbeat renewal, reaping, quarantine.
    lease_ttl: float | None = 30.0
    #: Reaper/renewal cadence; None derives ttl / RENEWALS_PER_TTL.
    reap_interval: float | None = None
    #: Distinct-instance failures before a run is quarantined terminally.
    max_attempts: int = 3
    #: Checkpoint cadence (steps) for preset runs; 0 disables mid-run
    #: snapshots (reclaimed runs then restart from step 0 — still
    #: digest-identical, just slower).
    checkpoint_every: int = 0
    #: Age in seconds after which done results are evicted by the periodic
    #: store sweep (None disables service-side eviction).
    result_ttl_s: float | None = None
    #: Cadence of the eviction sweep, when ``result_ttl_s`` is set.
    gc_interval_s: float = 60.0
    #: Fleet identity of this instance (None = host-pid-nonce default).
    instance_id: str | None = None
    #: Test seam: run specs through this callable instead of the process
    #: pool (see :data:`repro.service.worker.Runner`).
    runner: Runner | None = field(default=None, repr=False)


class SimulationService:
    """The service instance: store + queue + registry + workers + listener."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.store: RunStore | None = None
        self.queue = RunQueue(self.config.queue_size)
        self.registry = RunRegistry()
        self.pool: WorkerPool | None = None
        self.obs = Observability.create(trace=False, metrics=True, profiler=True)
        self.metrics = self.obs.metrics
        self.port: int | None = None
        self.draining = False
        self.keeper: LeaseKeeper | None = None
        self.reaper: Reaper | None = None
        self._server: asyncio.Server | None = None
        self._stopped = asyncio.Event()
        self._streams = 0
        self._obs_cm = None
        self._gc_task: asyncio.Task | None = None
        # Pre-create the counters so /metrics exposes zeros from request one.
        self.metrics.counter(
            "repro_service_requests_total", "HTTP requests by route/method/code"
        )
        self.metrics.counter(
            "repro_service_dedup_hits_total",
            "submissions answered by an existing execution of the same hash",
        )
        self.metrics.counter(
            "repro_service_submissions_total", "submissions by outcome"
        )
        self.metrics.counter(
            "repro_service_demoted_runs_total",
            "stale running rows demoted to pending at startup",
        )
        self.metrics.counter(
            "repro_service_runs_total", "runs resolved by this instance, by status"
        )
        self.metrics.counter(
            "repro_service_lease_renewals_total",
            "successful lease heartbeat renewals",
        )
        self.metrics.counter(
            "repro_service_lost_leases_total",
            "in-flight runs surrendered after a sibling reclaimed the lease",
        )
        self.metrics.counter(
            "repro_service_reclaimed_runs_total",
            "expired sibling leases reclaimed and resumed by this instance",
        )
        self.metrics.counter(
            "repro_service_quarantined_runs_total",
            "runs moved to the terminal quarantined state by this instance",
        )
        self.metrics.counter(
            "repro_service_evicted_runs_total",
            "stored results evicted by the TTL sweep",
        )
        self.metrics.histogram(
            "repro_service_request_seconds", "request handling latency by route"
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Open the store, recover stale state, start workers and listener."""
        if self._server is not None:
            raise ServiceError("service already started")
        # takeover=False: a sibling process (campaign drainer, second
        # service) may legitimately be mid-run on a shared store. The
        # *explicit* sweep below is this instance's own crash recovery --
        # it demotes unmonitored and *expired* leases only, so a live
        # sibling's heartbeated runs are untouched; counted so operators
        # can see ungraceful shutdowns.
        self.store = RunStore(
            self.config.store_dir, takeover=False,
            instance_id=self.config.instance_id,
        )
        demoted = self.store.sweep_stale()
        self.metrics.counter("repro_service_demoted_runs_total").inc(float(demoted))
        if demoted:
            log.warning(
                "startup sweep: demoted %d stale running row(s) to pending",
                demoted,
            )
        if self.config.events_dir is not None:
            Path(self.config.events_dir).mkdir(parents=True, exist_ok=True)
        self._obs_cm = self.obs.activate()
        self._obs_cm.__enter__()
        checkpoint_dir = None
        if self.config.store_dir is not None and self.config.checkpoint_every > 0:
            checkpoint_dir = str(Path(self.config.store_dir) / "checkpoints")
        self.pool = WorkerPool(
            self.store,
            self.queue,
            self.registry,
            workers=self.config.workers,
            run_timeout=self.config.run_timeout,
            retries=self.config.retries,
            backoff=self.config.backoff,
            runner=self.config.runner,
            events_dir=self.config.events_dir,
            on_resolved=self._on_resolved,
            lease_ttl=self.config.lease_ttl,
            max_attempts=self.config.max_attempts,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=self.config.checkpoint_every,
            on_lease_event=self._on_lease_event,
        )
        self.pool.start()
        if self.config.lease_ttl is not None:
            interval = self.config.reap_interval
            if interval is None:
                interval = self.config.lease_ttl / RENEWALS_PER_TTL
            self.keeper = LeaseKeeper(self.pool, interval=interval)
            self.keeper.start()
            self.reaper = Reaper(
                self.store, self.queue, self.registry, self.pool,
                lease_ttl=self.config.lease_ttl,
                interval=interval,
                max_attempts=self.config.max_attempts,
                campaign=self.config.campaign,
                on_reclaimed=self._on_reclaimed,
                on_quarantined=self._on_quarantined,
            )
            self.reaper.start()
        if self.config.result_ttl_s is not None:
            self._gc_task = asyncio.create_task(
                self._gc_loop(), name="repro-service-gc"
            )
        await self._requeue_pending()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "repro service listening on %s:%d (store=%s, workers=%d)",
            self.config.host, self.port,
            self.config.store_dir or ":memory:", self.config.workers,
        )

    async def _requeue_pending(self) -> None:
        """Re-enqueue the store's pending service runs (restart resume)."""
        assert self.store is not None
        for stored in self.store.runs(self.config.campaign):
            if stored.status != "pending":
                continue
            try:
                spec = stored.run_spec()
            except ReproError as exc:  # pragma: no cover - corrupt row
                log.warning("cannot requeue run %s: %s", stored.hash, exc)
                continue
            if self.queue.try_put(QueuedRun(run_hash=stored.hash, spec=spec)):
                await self.registry.transition(stored.hash, "queued")
                log.info("resume: requeued pending run %s", stored.hash)
            else:  # pragma: no cover - queue smaller than backlog
                log.warning("resume: queue full, run %s stays pending", stored.hash)

    async def serve_forever(self) -> None:
        """Run until a drain completes (SIGTERM/SIGINT trigger one)."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.initiate_drain)
                installed.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main-thread loop (the test harness) or a platform
                # without signal support; drains are triggered directly.
                break
        try:
            await self._stopped.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop()

    def initiate_drain(self) -> None:
        """Begin a graceful shutdown; safe to call repeatedly."""
        if self.draining:
            return
        self.draining = True
        log.info("drain: rejecting new submissions, demoting in-flight runs")
        asyncio.get_running_loop().create_task(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        assert self.pool is not None
        # Fleet tasks first: a reaper must not reclaim new work into a
        # draining queue, and the keeper has nothing left to renew once the
        # pool's leases are released.
        await self._stop_fleet_tasks()
        await self.pool.drain()
        # Hold the listener open for the whole grace window — open streams
        # get to observe their terminal record, and late clients get an
        # explicit 503 + Retry-After instead of a connection refusal.
        deadline = time.monotonic() + self.config.drain_grace_s
        while time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        self._stopped.set()

    async def _stop_fleet_tasks(self) -> None:
        if self.keeper is not None:
            await self.keeper.stop()
            self.keeper = None
        if self.reaper is not None:
            await self.reaper.stop()
            self.reaper = None
        if self._gc_task is not None:
            self._gc_task.cancel()
            try:
                await self._gc_task
            except asyncio.CancelledError:
                pass
            self._gc_task = None

    async def stop(self) -> None:
        """Close the listener, workers and store (idempotent)."""
        await self._stop_fleet_tasks()
        if self.pool is not None:
            await self.pool.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.store is not None:
            self.store.close()
            self.store = None
        if self._obs_cm is not None:
            self._obs_cm.__exit__(None, None, None)
            self._obs_cm = None
        self._stopped.set()

    async def _on_resolved(self, run_hash: str, status: str) -> None:
        self.metrics.counter("repro_service_runs_total").inc(1.0, status=status)

    def _on_lease_event(self, event: str) -> None:
        counter = {
            "renewed": "repro_service_lease_renewals_total",
            "lost": "repro_service_lost_leases_total",
            "quarantined": "repro_service_quarantined_runs_total",
        }.get(event)
        if counter is not None:
            self.metrics.counter(counter).inc()

    def _on_reclaimed(self) -> None:
        self.metrics.counter("repro_service_reclaimed_runs_total").inc()

    def _on_quarantined(self) -> None:
        self.metrics.counter("repro_service_quarantined_runs_total").inc()

    async def _gc_loop(self) -> None:
        """Periodic result-TTL sweep (the optional service-side eviction)."""
        while True:
            await asyncio.sleep(self.config.gc_interval_s)
            try:
                evicted = self.evict_now()
                if evicted:
                    log.info("gc: evicted %d stored result(s)", len(evicted))
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - keep sweeping
                log.exception("gc sweep failed")

    def evict_now(self) -> list[str]:
        """Evict done results older than the TTL, with their artifacts."""
        assert self.store is not None
        if self.config.result_ttl_s is None:
            return []
        evicted = self.store.evict_older_than(
            self.config.result_ttl_s, campaign=self.config.campaign
        )
        for run_hash in evicted:
            self._cleanup_artifacts(run_hash)
        if evicted:
            self.metrics.counter("repro_service_evicted_runs_total").inc(
                float(len(evicted))
            )
        return evicted

    def _cleanup_artifacts(self, run_hash: str) -> None:
        """Remove an evicted run's event logs and checkpoint snapshots."""
        if self.config.events_dir is not None:
            base = Path(self.config.events_dir) / f"{run_hash}.events.jsonl"
            for path in (base, base.with_name(f"{run_hash}.events.host.jsonl")):
                path.unlink(missing_ok=True)
        if self.pool is not None:
            self.pool._clear_checkpoints(run_hash)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time service state (feeds the ``/metrics`` gauges)."""
        instances = 0
        if self.store is not None and self.config.lease_ttl is not None:
            try:
                instances = len(self.store.live_instances())
            except sqlite3.Error:  # pragma: no cover - store went away
                instances = 0
        return {
            "queue_depth": self.queue.depth,
            "inflight": len(self.pool.inflight) if self.pool is not None else 0,
            "streams": self._streams,
            "draining": self.draining,
            "instances": instances,
        }

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader, writer), timeout=_READ_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                await self._send_json(
                    writer, 408, error_body("request read timed out", 408)
                )
                return
            if method is None:  # _read_request already answered
                return
            await self._dispatch(writer, method, path, body)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except Exception:  # pragma: no cover - last-ditch 500
            log.exception("unhandled error serving request")
            try:
                await self._send_json(
                    writer, 500, error_body("internal server error", 500)
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[str | None, str, bytes]:
        """Parse one HTTP/1.1 request; (None, ..) means already answered."""
        request_line = await reader.readline()
        if not request_line:
            return None, "", b""
        if len(request_line) > _MAX_LINE:
            await self._send_json(
                writer, 414, error_body("request line too long", 414)
            )
            return None, "", b""
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._send_json(
                writer, 400, error_body("malformed request line", 400)
            )
            return None, "", b""
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if len(line) > _MAX_LINE:
                await self._send_json(writer, 431, error_body("header too long", 431))
                return None, "", b""
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._send_json(
                writer, 400, error_body("unreadable Content-Length", 400)
            )
            return None, "", b""
        if length > self.config.max_body:
            await self._send_json(
                writer, 413,
                error_body(
                    f"request body of {length} bytes exceeds the "
                    f"{self.config.max_body}-byte limit", 413,
                ),
            )
            return None, "", b""
        body = await reader.readexactly(length) if length > 0 else b""
        path = target.split("?", 1)[0]
        return method, path, body

    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        route, handler, run_id = self._route(method, path)
        started = time.perf_counter()
        status = 500
        try:
            with scope(f"service.{route}"):
                if handler is None:
                    status = await self._send_json(
                        writer, 404,
                        error_body(f"no route for {method} {path}", 404),
                    )
                elif run_id is not None:
                    status = await handler(writer, run_id)
                elif route == "submit":
                    status = await handler(writer, body)
                else:
                    status = await handler(writer)
        finally:
            elapsed = time.perf_counter() - started
            self.metrics.counter("repro_service_requests_total").inc(
                1.0, route=route, method=method, code=str(status)
            )
            self.metrics.histogram("repro_service_request_seconds").observe(
                elapsed, route=route
            )

    def _route(self, method: str, path: str):
        """Resolve (route label, handler, run id) for a request target."""
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            return "healthz", self._handle_health, None
        if path == "/readyz" and method == "GET":
            return "readyz", self._handle_ready, None
        if path == "/metrics" and method == "GET":
            return "metrics", self._handle_metrics, None
        if path == "/v1/quarantine" and method == "GET":
            return "quarantine", self._handle_quarantine, None
        if segments[:2] == ["v1", "runs"]:
            if len(segments) == 2 and method == "POST":
                return "submit", self._handle_submit, None
            if len(segments) == 3 and method == "GET":
                return "status", self._handle_status, segments[2]
            if len(segments) == 4 and method == "GET":
                sub = segments[3]
                handler = {
                    "result": self._handle_result,
                    "stream": self._handle_stream,
                    "events": self._handle_events,
                }.get(sub)
                if handler is not None:
                    return sub, handler, segments[2]
        return "unknown", None, None

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict[str, Any],
        extra_headers: dict[str, str] | None = None,
    ) -> int:
        payload = json.dumps(body, sort_keys=True).encode()
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        writer.write(_head(status, headers) + payload)
        await writer.drain()
        return status

    async def _send_text(
        self, writer: asyncio.StreamWriter, status: int, text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> int:
        payload = text.encode()
        writer.write(
            _head(status, {
                "Content-Type": content_type,
                "Content-Length": str(len(payload)),
                "Connection": "close",
            }) + payload
        )
        await writer.drain()
        return status

    # -- route handlers ----------------------------------------------------

    async def _handle_health(self, writer: asyncio.StreamWriter) -> int:
        return await self._send_json(
            writer, 200,
            response_body({"status": "ok", "draining": self.draining}),
        )

    async def _handle_ready(self, writer: asyncio.StreamWriter) -> int:
        """Honest readiness: 503 + reason whenever a submit would not land.

        Load balancers route on this answer, so each way the instance can
        refuse work is reported as the condition it is — draining, a
        broken/locked run store, or a worker pool saturated past its queue —
        instead of a 200 that merely means "the socket is open".
        """
        reason = None
        if self.draining:
            reason = "service is draining"
        elif self.store is None:
            reason = "run store is not open"
        else:
            try:
                self.store.ping()
            except sqlite3.Error as exc:
                reason = f"run store unreachable: {exc}"
        if reason is None and self.queue.full:
            reason = (
                f"worker pool saturated: submission queue is full "
                f"({self.queue.maxsize} runs)"
            )
        if reason is not None:
            return await self._send_json(
                writer, 503, error_body(reason, 503),
                {"Retry-After": str(RETRY_AFTER_S)},
            )
        return await self._send_json(
            writer, 200,
            response_body({"status": "ready", "queue_depth": self.queue.depth}),
        )

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> int:
        collect_service(self.metrics, self.snapshot())
        return await self._send_text(
            writer, 200, self.metrics.to_prometheus_text()
        )

    async def _handle_quarantine(self, writer: asyncio.StreamWriter) -> int:
        """List quarantined runs with their structured error payloads."""
        assert self.store is not None
        runs = [
            {
                "run_id": stored.hash,
                "campaign": stored.campaign,
                "attempts": stored.attempts,
                "failed_owners": list(stored.failed_owners),
                "quarantine": stored.error_payload,
            }
            for stored in self.store.quarantined_runs()
        ]
        return await self._send_json(
            writer, 200, response_body({"quarantined": runs, "count": len(runs)})
        )

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> int:
        submissions = self.metrics.counter("repro_service_submissions_total")
        if self.draining:
            submissions.inc(1.0, outcome="draining")
            return await self._send_json(
                writer, 503,
                error_body("service is draining; resubmit after restart", 503),
                {"Retry-After": str(RETRY_AFTER_S)},
            )
        try:
            payload = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            submissions.inc(1.0, outcome="rejected")
            return await self._send_json(
                writer, 400, error_body(f"request body is not JSON: {exc}", 400)
            )
        try:
            submission = validate_submission(payload)
        except (ConfigurationError, SchemaError) as exc:
            submissions.inc(1.0, outcome="rejected")
            return await self._send_json(writer, 400, error_body(str(exc), 400))
        if submission.record_events and self.config.events_dir is None:
            submissions.inc(1.0, outcome="rejected")
            return await self._send_json(
                writer, 400,
                error_body(
                    "record_events requested but the service has no events "
                    "directory (start with --events-dir)", 400,
                ),
            )
        run_hash = submission.run_hash
        assert self.store is not None
        self.store.register(
            submission.spec, self.config.campaign, run_hash=run_hash
        )
        stored = self.store.get(run_hash)
        if stored is not None and stored.status == "done":
            # Cache hit: the hash has a payload (this process or any earlier
            # one). First-ever submission of a hash is never counted here.
            self.metrics.counter("repro_service_dedup_hits_total").inc()
            submissions.inc(1.0, outcome="cached")
            return await self._send_json(
                writer, 200,
                response_body(
                    {"run_id": run_hash, "status": "done", "cached": True}
                ),
            )
        if stored is not None and stored.status == "quarantined":
            # Terminal until an operator requeues it; re-submission must not
            # silently re-enter the failure loop.
            submissions.inc(1.0, outcome="quarantined")
            return await self._send_json(
                writer, 409,
                error_body(
                    f"run {run_hash} is quarantined; inspect and requeue "
                    "with `repro runs requeue`", 409,
                    quarantine=stored.error_payload,
                ),
            )
        if self.registry.active(run_hash):
            # In flight here (queued/running) or watched externally: dedupe
            # to the existing execution.
            self.metrics.counter("repro_service_dedup_hits_total").inc()
            submissions.inc(1.0, outcome="deduplicated")
            state = self.registry.get(run_hash)
            return await self._send_json(
                writer, 202,
                response_body(dict(state.to_dict(), deduplicated=True)),
            )
        queued = QueuedRun(
            run_hash=run_hash,
            spec=submission.spec,
            record_events=submission.record_events,
        )
        if not self.queue.try_put(queued):
            submissions.inc(1.0, outcome="backpressure")
            return await self._send_json(
                writer, 429,
                error_body(
                    f"submission queue is full ({self.queue.maxsize} runs); "
                    f"retry after {RETRY_AFTER_S}s", 429,
                ),
                {"Retry-After": str(RETRY_AFTER_S)},
            )
        # mark() is the synchronous half of transition(): no await lands
        # between the active() check above and this write, so concurrent
        # submissions of one hash cannot both enqueue it.
        state = self.registry.mark(run_hash, "queued")
        submissions.inc(1.0, outcome="accepted")
        await self.registry.notify()
        return await self._send_json(
            writer, 202, response_body(state.to_dict())
        )

    def _store_view(self, run_hash: str) -> dict[str, Any] | None:
        """Status dict from the persistent store (for hashes not live here)."""
        assert self.store is not None
        stored = self.store.get(run_hash)
        if stored is None:
            return None
        return {
            "run_id": run_hash,
            "status": stored.status,
            "attempts": stored.attempts,
            "error": stored.error,
        }

    async def _handle_status(
        self, writer: asyncio.StreamWriter, run_hash: str
    ) -> int:
        state = self.registry.get(run_hash)
        if state is not None:
            view = state.to_dict()
            view["queue_depth"] = self.queue.depth
            return await self._send_json(writer, 200, response_body(view))
        view = self._store_view(run_hash)
        if view is None:
            return await self._send_json(
                writer, 404, error_body(f"unknown run {run_hash!r}", 404)
            )
        return await self._send_json(writer, 200, response_body(view))

    async def _handle_result(
        self, writer: asyncio.StreamWriter, run_hash: str
    ) -> int:
        assert self.store is not None
        stored = self.store.get(run_hash)
        if stored is None:
            return await self._send_json(
                writer, 404, error_body(f"unknown run {run_hash!r}", 404)
            )
        if stored.status != "done":
            state = self.registry.get(run_hash)
            status = state.status if state is not None else stored.status
            return await self._send_json(
                writer, 409,
                error_body(
                    f"run {run_hash} is {status!r}, not done"
                    + (f": {stored.error}" if stored.error else ""), 409,
                ),
            )
        return await self._send_json(
            writer, 200,
            response_body({
                "run_id": run_hash,
                "status": "done",
                "attempts": stored.attempts,
                "duration_s": stored.duration_s,
                "payload": stored.payload,
            }),
        )

    async def _handle_events(
        self, writer: asyncio.StreamWriter, run_hash: str
    ) -> int:
        if self.config.events_dir is None:
            return await self._send_json(
                writer, 404, error_body("service records no events", 404)
            )
        path = Path(self.config.events_dir) / f"{run_hash}.events.jsonl"
        if not path.exists():
            return await self._send_json(
                writer, 404,
                error_body(f"no recorded events for run {run_hash!r}", 404),
            )
        return await self._send_text(
            writer, 200, path.read_text(), content_type="application/x-ndjson"
        )

    async def _handle_stream(
        self, writer: asyncio.StreamWriter, run_hash: str
    ) -> int:
        state = self.registry.get(run_hash)
        stored_view = self._store_view(run_hash)
        if state is None and stored_view is None:
            return await self._send_json(
                writer, 404, error_body(f"unknown run {run_hash!r}", 404)
            )
        writer.write(_head(200, {
            "Content-Type": "application/x-ndjson",
            "Transfer-Encoding": "chunked",
            "Connection": "close",
        }))
        await writer.drain()
        self._streams += 1
        try:
            if state is None:
                # Not live on this instance: one terminal line from the store.
                await self._write_chunk(
                    writer, dict(stored_view, final=True, source="store")
                )
            else:
                async for update in self.registry.watch(run_hash):
                    record = (
                        update.to_dict() if update is not None else
                        {"run_id": run_hash, "status": "unknown"}
                    )
                    record["queue_depth"] = self.queue.depth
                    record["final"] = update is not None and update.terminal
                    await self._write_chunk(writer, record)
                    if self.draining and not record["final"]:
                        # A drained instance resolves nothing further; end
                        # the stream instead of out-living the drain grace.
                        await self._write_chunk(
                            writer,
                            {"run_id": run_hash, "status": "demoted",
                             "final": True, "source": "drain"},
                        )
                        break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            self._streams -= 1
        return 200

    async def _write_chunk(
        self, writer: asyncio.StreamWriter, record: dict[str, Any]
    ) -> None:
        line = (json.dumps(response_body(record), sort_keys=True) + "\n").encode()
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        await writer.drain()


def _head(status: int, headers: dict[str, str]) -> bytes:
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        408: "Request Timeout", 409: "Conflict", 413: "Payload Too Large",
        414: "URI Too Long", 429: "Too Many Requests",
        431: "Request Header Fields Too Large", 500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


def serve(config: ServiceConfig | None = None) -> None:
    """Blocking entry point: run a service until SIGTERM/SIGINT (the CLI)."""

    async def _main() -> None:
        service = SimulationService(config)
        await service.start()
        await service.serve_forever()

    asyncio.run(_main())
