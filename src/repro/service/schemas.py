"""Typed submission and response schemas of the simulation service.

A *submission* is a decoded JSON object describing one run — the fields of
:class:`~repro.campaign.spec.RunSpec` (kind, preset/geometry, steps, seed,
engine …) plus two service-level keys:

``schema_version``
    Optional declaration of the layout the client wrote the submission
    under; an unknown *major* version is rejected up front (HTTP 400) with
    the actionable :class:`~repro.errors.SchemaError` message instead of
    being misinterpreted.
``record_events``
    Ask the worker to record the run's flight-recorder log (PR 7), served
    afterwards from ``GET /v1/runs/<id>/events``. Needs the service to be
    started with an events directory.

Validation and canonicalisation delegate to
:func:`repro.api.canonicalize_submission`, so the hash a submission dedupes
on is *exactly* the campaign engine's content hash: a spec submitted over
HTTP, expanded from a campaign grid, or swept from the CLI is one run.

Every HTTP response body is built by :func:`response_body`, which stamps the
result schema version through the single writer in :mod:`repro.core.results`
— the service never hand-rolls an envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .. import api
from ..core.results import attach_schema_version
from ..errors import ConfigurationError

__all__ = [
    "SERVICE_KEYS",
    "Submission",
    "error_body",
    "response_body",
    "validate_submission",
]

#: Submission keys consumed by the service itself (not part of the spec).
SERVICE_KEYS = ("record_events",)


@dataclass(frozen=True)
class Submission:
    """One validated, canonicalised run submission.

    ``run_hash`` keys the run store; ``spec`` is the executable
    :class:`~repro.campaign.spec.RunSpec`; ``record_events`` carries the
    client's flight-recorder request through to the worker.
    """

    spec: Any
    run_hash: str
    record_events: bool = False


def validate_submission(payload: Any) -> Submission:
    """Parse a decoded request body into a :class:`Submission`.

    Raises :class:`~repro.errors.ConfigurationError` (or
    :class:`~repro.errors.SchemaError` for an unreadable ``schema_version``)
    with a message fit to return verbatim in a 400 response.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"submission body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    record_events = payload.get("record_events", False)
    if not isinstance(record_events, bool):
        raise ConfigurationError(
            f"record_events must be true or false, got {record_events!r}"
        )
    spec_fields = {k: v for k, v in payload.items() if k not in SERVICE_KEYS}
    canonical = api.canonicalize_submission(spec_fields)
    return Submission(
        spec=canonical.spec,
        run_hash=canonical.run_hash,
        record_events=record_events,
    )


def response_body(body: dict[str, Any]) -> dict[str, Any]:
    """A response payload with the schema version stamped (single writer)."""
    return attach_schema_version(body)


def error_body(message: str, status: int, **details: Any) -> dict[str, Any]:
    """The uniform JSON error payload (also schema-versioned).

    ``details`` carries structured context alongside the human-readable
    message — e.g. a quarantined run's error payload on a 409.
    """
    body: dict[str, Any] = {"error": str(message), "status": int(status)}
    body.update(details)
    return response_body(body)
