"""Fleet coordination: lease heartbeats and the failed-instance reaper.

N ``repro serve`` processes sharing one SQLite :class:`RunStore` behave as a
single self-healing service through two per-instance background tasks:

:class:`LeaseKeeper`
    Renews every lease this instance's :class:`~repro.service.worker.WorkerPool`
    holds, on a cadence well inside the lease TTL.  A renewal that fails
    means a sibling reclaimed the run (this process was paused or overloaded
    past its deadline); the keeper makes the pool surrender the run
    immediately, so its in-flight result is discarded and can never be
    committed — the store's ownership CAS would reject the write anyway, but
    surrendering early also frees the worker slot and flips open progress
    streams to watch the new owner.

:class:`Reaper`
    Heartbeats this instance into the store's ``instances`` table, then
    scans for runs whose lease deadline has passed — the signature of a
    SIGKILLed/partitioned sibling.  Each expired run is either *reclaimed*
    (re-leased to this instance and enqueued locally with ``resume=True``,
    so the worker continues from the latest crash-safe checkpoint — PR 4's
    bit-identical restore keeps the final digest equal to an uninterrupted
    run) or, once ``max_attempts`` distinct instances have failed it,
    *quarantined* terminally with a structured error payload.  The reaper
    also adopts orphaned ``pending`` rows (submitted to a sibling that died
    before claiming them), which closes the last gap in "any run submitted
    to any instance eventually resolves".

Both tasks are pure asyncio; the store calls they make are sub-millisecond
SQLite statements, safe on the event loop.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Callable

from ..errors import ReproError
from .queue import QueuedRun

__all__ = ["LeaseKeeper", "Reaper"]

log = logging.getLogger("repro.service")

#: Renewals per TTL window. 3 means a lease is refreshed when a third of its
#: TTL has elapsed — two consecutive missed renewals still leave slack
#: before the deadline, so transient event-loop stalls don't lose leases.
RENEWALS_PER_TTL = 3


class LeaseKeeper:
    """Heartbeats the worker pool's leases; surrenders the lost ones."""

    def __init__(self, pool, interval: float) -> None:
        self.pool = pool
        self.interval = float(interval)
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        self._task = asyncio.create_task(self._loop(), name="repro-lease-keeper")

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            try:
                for run_hash in self.pool.renew_leases():
                    await self.pool.surrender(run_hash)
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - keep heartbeating
                log.exception("lease renewal pass failed")


class Reaper:
    """Reclaims expired siblings' runs and adopts orphaned pending rows."""

    def __init__(
        self,
        store,
        queue,
        registry,
        pool,
        *,
        lease_ttl: float,
        interval: float,
        max_attempts: int | None = None,
        campaign: str = "service",
        on_reclaimed: Callable[[], None] | None = None,
        on_quarantined: Callable[[], None] | None = None,
    ) -> None:
        self.store = store
        self.queue = queue
        self.registry = registry
        self.pool = pool
        self.lease_ttl = float(lease_ttl)
        self.interval = float(interval)
        self.max_attempts = max_attempts
        self.campaign = campaign
        self.on_reclaimed = on_reclaimed
        self.on_quarantined = on_quarantined
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        self._task = asyncio.create_task(self._loop(), name="repro-reaper")

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            try:
                await self.sweep()
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - keep reaping
                log.exception("reaper sweep failed")

    async def sweep(self) -> int:
        """One reap pass; returns the number of runs reclaimed here."""
        # The instance heartbeat doubles as the fleet-size signal: an
        # instance is "live" while its heartbeat deadline holds, and the
        # heartbeat cadence is the reap interval.
        self.store.heartbeat_instance(ttl=max(self.lease_ttl, self.interval * 3))
        leases, quarantined = self.store.reclaim_expired(
            ttl=self.lease_ttl, quarantine_after=self.max_attempts
        )
        for stored in quarantined:
            log.warning(
                "quarantined run %s after lease expiry on instances %s",
                stored.hash, list(stored.failed_owners),
            )
            if self.on_quarantined is not None:
                self.on_quarantined()
            await self.registry.transition(
                stored.hash, "quarantined", error=stored.error
            )
        reclaimed = 0
        for lease in leases:
            if not self._enqueue_reclaimed(lease):
                # No local slot: put the run back to pending; a sibling (or
                # our own adoption pass below, next sweep) picks it up.
                self.store.release_lease(lease)
                continue
            reclaimed += 1
            log.warning(
                "reclaimed expired run %s (attempt %d) — resuming from "
                "latest checkpoint", lease.run_hash, lease.attempt,
            )
            if self.on_reclaimed is not None:
                self.on_reclaimed()
            await self.registry.transition(
                lease.run_hash, "queued", attempts=lease.attempt
            )
        await self._adopt_pending()
        return reclaimed

    def _enqueue_reclaimed(self, lease) -> bool:
        stored = self.store.get(lease.run_hash)
        if stored is None:
            return False
        try:
            spec = stored.run_spec()
        except ReproError:  # pragma: no cover - corrupt row
            log.warning("cannot resume reclaimed run %s: bad spec", lease.run_hash)
            return False
        return self.queue.try_put(
            QueuedRun(
                run_hash=lease.run_hash, spec=spec, lease=lease, resume=True
            )
        )

    async def _adopt_pending(self) -> None:
        """Enqueue pending rows no live instance is responsible for.

        A run submitted to an instance that died before leasing it sits
        ``pending`` with no owner; startup requeue only helps the instance
        that restarts. Adopting them here means the fleet as a whole drains
        every submission. Rows already live in this instance's registry
        (queued here, watched externally) are skipped — and a row another
        live instance has queued in memory gets leased exactly once anyway.
        """
        for stored in self.store.runs(self.campaign, status="pending"):
            if self.registry.active(stored.hash):
                continue
            try:
                spec = stored.run_spec()
            except ReproError:  # pragma: no cover - corrupt row
                continue
            if self.queue.try_put(QueuedRun(run_hash=stored.hash, spec=spec)):
                self.registry.mark(stored.hash, "queued")
                await self.registry.notify()
                log.info("adopted orphaned pending run %s", stored.hash)
