"""repro: dynamic load balancing with permanent cells for parallel MD.

A from-scratch Python reproduction of Hayashi & Horiguchi, "Efficiency of
Dynamic Load Balancing Based on Permanent Cells for Parallel Molecular
Dynamics Simulation" (IPPS 2000): the Lennard-Jones MD substrate, the
square-pillar domain decomposition, the permanent-cell load balancer, a
simulated T3E-class multicomputer, and the theory of DLB's effective ranges.

Quickstart::

    from repro import api
    from repro.config import RunConfig

    result = api.simulate("fig5b-scaled", run=RunConfig(steps=200, seed=1))
    print(result.summary())

:mod:`repro.api` is the stable public surface; the runner classes it wraps
(``repro.ParallelMDRunner`` / ``repro.DrivenLoadRunner``) remain importable
from the top level as deprecated shims.
"""

import importlib
import warnings

from .config import (
    DecompositionConfig,
    DLBConfig,
    MachineConfig,
    MDConfig,
    RunConfig,
    SimulationConfig,
)
from .core import RunResult, StepRecord
from .dlb import DynamicLoadBalancer, dlb_limit_ratio, movable_fraction
from .errors import (
    AnalysisError,
    ConfigurationError,
    DecompositionError,
    GeometryError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .md import LennardJones, ParticleSystem, SerialSimulation
from .theory import (
    BoundaryPoint,
    detect_divergence_step,
    fit_boundary_scale,
    measure_concentration,
    upper_bound,
)
from .workloads import (
    ConcentrationSchedule,
    Preset,
    get_preset,
    supercooled_simulation_config,
)

__version__ = "1.0.0"

#: Top-level names now served lazily with a DeprecationWarning: construct
#: runs through :func:`repro.api.simulate` / :func:`repro.api.simulate_driven`
#: instead of driving the runner classes directly.
_DEPRECATED_RUNNERS = {
    "ParallelMDRunner": ("repro.core.runner", "repro.api.simulate"),
    "DrivenLoadRunner": ("repro.core.runner", "repro.api.simulate_driven"),
}


def __getattr__(name: str):
    if name == "api":
        return importlib.import_module(".api", __name__)
    if name in _DEPRECATED_RUNNERS:
        module_name, replacement = _DEPRECATED_RUNNERS[name]
        warnings.warn(
            f"repro.{name} is deprecated; use {replacement}() (the class "
            f"itself remains available as {module_name}.{name})",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AnalysisError",
    "BoundaryPoint",
    "ConcentrationSchedule",
    "ConfigurationError",
    "DLBConfig",
    "DecompositionConfig",
    "DecompositionError",
    "DrivenLoadRunner",
    "DynamicLoadBalancer",
    "GeometryError",
    "LennardJones",
    "MDConfig",
    "MachineConfig",
    "ParallelMDRunner",
    "ParticleSystem",
    "Preset",
    "ProtocolError",
    "ReproError",
    "RunConfig",
    "RunResult",
    "SerialSimulation",
    "SimulationConfig",
    "SimulationError",
    "StepRecord",
    "detect_divergence_step",
    "dlb_limit_ratio",
    "fit_boundary_scale",
    "get_preset",
    "measure_concentration",
    "movable_fraction",
    "supercooled_simulation_config",
    "upper_bound",
]
