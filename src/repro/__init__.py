"""repro: dynamic load balancing with permanent cells for parallel MD.

A from-scratch Python reproduction of Hayashi & Horiguchi, "Efficiency of
Dynamic Load Balancing Based on Permanent Cells for Parallel Molecular
Dynamics Simulation" (IPPS 2000): the Lennard-Jones MD substrate, the
square-pillar domain decomposition, the permanent-cell load balancer, a
simulated T3E-class multicomputer, and the theory of DLB's effective ranges.

Quickstart::

    from repro import ParallelMDRunner, RunConfig, get_preset

    preset = get_preset("fig5b-scaled")
    runner = ParallelMDRunner(preset.simulation_config(dlb_enabled=True),
                              RunConfig(steps=200, seed=1))
    result = runner.run()
    print(result.summary())
"""

from .config import (
    DecompositionConfig,
    DLBConfig,
    MachineConfig,
    MDConfig,
    RunConfig,
    SimulationConfig,
)
from .core import DrivenLoadRunner, ParallelMDRunner, RunResult, StepRecord
from .dlb import DynamicLoadBalancer, dlb_limit_ratio, movable_fraction
from .errors import (
    AnalysisError,
    ConfigurationError,
    DecompositionError,
    GeometryError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .md import LennardJones, ParticleSystem, SerialSimulation
from .theory import (
    BoundaryPoint,
    detect_divergence_step,
    fit_boundary_scale,
    measure_concentration,
    upper_bound,
)
from .workloads import (
    ConcentrationSchedule,
    Preset,
    get_preset,
    supercooled_simulation_config,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BoundaryPoint",
    "ConcentrationSchedule",
    "ConfigurationError",
    "DLBConfig",
    "DecompositionConfig",
    "DecompositionError",
    "DrivenLoadRunner",
    "DynamicLoadBalancer",
    "GeometryError",
    "LennardJones",
    "MDConfig",
    "MachineConfig",
    "ParallelMDRunner",
    "ParticleSystem",
    "Preset",
    "ProtocolError",
    "ReproError",
    "RunConfig",
    "RunResult",
    "SerialSimulation",
    "SimulationConfig",
    "SimulationError",
    "StepRecord",
    "detect_divergence_step",
    "dlb_limit_ratio",
    "fit_boundary_scale",
    "get_preset",
    "measure_concentration",
    "movable_fraction",
    "supercooled_simulation_config",
    "upper_bound",
]
