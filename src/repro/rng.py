"""Deterministic random-number plumbing.

Every stochastic component of the library takes an explicit
:class:`numpy.random.Generator`. This module provides helpers to derive
independent child generators from a root seed so that experiments are
reproducible run-to-run and stream-to-stream (e.g. the five independent
initial configurations the paper averages over).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

#: Default root seed used by examples and benchmarks.
DEFAULT_SEED = 20000501  # IPPS 2000, May 1-5, Cancun.


def generator(seed: int | np.random.SeedSequence | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to :data:`DEFAULT_SEED` (the library never uses OS entropy,
    keeping all built-in workloads deterministic).
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def repetition_seeds(seed: int | None, n: int) -> list[int]:
    """``n`` independent integer seeds derived from a root ``seed``.

    These are the seeds :func:`spawn`'s children would draw as their first
    ``integers(2**31)`` sample, so a driver that loops over spawned
    generators and one that loops over these integers produce identical
    streams -- which is what lets a campaign store record a single integer
    per repetition and still replay the exact run.
    """
    return [int(child.integers(2**31)) for child in spawn(seed, n)]


def stream(seed: int | None = None) -> Iterator[np.random.Generator]:
    """Yield an unbounded stream of independent generators from ``seed``."""
    root = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    while True:
        (child,) = root.spawn(1)
        yield np.random.default_rng(child)
