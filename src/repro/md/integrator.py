"""Velocity-form Verlet integration (Section 3.2 of the paper)."""

from __future__ import annotations

from ..errors import ConfigurationError
from .forces import ForceField, ForceResult
from .pbc import wrap_positions_inplace
from .system import ParticleSystem


class VelocityVerlet:
    """The velocity form of the Verlet algorithm.

    One step advances the state by

    1. ``v += (dt/2) f``
    2. ``x += dt v`` (then wrap into the periodic box)
    3. recompute forces
    4. ``v += (dt/2) f``

    ``system.forces`` must hold forces consistent with ``system.positions``
    before the first call: use :meth:`initialize`.
    """

    def __init__(self, dt: float) -> None:
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        self.dt = float(dt)

    def initialize(self, system: ParticleSystem, force_field: ForceField) -> ForceResult:
        """Evaluate initial forces so subsequent steps see a consistent state."""
        return force_field.compute(system)

    def step(self, system: ParticleSystem, force_field: ForceField) -> ForceResult:
        """Advance ``system`` by one time step; returns the new force result."""
        half_dt = 0.5 * self.dt
        system.velocities += half_dt * system.forces
        system.positions += self.dt * system.velocities
        wrap_positions_inplace(system.positions, system.box_length)
        result = force_field.compute(system)
        system.velocities += half_dt * system.forces
        return result
