"""Serial molecular-dynamics driver (the single-PE reference)."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..config import MDConfig
from ..rng import generator
from .forces import ForceField, ForceResult
from .integrator import VelocityVerlet
from .lattice import maxwell_boltzmann_velocities, simple_cubic_positions
from .observables import kinetic_energy, temperature
from .potential import LennardJones
from .system import ParticleSystem
from .thermostat import VelocityRescale


@dataclass
class StepObservables:
    """Observables recorded after each serial MD step."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float
    n_pairs: int

    @property
    def total_energy(self) -> float:
        """Total (potential + kinetic) energy."""
        return self.potential_energy + self.kinetic_energy


@dataclass
class SerialRunResult:
    """History of a serial run."""

    records: list[StepObservables] = field(default_factory=list)

    @property
    def total_energies(self) -> np.ndarray:
        """Array of total energies over the recorded steps."""
        return np.array([r.total_energy for r in self.records])

    @property
    def temperatures(self) -> np.ndarray:
        """Array of instantaneous temperatures over the recorded steps."""
        return np.array([r.temperature for r in self.records])


def build_system(config: MDConfig, rng: np.random.Generator) -> ParticleSystem:
    """Initial state per Section 3.2: lattice positions + MB velocities."""
    box = config.box_length
    positions = simple_cubic_positions(config.n_particles, box)
    velocities = maxwell_boltzmann_velocities(config.n_particles, config.temperature, rng)
    return ParticleSystem(positions, velocities, box)


def attractor_sites(config: MDConfig, rng: np.random.Generator) -> np.ndarray | None:
    """Nucleation sites for the accelerated-clustering field.

    ``None`` when the field is off or single-centred (the force field then
    defaults to the box centre); otherwise ``n_attractors`` seeded uniform
    sites.
    """
    if config.attraction <= 0.0 or config.n_attractors <= 1:
        return None
    return rng.uniform(0.0, config.box_length, size=(config.n_attractors, 3))


class SerialSimulation:
    """Single-process MD simulation assembled from an :class:`MDConfig`.

    This is the physics reference every parallel path is validated against.
    """

    def __init__(
        self,
        config: MDConfig,
        seed: int | None = None,
        backend: str = "kdtree",
        cells_per_side: int | None = None,
        system: ParticleSystem | None = None,
        shift_potential: bool = True,
        skin: float = 0.4,
        neighbor_max_reuse: int = 20,
        kernel: str | None = None,
    ) -> None:
        self.config = config
        rng = generator(seed)
        self.system = system if system is not None else build_system(config, rng)
        self.potential = LennardJones(cutoff=config.cutoff, shift=shift_potential)
        self.force_field = ForceField(
            self.potential,
            backend=backend,
            cells_per_side=cells_per_side,
            attraction=config.attraction,
            attractors=attractor_sites(config, rng),
            skin=skin,
            max_reuse=neighbor_max_reuse,
            kernel=kernel,
        )
        self.integrator = VelocityVerlet(config.dt)
        self.thermostat = VelocityRescale(config.temperature, config.rescale_interval)
        self.step_count = 0
        self._last_force: ForceResult = self.integrator.initialize(self.system, self.force_field)

    @property
    def neighbor_stats(self):
        """Pair-search counters (rebuilds/reuses) of the underlying force field."""
        return self.force_field.stats

    def observe(self) -> StepObservables:
        """Snapshot the current observables."""
        return StepObservables(
            step=self.step_count,
            potential_energy=self._last_force.potential_energy,
            kinetic_energy=kinetic_energy(self.system),
            temperature=temperature(self.system),
            n_pairs=self._last_force.n_pairs,
        )

    def step(self) -> StepObservables:
        """Advance one step (integration + thermostat), returning observables."""
        self._last_force = self.integrator.step(self.system, self.force_field)
        self.step_count += 1
        self.thermostat.maybe_rescale(self.system, self.step_count)
        return self.observe()

    def run(
        self,
        steps: int,
        callback: Callable[[StepObservables], None] | None = None,
        record_interval: int = 1,
    ) -> SerialRunResult:
        """Run ``steps`` steps, recording every ``record_interval``-th one."""
        result = SerialRunResult()
        for _ in range(steps):
            obs = self.step()
            if self.step_count % record_interval == 0:
                result.records.append(obs)
                if callback is not None:
                    callback(obs)
        return result
