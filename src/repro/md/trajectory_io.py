"""Trajectory I/O: extended-XYZ snapshots.

Lets adopters dump configurations for external visualisation (OVITO, VMD)
and reload them as :class:`ParticleSystem` states. The format is the common
extended-XYZ dialect: a count line, a comment line carrying the box via a
``Lattice="..."`` field, then one ``El x y z [vx vy vz]`` row per particle.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import GeometryError
from .system import ParticleSystem


def write_xyz(
    path: str | Path,
    system: ParticleSystem,
    element: str = "Ar",
    include_velocities: bool = True,
    append: bool = False,
    comment_extra: str = "",
) -> Path:
    """Write one snapshot in extended-XYZ format; returns the path.

    With ``append`` the snapshot is added as a new frame (multi-frame XYZ
    trajectories are just concatenated snapshots).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    box = system.box_length
    properties = "species:S:1:pos:R:3"
    if include_velocities:
        properties += ":vel:R:3"
    comment = (
        f'Lattice="{box} 0 0 0 {box} 0 0 0 {box}" Properties={properties}'
    )
    if comment_extra:
        comment += " " + comment_extra
    lines = [str(system.n), comment]
    if include_velocities:
        for p, v in zip(system.positions, system.velocities):
            lines.append(
                f"{element} {p[0]:.10g} {p[1]:.10g} {p[2]:.10g} "
                f"{v[0]:.10g} {v[1]:.10g} {v[2]:.10g}"
            )
    else:
        for p in system.positions:
            lines.append(f"{element} {p[0]:.10g} {p[1]:.10g} {p[2]:.10g}")
    mode = "a" if append else "w"
    with path.open(mode) as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def read_xyz(path: str | Path, frame: int = 0) -> ParticleSystem:
    """Read one frame of an (extended-)XYZ file into a :class:`ParticleSystem`.

    The box length is taken from the ``Lattice`` field (cubic lattices only);
    velocity columns are loaded when present, otherwise zeroed.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    cursor = 0
    for _ in range(frame + 1):
        if cursor >= len(lines):
            raise GeometryError(f"frame {frame} not present in {path}")
        try:
            count = int(lines[cursor].strip())
        except ValueError as exc:
            raise GeometryError(f"malformed XYZ count line: {lines[cursor]!r}") from exc
        header = cursor
        cursor += 2 + count
    comment = lines[header + 1]
    box = _parse_box(comment)
    rows = lines[header + 2: header + 2 + count]
    positions = np.empty((count, 3))
    velocities = np.zeros((count, 3))
    for i, row in enumerate(rows):
        fields = row.split()
        if len(fields) < 4:
            raise GeometryError(f"malformed XYZ row: {row!r}")
        positions[i] = [float(x) for x in fields[1:4]]
        if len(fields) >= 7:
            velocities[i] = [float(x) for x in fields[4:7]]
    return ParticleSystem(positions, velocities, box)


def _parse_box(comment: str) -> float:
    marker = 'Lattice="'
    start = comment.find(marker)
    if start < 0:
        raise GeometryError("XYZ comment line has no Lattice field")
    end = comment.find('"', start + len(marker))
    values = [float(x) for x in comment[start + len(marker): end].split()]
    if len(values) != 9:
        raise GeometryError(f"Lattice field must have 9 numbers, got {len(values)}")
    lattice = np.array(values).reshape(3, 3)
    diagonal = np.diag(lattice)
    if not np.allclose(lattice, np.diag(diagonal)) or not np.allclose(
        diagonal, diagonal[0]
    ):
        raise GeometryError("only cubic lattices are supported")
    return float(diagonal[0])
