"""Linked cell lists on a cubic grid (Section 2.2 of the paper).

The simulation cube is divided into ``nc^3`` cubic cells with edge length at
least the cut-off distance, so every interacting pair lies either in the same
cell or in one of its 26 neighbours. This module owns the geometry (position
to cell mapping, flat indices, periodic stencils) and the occupancy
structures the force kernels and the cost model consume.

Flat cell index convention: ``flat = (ix * nc + iy) * nc + iz``.

The occupancy builders share one :class:`CellSort` -- the assign/argsort/
bincount pipeline run once per position snapshot -- and the periodic stencil
tables (``neighbor_ids``) are computed once per offset and cached, since the
grid geometry never changes over a ``CellList``'s lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError

#: The 13 "half" stencil offsets: one representative of each +/- pair of the
#: 26 neighbour offsets, so iterating them visits every unordered cell pair
#: exactly once (for grids with nc >= 3).
HALF_STENCIL: tuple[tuple[int, int, int], ...] = tuple(
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
)

#: All 26 neighbour offsets plus the cell itself.
FULL_STENCIL: tuple[tuple[int, int, int], ...] = tuple(
    (dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
)


@dataclass(frozen=True)
class CellSort:
    """Particles sorted by cell: one snapshot's CSR occupancy structure.

    Attributes
    ----------
    flat:
        ``(N,)`` flat cell id of each particle.
    order:
        ``(N,)`` particle indices sorted by cell (stable).
    counts:
        ``(n_cells,)`` particles per cell.
    starts:
        ``(n_cells + 1,)`` CSR offsets: ``order[starts[c]:starts[c+1]]`` are
        the particles in flat cell ``c``.
    """

    flat: np.ndarray
    order: np.ndarray
    counts: np.ndarray
    starts: np.ndarray

    @property
    def n(self) -> int:
        """Number of particles in the snapshot."""
        return len(self.flat)


class CellList:
    """Geometry of a periodic cubic cell grid plus occupancy builders."""

    def __init__(self, box_length: float, cells_per_side: int) -> None:
        if box_length <= 0:
            raise GeometryError(f"box_length must be positive, got {box_length}")
        if cells_per_side <= 0:
            raise GeometryError(f"cells_per_side must be positive, got {cells_per_side}")
        self.box_length = float(box_length)
        self.cells_per_side = int(cells_per_side)
        self.cell_size = self.box_length / self.cells_per_side
        self.n_cells = self.cells_per_side**3
        # Stencil tables depend only on the (immutable) grid geometry; they are
        # computed lazily once per offset instead of 13x per pair search.
        self._all_coords: np.ndarray | None = None
        self._neighbor_ids_cache: dict[tuple[int, int, int], np.ndarray] = {}

    # -- index arithmetic -------------------------------------------------

    def cell_coords(self, positions: np.ndarray) -> np.ndarray:
        """Integer (ix, iy, iz) cell coordinates for wrapped positions."""
        coords = np.floor(positions / self.cell_size).astype(np.int64)
        # Positions exactly at L (possible through rounding) fold to the last cell.
        np.clip(coords, 0, self.cells_per_side - 1, out=coords)
        return coords

    def flatten(self, coords: np.ndarray) -> np.ndarray:
        """Flat cell ids from integer coordinates (no bounds wrapping)."""
        nc = self.cells_per_side
        coords = np.asarray(coords)
        return (coords[..., 0] * nc + coords[..., 1]) * nc + coords[..., 2]

    def unflatten(self, flat: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`flatten`: (..., 3) integer coordinates."""
        nc = self.cells_per_side
        flat = np.asarray(flat)
        return np.stack((flat // (nc * nc), (flat // nc) % nc, flat % nc), axis=-1)

    def assign(self, positions: np.ndarray) -> np.ndarray:
        """Flat cell id of each particle."""
        return self.flatten(self.cell_coords(positions))

    def _coords_table(self) -> np.ndarray:
        if self._all_coords is None:
            self._all_coords = self.unflatten(np.arange(self.n_cells))
        return self._all_coords

    def neighbor_ids(self, offset: tuple[int, int, int]) -> np.ndarray:
        """For every cell, the flat id of its neighbour at ``offset`` (periodic).

        Cached per offset: callers may treat the returned array as read-only.
        """
        key = (int(offset[0]), int(offset[1]), int(offset[2]))
        cached = self._neighbor_ids_cache.get(key)
        if cached is None:
            shifted = (self._coords_table() + np.asarray(key)) % self.cells_per_side
            cached = self.flatten(shifted)
            cached.setflags(write=False)
            self._neighbor_ids_cache[key] = cached
        return cached

    # -- occupancy structures ---------------------------------------------

    def counts(self, positions: np.ndarray) -> np.ndarray:
        """Particles per cell as an ``(nc, nc, nc)`` integer grid."""
        flat = self.assign(positions)
        grid = np.bincount(flat, minlength=self.n_cells)
        return grid.reshape((self.cells_per_side,) * 3)

    def cell_sort(self, positions: np.ndarray) -> CellSort:
        """Run the assign/argsort/bincount pipeline once for a snapshot.

        Every occupancy consumer (:meth:`sorted_particles`,
        :meth:`padded_occupancy`, the candidate generators in
        :mod:`repro.md.neighbors`) accepts the returned :class:`CellSort`, so
        one sort serves an arbitrary number of consumers per step.
        """
        flat = self.assign(positions)
        order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=self.n_cells)
        starts = np.zeros(self.n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        return CellSort(flat=flat, order=order, counts=counts, starts=starts)

    def sorted_particles(
        self, positions: np.ndarray, sort: CellSort | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Particle indices sorted by cell, plus per-cell start offsets.

        Returns ``(order, starts)`` where ``order[starts[c]:starts[c+1]]`` are
        the particles in flat cell ``c``. Pass a precomputed ``sort`` to reuse
        an existing :meth:`cell_sort` of the same snapshot.
        """
        if sort is None:
            sort = self.cell_sort(positions)
        return sort.order, sort.starts

    def padded_occupancy(
        self, positions: np.ndarray, sort: CellSort | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Occupancy matrix ``(n_cells, max_count)`` of particle ids, -1 padded.

        Returns ``(occupancy, counts_flat)``. The padded layout lets the
        legacy reference kernel generate all intra- and inter-cell candidate
        pairs with pure broadcasting; it degrades to O(n_cells * max_count^2)
        on skewed occupancies, which is why the CSR generator in
        :mod:`repro.md.neighbors` is the production path and the padded
        benchmark is retired behind ``--include-legacy``.
        """
        if sort is None:
            sort = self.cell_sort(positions)
        counts = sort.counts
        max_count = int(counts.max(initial=0))
        occupancy = np.full((self.n_cells, max(max_count, 1)), -1, dtype=np.int64)
        sorted_cells = sort.flat[sort.order]
        # Rank of each particle within its cell: position in the sorted run.
        ranks = np.arange(sort.n) - sort.starts[sorted_cells]
        occupancy[sorted_cells, ranks] = sort.order
        return occupancy, counts

    def neighbor_count_sum(self, counts_grid: np.ndarray) -> np.ndarray:
        """Sum of particle counts over each cell's 27-cell neighbourhood.

        This is the per-cell work estimator of the paper's force loop, which
        checks "every combination of molecules within each cell and its
        neighbouring 26 cells" (Section 3.2): the number of candidate
        distance evaluations for cell ``c`` is
        ``counts[c] * neighbor_count_sum(counts)[c]`` (self pairs double
        counted consistently across cells, which is what the real kernel does
        when each PE computes its own cells' forces from scratch).
        """
        if counts_grid.shape != (self.cells_per_side,) * 3:
            raise GeometryError(
                f"counts grid shape {counts_grid.shape} does not match "
                f"({self.cells_per_side},)*3"
            )
        total = np.zeros_like(counts_grid)
        for dx, dy, dz in FULL_STENCIL:
            total += np.roll(counts_grid, shift=(dx, dy, dz), axis=(0, 1, 2))
        return total
