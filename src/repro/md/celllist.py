"""Linked cell lists on a cubic grid (Section 2.2 of the paper).

The simulation cube is divided into ``nc^3`` cubic cells with edge length at
least the cut-off distance, so every interacting pair lies either in the same
cell or in one of its 26 neighbours. This module owns the geometry (position
to cell mapping, flat indices, periodic stencils) and the occupancy
structures the force kernels and the cost model consume.

Flat cell index convention: ``flat = (ix * nc + iy) * nc + iz``.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError

#: The 13 "half" stencil offsets: one representative of each +/- pair of the
#: 26 neighbour offsets, so iterating them visits every unordered cell pair
#: exactly once (for grids with nc >= 3).
HALF_STENCIL: tuple[tuple[int, int, int], ...] = tuple(
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
)

#: All 26 neighbour offsets plus the cell itself.
FULL_STENCIL: tuple[tuple[int, int, int], ...] = tuple(
    (dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
)


class CellList:
    """Geometry of a periodic cubic cell grid plus occupancy builders."""

    def __init__(self, box_length: float, cells_per_side: int) -> None:
        if box_length <= 0:
            raise GeometryError(f"box_length must be positive, got {box_length}")
        if cells_per_side <= 0:
            raise GeometryError(f"cells_per_side must be positive, got {cells_per_side}")
        self.box_length = float(box_length)
        self.cells_per_side = int(cells_per_side)
        self.cell_size = self.box_length / self.cells_per_side
        self.n_cells = self.cells_per_side**3

    # -- index arithmetic -------------------------------------------------

    def cell_coords(self, positions: np.ndarray) -> np.ndarray:
        """Integer (ix, iy, iz) cell coordinates for wrapped positions."""
        coords = np.floor(positions / self.cell_size).astype(np.int64)
        # Positions exactly at L (possible through rounding) fold to the last cell.
        np.clip(coords, 0, self.cells_per_side - 1, out=coords)
        return coords

    def flatten(self, coords: np.ndarray) -> np.ndarray:
        """Flat cell ids from integer coordinates (no bounds wrapping)."""
        nc = self.cells_per_side
        coords = np.asarray(coords)
        return (coords[..., 0] * nc + coords[..., 1]) * nc + coords[..., 2]

    def unflatten(self, flat: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`flatten`: (..., 3) integer coordinates."""
        nc = self.cells_per_side
        flat = np.asarray(flat)
        return np.stack((flat // (nc * nc), (flat // nc) % nc, flat % nc), axis=-1)

    def assign(self, positions: np.ndarray) -> np.ndarray:
        """Flat cell id of each particle."""
        return self.flatten(self.cell_coords(positions))

    def neighbor_ids(self, offset: tuple[int, int, int]) -> np.ndarray:
        """For every cell, the flat id of its neighbour at ``offset`` (periodic)."""
        nc = self.cells_per_side
        all_coords = self.unflatten(np.arange(self.n_cells))
        shifted = (all_coords + np.asarray(offset)) % nc
        return self.flatten(shifted)

    # -- occupancy structures ---------------------------------------------

    def counts(self, positions: np.ndarray) -> np.ndarray:
        """Particles per cell as an ``(nc, nc, nc)`` integer grid."""
        flat = self.assign(positions)
        grid = np.bincount(flat, minlength=self.n_cells)
        return grid.reshape((self.cells_per_side,) * 3)

    def sorted_particles(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Particle indices sorted by cell, plus per-cell start offsets.

        Returns ``(order, starts)`` where ``order[starts[c]:starts[c+1]]`` are
        the particles in flat cell ``c``.
        """
        flat = self.assign(positions)
        order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=self.n_cells)
        starts = np.zeros(self.n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        return order, starts

    def padded_occupancy(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Occupancy matrix ``(n_cells, max_count)`` of particle ids, -1 padded.

        Returns ``(occupancy, counts_flat)``. The padded layout lets the
        reference force kernel generate all intra- and inter-cell candidate
        pairs with pure broadcasting.
        """
        flat = self.assign(positions)
        counts = np.bincount(flat, minlength=self.n_cells)
        max_count = int(counts.max(initial=0))
        occupancy = np.full((self.n_cells, max(max_count, 1)), -1, dtype=np.int64)
        order = np.argsort(flat, kind="stable")
        sorted_cells = flat[order]
        # Rank of each particle within its cell: position in the sorted run.
        starts = np.zeros(self.n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        ranks = np.arange(len(flat)) - starts[sorted_cells]
        occupancy[sorted_cells, ranks] = order
        return occupancy, counts

    def neighbor_count_sum(self, counts_grid: np.ndarray) -> np.ndarray:
        """Sum of particle counts over each cell's 27-cell neighbourhood.

        This is the per-cell work estimator of the paper's force loop, which
        checks "every combination of molecules within each cell and its
        neighbouring 26 cells" (Section 3.2): the number of candidate
        distance evaluations for cell ``c`` is
        ``counts[c] * neighbor_count_sum(counts)[c]`` (self pairs double
        counted consistently across cells, which is what the real kernel does
        when each PE computes its own cells' forces from scratch).
        """
        if counts_grid.shape != (self.cells_per_side,) * 3:
            raise GeometryError(
                f"counts grid shape {counts_grid.shape} does not match "
                f"({self.cells_per_side},)*3"
            )
        total = np.zeros_like(counts_grid)
        for dx, dy, dz in FULL_STENCIL:
            total += np.roll(counts_grid, shift=(dx, dy, dz), axis=(0, 1, 2))
        return total
