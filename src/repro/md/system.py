"""Structure-of-arrays particle container."""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError, SimulationError
from .pbc import wrap_positions


class ParticleSystem:
    """Positions, velocities and forces of ``N`` particles in a cubic box.

    Arrays are C-contiguous ``float64`` of shape ``(N, 3)`` (structure of
    arrays), the layout the vectorised kernels expect. Positions are kept
    wrapped into ``[0, L)``.
    """

    __slots__ = ("positions", "velocities", "forces", "box_length")

    def __init__(
        self,
        positions: np.ndarray,
        velocities: np.ndarray | None = None,
        box_length: float | None = None,
        forces: np.ndarray | None = None,
    ) -> None:
        positions = np.ascontiguousarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise GeometryError(f"positions must have shape (N, 3), got {positions.shape}")
        if box_length is None or box_length <= 0:
            raise GeometryError(f"box_length must be positive, got {box_length}")
        self.box_length = float(box_length)
        self.positions = wrap_positions(positions, self.box_length)

        if velocities is None:
            velocities = np.zeros_like(self.positions)
        velocities = np.ascontiguousarray(velocities, dtype=np.float64)
        if velocities.shape != self.positions.shape:
            raise GeometryError(
                f"velocities shape {velocities.shape} != positions shape {self.positions.shape}"
            )
        self.velocities = velocities

        if forces is None:
            forces = np.zeros_like(self.positions)
        forces = np.ascontiguousarray(forces, dtype=np.float64)
        if forces.shape != self.positions.shape:
            raise GeometryError(
                f"forces shape {forces.shape} != positions shape {self.positions.shape}"
            )
        self.forces = forces

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.positions.shape[0]

    def copy(self) -> "ParticleSystem":
        """Deep copy (independent arrays)."""
        return ParticleSystem(
            self.positions.copy(),
            self.velocities.copy(),
            self.box_length,
            self.forces.copy(),
        )

    def validate(self) -> None:
        """Raise :class:`SimulationError` if the state is non-physical."""
        if not np.all(np.isfinite(self.positions)):
            raise SimulationError("non-finite positions")
        if not np.all(np.isfinite(self.velocities)):
            raise SimulationError("non-finite velocities")
        if not np.all(np.isfinite(self.forces)):
            raise SimulationError("non-finite forces")
        if np.any(self.positions < 0) or np.any(self.positions >= self.box_length):
            raise SimulationError("positions escaped the primary box")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParticleSystem(n={self.n}, box_length={self.box_length:.4f})"
