"""Periodic boundary conditions for a cubic box.

The paper's simulation space is a cube with periodic boundaries
(Section 3.2). All positions live in the half-open interval ``[0, L)`` along
each axis; displacements follow the minimum-image convention, which is valid
because configurations always keep ``L >= 2 * r_c``.
"""

from __future__ import annotations

import numpy as np


def wrap_positions(positions: np.ndarray, box_length: float) -> np.ndarray:
    """Map ``positions`` into the primary box ``[0, L)^3``.

    Returns a new array; the input is not modified. Handles arbitrarily
    distant images via the modulo operation.
    """
    wrapped = np.mod(positions, box_length)
    # ``mod`` can return exactly L for tiny negative inputs due to rounding;
    # fold those back onto 0 so cell indexing never sees an out-of-range value.
    wrapped[wrapped >= box_length] = 0.0
    return wrapped


def wrap_positions_inplace(positions: np.ndarray, box_length: float) -> None:
    """In-place variant of :func:`wrap_positions` for hot loops."""
    np.mod(positions, box_length, out=positions)
    positions[positions >= box_length] = 0.0


def minimum_image(displacements: np.ndarray, box_length: float) -> np.ndarray:
    """Apply the minimum-image convention to raw displacement vectors.

    Each component is folded into ``[-L/2, L/2)``. Works on any array whose
    last axis holds vector components.
    """
    return displacements - box_length * np.round(displacements / box_length)


def minimum_image_inplace(displacements: np.ndarray, box_length: float) -> None:
    """In-place variant of :func:`minimum_image` (no temporary copies)."""
    inv = 1.0 / box_length
    shift = np.round(displacements * inv)
    shift *= box_length
    displacements -= shift


def pair_distance(
    a: np.ndarray, b: np.ndarray, box_length: float
) -> np.ndarray:
    """Minimum-image distances between matching rows of ``a`` and ``b``."""
    delta = minimum_image(np.asarray(a, dtype=float) - np.asarray(b, dtype=float), box_length)
    return np.sqrt(np.sum(delta * delta, axis=-1))
