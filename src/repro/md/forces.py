"""Force evaluation: LJ pair forces plus the optional central attraction."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..obs.profiler import scope
from .celllist import CellList
from .kernels import (  # noqa: F401 -- re-exported; historically defined here
    ForceResult,
    create_kernel,
    forces_from_pairs,
    resolve_kernel_name,
)
from .neighbors import NeighborStats, VerletList, pairs_celllist, pairs_kdtree
from .pbc import minimum_image
from .potential import LennardJones
from .system import ParticleSystem

#: Pair-search backends understood by :class:`ForceField`.
BACKENDS = ("kdtree", "cells", "verlet")


def apply_attraction(
    positions: np.ndarray,
    forces: np.ndarray,
    box_length: float,
    attraction: float,
    attractors: np.ndarray | None,
) -> tuple[np.ndarray, float]:
    """Add the harmonic pull toward the nearest nucleation site.

    Returns the new force array (a copy; the input is not mutated) and the
    attraction's potential-energy contribution. ``attractors=None`` means a
    single site at the box centre.
    """
    sites = (
        attractors
        if attractors is not None
        else np.full((1, 3), box_length / 2.0)
    )
    # Pull toward the nearest nucleation site (minimum image).
    delta_all = minimum_image(
        positions[:, None, :] - sites[None, :, :], box_length
    )
    dist_sq = np.einsum("ikj,ikj->ik", delta_all, delta_all)
    nearest = np.argmin(dist_sq, axis=1)
    delta = delta_all[np.arange(len(positions)), nearest]
    new_forces = forces - attraction * delta
    extra_energy = 0.5 * attraction * float(np.sum(delta * delta))
    return new_forces, extra_energy


def check_finite_forces(forces: np.ndarray) -> None:
    """Raise :class:`SimulationError` if any force component is non-finite."""
    if not np.all(np.isfinite(forces)):
        bad = int(np.count_nonzero(~np.isfinite(forces).all(axis=1)))
        raise SimulationError(
            f"non-finite forces on {bad} particle(s): overlapping positions "
            "or a diverged integration (reduce dt or check initial spacing)"
        )


class ForceField:
    """LJ force field with interchangeable pair-search backends.

    Parameters
    ----------
    potential:
        The pair potential.
    backend:
        ``"kdtree"`` (scipy, fast default), ``"cells"`` (linked-cell
        reference kernel) or ``"verlet"`` (cached neighbour list with a skin
        radius, rebuilt only when a particle moves farther than ``skin/2``).
    cells_per_side:
        Required by the ``"cells"`` backend: grid resolution (cell edge must
        be at least the cut-off).
    skin:
        Verlet-list search margin beyond the cut-off (``"verlet"`` only).
    max_reuse:
        Cap on consecutive Verlet-list reuses before a forced rebuild
        (0 = displacement criterion only).
    cell_list:
        Optional pre-built :class:`CellList` to share with the caller (the
        parallel runner already owns one); must match the system's box.
    attraction:
        Spring constant of an optional harmonic pull toward nucleation sites,
        used by scaled workloads to accelerate the supercooled gas's natural
        clustering (see DESIGN.md). 0 disables it.
    attractors:
        ``(K, 3)`` nucleation sites; each particle is pulled toward its
        nearest site (minimum image). ``None`` with a positive ``attraction``
        means a single site at the box centre.
    kernel:
        Force-kernel tier (see :mod:`repro.md.kernels`): ``"numpy"``,
        ``"half"``, ``"jit"`` or ``"auto"``. ``None`` defers to the
        ``REPRO_KERNEL`` environment variable (default ``"numpy"``). The
        resolved name is available as :attr:`kernel_name`.
    """

    def __init__(
        self,
        potential: LennardJones,
        backend: str = "kdtree",
        cells_per_side: int | None = None,
        attraction: float = 0.0,
        attractors: np.ndarray | None = None,
        skin: float = 0.4,
        max_reuse: int = 20,
        cell_list: CellList | None = None,
        kernel: str | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(f"unknown backend {backend!r}")
        if backend == "cells" and cells_per_side is None and cell_list is None:
            raise ConfigurationError("the 'cells' backend requires cells_per_side")
        if attraction < 0:
            raise ConfigurationError(f"attraction must be non-negative, got {attraction}")
        if skin <= 0:
            raise ConfigurationError(f"skin must be positive, got {skin}")
        if max_reuse < 0:
            raise ConfigurationError(f"max_reuse must be non-negative, got {max_reuse}")
        self.potential = potential
        self.backend = backend
        self.cells_per_side = (
            cell_list.cells_per_side if cells_per_side is None and cell_list is not None
            else cells_per_side
        )
        self.skin = float(skin)
        self.max_reuse = int(max_reuse)
        self.attraction = float(attraction)
        if attractors is not None:
            attractors = np.ascontiguousarray(attractors, dtype=np.float64)
            if attractors.ndim != 2 or attractors.shape[1] != 3 or len(attractors) == 0:
                raise ConfigurationError(
                    f"attractors must have shape (K, 3) with K >= 1, got {attractors.shape}"
                )
        self.attractors = attractors
        #: Resolved kernel-tier name ("numpy", "half" or "jit").
        self.kernel_name = resolve_kernel_name(kernel)
        self._kernel = create_kernel(self.kernel_name)
        #: Pair-search instrumentation (rebuilds, reuses, candidate counts).
        self.stats = NeighborStats()
        # The search structures are box-dependent; build lazily on first use
        # (and exactly once -- rebuilding a CellList per call was the seed's
        # hidden per-step overhead), or adopt the caller's shared CellList.
        self._cell_list: CellList | None = cell_list
        self._verlet: VerletList | None = None

    def _get_cell_list(self, box_length: float) -> CellList:
        if self._cell_list is None:
            self._cell_list = CellList(box_length, int(self.cells_per_side))
        elif abs(self._cell_list.box_length - box_length) > 1e-9:
            raise ConfigurationError(
                f"cell list box {self._cell_list.box_length} != system box {box_length}"
            )
        return self._cell_list

    def _get_verlet(self, box_length: float) -> VerletList:
        if self._verlet is None:
            self._verlet = VerletList(
                box_length,
                self.potential.cutoff,
                self.skin,
                max_reuse=self.max_reuse,
                stats=self.stats,
            )
        elif abs(self._verlet.box_length - box_length) > 1e-9:
            raise ConfigurationError(
                f"Verlet list box {self._verlet.box_length} != system box {box_length}"
            )
        return self._verlet

    @property
    def verlet_list(self) -> VerletList | None:
        """The backing Verlet list (``None`` until first use / other backends)."""
        return self._verlet

    def invalidate_cache(self) -> None:
        """Drop any cached neighbour structure (next evaluation rebuilds)."""
        if self._verlet is not None:
            self._verlet.invalidate()

    def find_pairs(self, system: ParticleSystem) -> np.ndarray:
        """Interacting pairs (within the true cut-off) under the configured backend."""
        if self.backend == "kdtree":
            pairs = pairs_kdtree(system.positions, system.box_length, self.potential.cutoff)
            self.stats.record_build(len(pairs))
            return pairs
        if self.backend == "verlet":
            return self._get_verlet(system.box_length).pairs(system.positions)
        cell_list = self._get_cell_list(system.box_length)
        pairs = pairs_celllist(system.positions, cell_list, self.potential.cutoff)
        self.stats.record_build(len(pairs))
        return pairs

    def _candidate_pairs(self, system: ParticleSystem) -> np.ndarray:
        """Pair list for the force kernel (may exceed the cut-off; filtered there)."""
        if self.backend == "verlet":
            return self._get_verlet(system.box_length).candidates(system.positions)
        return self.find_pairs(system)

    def compute(self, system: ParticleSystem) -> ForceResult:
        """Evaluate forces, writing them into ``system.forces`` as well."""
        pairs = self._candidate_pairs(system)
        with scope("force.accumulate"), scope(f"kernel.{self.kernel_name}"):
            result = self._kernel.evaluate(
                system.positions, pairs, system.box_length, self.potential, system.n
            )
        self.stats.record_evaluation(len(pairs), result.n_pairs)
        if self.kernel_name != "numpy":
            self.stats.record_half_list(len(pairs), result.n_pairs)
        forces = result.forces
        potential_energy = result.potential_energy
        if self.attraction > 0.0:
            forces, extra = apply_attraction(
                system.positions, forces, system.box_length,
                self.attraction, self.attractors,
            )
            potential_energy += extra
        check_finite_forces(forces)
        system.forces[...] = forces
        return ForceResult(forces, potential_energy, result.virial, result.n_pairs)

    # -- checkpointing -------------------------------------------------------

    def cache_state(self) -> dict:
        """Snapshot of the pair-search cache and counters.

        The Verlet candidate list is part of this state on purpose: its pair
        *order* determines the floating-point accumulation order in
        :func:`forces_from_pairs`, so restoring it (rather than rebuilding)
        is what makes a resumed run bit-identical to an uninterrupted one.
        """
        return {
            "stats": self.stats.state_dict(),
            "verlet": self._verlet.state_dict() if self._verlet is not None else None,
            "kernel": self.kernel_name,
        }

    def restore_cache_state(self, state: dict, box_length: float) -> None:
        """Restore a snapshot taken by :meth:`cache_state`."""
        self.stats.load_state_dict(state["stats"])
        if state.get("verlet") is not None and self.backend == "verlet":
            self._get_verlet(box_length).load_state_dict(state["verlet"])
