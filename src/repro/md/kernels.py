"""Pluggable pair/force kernel tiers behind the :class:`ForceField` seam.

Three registered backends share one contract -- given a candidate pair list
(possibly beyond the cut-off), produce the LJ forces, potential energy and
virial:

``numpy``
    The full-list reference: one monolithic vectorised pass over the whole
    candidate list (:func:`forces_from_pairs`, historically in ``forces.py``).
``half``
    Cache-blocked half-neighbour-list kernel. Candidates are walked in
    blocks of :data:`BLOCK_PAIRS` pairs so the per-block working set
    (index gathers, displacement rows, ``r^2``) stays L2-resident; each
    pair is evaluated exactly once and its force is scattered to both rows
    (Newton's third law) through the *same* ``np.bincount`` chain as the
    reference. Because the surviving pairs are re-assembled in original
    candidate order before any reduction runs, the result is **bit-identical**
    to the ``numpy`` tier for every candidate list (see DESIGN.md section 11
    for why a sorted-segment ``np.add.reduceat`` cannot offer this).
``jit``
    numba-compiled loop over the same half-list. The elementwise pair math
    mirrors the reference op-for-op (same expression order, IEEE-754
    correctly-rounded primitives) and the reductions reuse the reference's
    NumPy code path, so results are designed to match bit-for-bit; the
    documented contract is agreement within 1e-12 relative tolerance.
    numba is an *optional* dependency: requesting ``jit`` without it raises
    :class:`~repro.errors.ConfigurationError`, while ``auto`` silently
    falls back to ``half``.

Register additional backends with :func:`register_kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import KERNEL_NAMES, resolve_strategy_name
from ..errors import ConfigurationError
from .pbc import minimum_image_inplace
from .potential import LennardJones

#: Pairs per evaluation block of the half-list kernel. 32768 pairs keep the
#: per-block arrays (two int64 index gathers, a (B, 3) displacement block and
#: its squared norms, ~1.5 MB total) inside a typical L2 cache; measured on
#: the clustered benchmark config this beats the monolithic reference pass by
#: ~1.3x while staying bit-identical.
BLOCK_PAIRS = 32768

#: Kernel names after ``auto`` resolution (what :func:`create_kernel` accepts).
RESOLVED_KERNEL_NAMES = ("numpy", "half", "jit")


@dataclass(frozen=True)
class ForceResult:
    """Output of one force evaluation.

    Attributes
    ----------
    forces:
        ``(N, 3)`` force array.
    potential_energy:
        Total potential energy (pairs + external attraction).
    virial:
        Pair virial ``sum(f_ij . r_ij)`` (for the pressure).
    n_pairs:
        Number of interacting pairs within the cut-off.
    """

    forces: np.ndarray
    potential_energy: float
    virial: float
    n_pairs: int


def forces_from_pairs(
    positions: np.ndarray,
    pairs: np.ndarray,
    box_length: float,
    potential: LennardJones,
    n_particles: int | None = None,
) -> ForceResult:
    """Accumulate LJ forces/energy/virial for an explicit pair list.

    ``pairs`` may contain pairs beyond the cut-off (candidate lists); they are
    filtered here. Newton's third law is applied, so each unordered pair must
    appear exactly once.

    This is the ``numpy`` kernel tier and the bit-level reference every other
    tier is held to: its candidate traversal order fixes the floating-point
    accumulation order of the ``bincount`` force reduction.
    """
    n = len(positions) if n_particles is None else n_particles
    forces = np.zeros((n, 3), dtype=np.float64)
    if len(pairs) == 0:
        return ForceResult(forces, 0.0, 0.0, 0)

    i = pairs[:, 0]
    j = pairs[:, 1]
    delta = positions[i] - positions[j]
    minimum_image_inplace(delta, box_length)
    r_sq = np.einsum("ij,ij->i", delta, delta)
    mask = r_sq < potential.cutoff_sq
    if not mask.all():
        i, j, delta, r_sq = i[mask], j[mask], delta[mask], r_sq[mask]
    if len(i) == 0:
        return ForceResult(forces, 0.0, 0.0, 0)

    energies, f_over_r = potential.energy_force_sq(r_sq)
    fvec = delta * f_over_r[:, None]
    for axis in range(3):
        forces[:, axis] += np.bincount(i, weights=fvec[:, axis], minlength=n)
        forces[:, axis] -= np.bincount(j, weights=fvec[:, axis], minlength=n)
    potential_energy = float(energies.sum())
    virial = float(np.dot(f_over_r, r_sq))
    return ForceResult(forces, potential_energy, virial, int(len(i)))


# -- numba availability --------------------------------------------------------

_NUMBA_AVAILABLE: bool | None = None


def numba_available() -> bool:
    """Whether numba imports cleanly (cached; monkeypatch ``_NUMBA_AVAILABLE``)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def default_kernel() -> str:
    """Session default kernel: the ``REPRO_KERNEL`` env var, else ``"numpy"``."""
    return resolve_strategy_name(
        None,
        env_var="REPRO_KERNEL",
        choices=KERNEL_NAMES,
        label="kernel",
        env_default="numpy",
    )


def resolve_kernel_name(requested: str | None) -> str:
    """Resolve a requested kernel (or ``None``) to a concrete backend name.

    ``None`` defers to :func:`default_kernel`; ``"auto"`` picks ``"jit"``
    when numba is importable and silently falls back to ``"half"`` otherwise;
    an explicit ``"jit"`` without numba is a configuration error. Shares the
    precedence rule (explicit > env var > default) with every other strategy
    knob through :func:`repro.config.resolve_strategy_name`.
    """
    name = resolve_strategy_name(
        requested,
        env_var="REPRO_KERNEL",
        choices=KERNEL_NAMES,
        label="kernel",
        env_default="numpy",
    )
    if name == "auto":
        return "jit" if numba_available() else "half"
    if name == "jit" and not numba_available():
        raise ConfigurationError(
            "kernel 'jit' requires numba, which is not installed in this "
            "environment: install it (pip install numba) or use --kernel auto "
            "to fall back to the bit-identical 'half' kernel silently"
        )
    return name


# -- backend implementations ---------------------------------------------------


class KernelBackend:
    """Contract shared by all force-kernel tiers.

    Subclasses implement :meth:`evaluate` (full reduction to a
    :class:`ForceResult`) and :meth:`pair_terms` (the filtered per-pair
    quantities, for callers that apply their own weighting, e.g. the
    decomposed ghost-cell pass in :mod:`repro.core.ddm`). Both must preserve
    the *original candidate order* of surviving pairs -- that order is the
    floating-point accumulation order, hence the reproducibility contract.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def evaluate(
        self,
        positions: np.ndarray,
        candidates: np.ndarray,
        box_length: float,
        potential: LennardJones,
        n_particles: int | None = None,
    ) -> ForceResult:
        """Reduce a candidate pair list to forces / energy / virial."""
        raise NotImplementedError

    def pair_terms(
        self,
        positions: np.ndarray,
        candidates: np.ndarray,
        box_length: float,
        potential: LennardJones,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair quantities of the surviving (within-cut-off) candidates.

        Returns ``(i, j, fvec, energies, f_over_r, r_sq)`` filtered to pairs
        inside the cut-off, in original candidate order.
        """
        raise NotImplementedError

    def accepted_pairs(
        self,
        positions: np.ndarray,
        candidates: np.ndarray,
        box_length: float,
        potential: LennardJones,
    ) -> np.ndarray:
        """The ``(K, 2)`` surviving pair list (for pair-set equality checks)."""
        i, j, _, _, _, _ = self.pair_terms(positions, candidates, box_length, potential)
        return np.column_stack([i, j])


class NumpyKernel(KernelBackend):
    """Tier 1: the monolithic full-list reference pass."""

    name = "numpy"

    def evaluate(self, positions, candidates, box_length, potential, n_particles=None):
        return forces_from_pairs(positions, candidates, box_length, potential, n_particles)

    def pair_terms(self, positions, candidates, box_length, potential):
        i = candidates[:, 0]
        j = candidates[:, 1]
        delta = positions[i] - positions[j]
        minimum_image_inplace(delta, box_length)
        r_sq = np.einsum("ij,ij->i", delta, delta)
        mask = r_sq < potential.cutoff_sq
        if not mask.all():
            i, j, delta, r_sq = i[mask], j[mask], delta[mask], r_sq[mask]
        energies, f_over_r = potential.energy_force_sq(r_sq)
        fvec = delta * f_over_r[:, None]
        return i, j, fvec, energies, f_over_r, r_sq


class HalfListKernel(KernelBackend):
    """Tier 2: cache-blocked half-list evaluation, bit-identical to tier 1.

    The candidate list is processed in :attr:`block_pairs`-sized blocks in
    original order; each block gathers its positions, applies the minimum
    image, squares distances and drops out-of-range pairs exactly as the
    reference does. The surviving per-block slices are then concatenated --
    still in original candidate order -- and fed through the *identical*
    potential call and ``bincount`` Newton-3 scatter, so every intermediate
    array holds the same values in the same order as the reference and the
    reduction results match bit-for-bit. Blocking bounds the working set to
    the L2 cache instead of streaming multi-MB temporaries through DRAM.
    """

    name = "half"

    def __init__(self, block_pairs: int = BLOCK_PAIRS) -> None:
        if block_pairs <= 0:
            raise ConfigurationError(f"block_pairs must be positive, got {block_pairs}")
        self.block_pairs = int(block_pairs)

    def _blocked_terms(self, positions, candidates, box_length, potential):
        """Filtered (i, j, delta, r_sq) in original candidate order, blockwise."""
        cutoff_sq = potential.cutoff_sq
        i_all = candidates[:, 0]
        j_all = candidates[:, 1]
        chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for start in range(0, len(candidates), self.block_pairs):
            end = min(start + self.block_pairs, len(candidates))
            i = i_all[start:end]
            j = j_all[start:end]
            delta = positions[i] - positions[j]
            minimum_image_inplace(delta, box_length)
            r_sq = np.einsum("ij,ij->i", delta, delta)
            within = r_sq < cutoff_sq
            if not within.all():
                i, j, delta, r_sq = i[within], j[within], delta[within], r_sq[within]
            if len(i):
                chunks.append((i, j, delta, r_sq))
        if not chunks:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i, np.empty((0, 3)), np.empty(0)
        i = np.concatenate([c[0] for c in chunks])
        j = np.concatenate([c[1] for c in chunks])
        delta = np.concatenate([c[2] for c in chunks])
        r_sq = np.concatenate([c[3] for c in chunks])
        return i, j, delta, r_sq

    def evaluate(self, positions, candidates, box_length, potential, n_particles=None):
        n = len(positions) if n_particles is None else n_particles
        forces = np.zeros((n, 3), dtype=np.float64)
        if len(candidates) == 0:
            return ForceResult(forces, 0.0, 0.0, 0)
        i, j, delta, r_sq = self._blocked_terms(positions, candidates, box_length, potential)
        if len(i) == 0:
            return ForceResult(forces, 0.0, 0.0, 0)
        energies, f_over_r = potential.energy_force_sq(r_sq)
        fvec = delta * f_over_r[:, None]
        for axis in range(3):
            forces[:, axis] += np.bincount(i, weights=fvec[:, axis], minlength=n)
            forces[:, axis] -= np.bincount(j, weights=fvec[:, axis], minlength=n)
        return ForceResult(
            forces, float(energies.sum()), float(np.dot(f_over_r, r_sq)), int(len(i))
        )

    def pair_terms(self, positions, candidates, box_length, potential):
        i, j, delta, r_sq = self._blocked_terms(positions, candidates, box_length, potential)
        energies, f_over_r = potential.energy_force_sq(r_sq)
        fvec = delta * f_over_r[:, None]
        return i, j, fvec, energies, f_over_r, r_sq


_JIT_PAIR_TERMS = None


def _compiled_pair_terms():
    """Compile (once) the numba pair-term loop; raises if numba is missing."""
    global _JIT_PAIR_TERMS
    if _JIT_PAIR_TERMS is not None:
        return _JIT_PAIR_TERMS
    import numba

    @numba.njit(cache=False, fastmath=False)
    def pair_terms_loop(  # pragma: no cover - requires numba
        positions, rows, cols, box_length, sigma_sq, epsilon, cutoff_sq, v_shift,
        out_i, out_j, out_fvec, out_energy, out_f_over_r, out_r_sq,
    ):
        # Mirrors the reference tier op-for-op: minimum image via
        # round-half-even, r^2 as ((dx*dx + dy*dy) + dz*dz) matching the
        # einsum contraction, and the exact LJ expression order of
        # LennardJones.energy_force_sq. fastmath stays OFF so every
        # primitive is IEEE-754 correctly rounded.
        inv_box = 1.0 / box_length
        written = 0
        for k in range(rows.shape[0]):
            i = rows[k]
            j = cols[k]
            dx = positions[i, 0] - positions[j, 0]
            dy = positions[i, 1] - positions[j, 1]
            dz = positions[i, 2] - positions[j, 2]
            dx -= np.rint(dx * inv_box) * box_length
            dy -= np.rint(dy * inv_box) * box_length
            dz -= np.rint(dz * inv_box) * box_length
            r_sq = (dx * dx + dy * dy) + dz * dz
            if r_sq < cutoff_sq:
                inv_r2 = sigma_sq / r_sq
                sr6 = inv_r2 * inv_r2 * inv_r2
                sr12 = sr6 * sr6
                energy = 4.0 * epsilon * (sr12 - sr6) - v_shift
                f_over_r = 24.0 * epsilon * (2.0 * sr12 - sr6) / r_sq
                out_i[written] = i
                out_j[written] = j
                out_fvec[written, 0] = dx * f_over_r
                out_fvec[written, 1] = dy * f_over_r
                out_fvec[written, 2] = dz * f_over_r
                out_energy[written] = energy
                out_f_over_r[written] = f_over_r
                out_r_sq[written] = r_sq
                written += 1
        return written

    _JIT_PAIR_TERMS = pair_terms_loop
    return _JIT_PAIR_TERMS


class JitKernel(KernelBackend):
    """Tier 3: numba-compiled half-list loop (optional dependency).

    The compiled loop walks the candidate list in original order, evaluates
    each surviving pair once and writes its terms *compacted but order
    preserving* -- exactly the arrays the reference obtains by boolean
    masking. The Newton-3 scatter and the energy/virial reductions then run
    through the same NumPy code path as the other tiers, so any deviation
    from the reference can only come from elementwise rounding; with
    ``fastmath`` disabled the loop mirrors the reference IEEE op order and
    is designed to be bit-identical (contract: <= 1e-12 relative).
    """

    name = "jit"

    def __init__(self) -> None:
        if not numba_available():
            raise ConfigurationError(
                "kernel 'jit' requires numba, which is not installed in this "
                "environment: install it (pip install numba) or use --kernel "
                "auto to fall back to the bit-identical 'half' kernel silently"
            )
        self._loop = _compiled_pair_terms()

    def _compiled_terms(self, positions, candidates, box_length, potential):
        n_cand = len(candidates)
        out_i = np.empty(n_cand, dtype=np.int64)
        out_j = np.empty(n_cand, dtype=np.int64)
        out_fvec = np.empty((n_cand, 3), dtype=np.float64)
        out_energy = np.empty(n_cand, dtype=np.float64)
        out_f_over_r = np.empty(n_cand, dtype=np.float64)
        out_r_sq = np.empty(n_cand, dtype=np.float64)
        v_shift = potential._v_cut if potential.shift else 0.0
        written = self._loop(
            positions,
            np.ascontiguousarray(candidates[:, 0]),
            np.ascontiguousarray(candidates[:, 1]),
            float(box_length),
            float(potential.sigma * potential.sigma),
            float(potential.epsilon),
            float(potential.cutoff_sq),
            float(v_shift),
            out_i, out_j, out_fvec, out_energy, out_f_over_r, out_r_sq,
        )
        return (
            out_i[:written], out_j[:written], out_fvec[:written],
            out_energy[:written], out_f_over_r[:written], out_r_sq[:written],
        )

    def evaluate(self, positions, candidates, box_length, potential, n_particles=None):
        n = len(positions) if n_particles is None else n_particles
        forces = np.zeros((n, 3), dtype=np.float64)
        if len(candidates) == 0:
            return ForceResult(forces, 0.0, 0.0, 0)
        i, j, fvec, energies, f_over_r, r_sq = self._compiled_terms(
            positions, candidates, box_length, potential
        )
        if len(i) == 0:
            return ForceResult(forces, 0.0, 0.0, 0)
        for axis in range(3):
            forces[:, axis] += np.bincount(i, weights=fvec[:, axis], minlength=n)
            forces[:, axis] -= np.bincount(j, weights=fvec[:, axis], minlength=n)
        return ForceResult(
            forces, float(energies.sum()), float(np.dot(f_over_r, r_sq)), int(len(i))
        )

    def pair_terms(self, positions, candidates, box_length, potential):
        return self._compiled_terms(positions, candidates, box_length, potential)


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, type[KernelBackend]] = {}


def register_kernel(name: str, factory: type[KernelBackend]) -> None:
    """Register a kernel backend class under ``name`` (overwrites allowed)."""
    _REGISTRY[name] = factory


register_kernel("numpy", NumpyKernel)
register_kernel("half", HalfListKernel)
register_kernel("jit", JitKernel)


def create_kernel(name: str | None = None) -> KernelBackend:
    """Instantiate the kernel backend for ``name`` (after ``auto`` resolution)."""
    resolved = resolve_kernel_name(name)
    try:
        factory = _REGISTRY[resolved]
    except KeyError:  # a registered-then-removed or exotic name
        raise ConfigurationError(
            f"no kernel backend registered under {resolved!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
    return factory()
