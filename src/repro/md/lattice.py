"""Initial configurations: lattices and Maxwell-Boltzmann velocities."""

from __future__ import annotations

import math

import numpy as np

from ..errors import GeometryError


def simple_cubic_positions(n_particles: int, box_length: float) -> np.ndarray:
    """Place ``n_particles`` on a simple cubic lattice inside the box.

    The lattice has ``ceil(N^(1/3))`` sites per side; the first ``N`` sites
    (lexicographic order) are used, each offset to the centre of its lattice
    cell so no particle sits on the box boundary.
    """
    if n_particles <= 0:
        raise GeometryError(f"n_particles must be positive, got {n_particles}")
    side = math.ceil(n_particles ** (1.0 / 3.0))
    while side**3 < n_particles:  # guard against float round-off in the cube root
        side += 1
    spacing = box_length / side
    idx = np.arange(side**3)
    coords = np.column_stack((idx // (side * side), (idx // side) % side, idx % side))
    positions = (coords[:n_particles] + 0.5) * spacing
    return np.ascontiguousarray(positions, dtype=np.float64)


def fcc_positions(n_cells_per_side: int, box_length: float) -> np.ndarray:
    """Positions of a face-centred-cubic lattice: ``4 * n^3`` particles.

    FCC is the densest packing and the usual MD starting condition for LJ
    systems; useful for melt-and-equilibrate workloads.
    """
    if n_cells_per_side <= 0:
        raise GeometryError(f"n_cells_per_side must be positive, got {n_cells_per_side}")
    a = box_length / n_cells_per_side
    base = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]], dtype=np.float64
    )
    idx = np.arange(n_cells_per_side**3)
    cells = np.column_stack(
        (
            idx // (n_cells_per_side * n_cells_per_side),
            (idx // n_cells_per_side) % n_cells_per_side,
            idx % n_cells_per_side,
        )
    ).astype(np.float64)
    positions = (cells[:, None, :] + base[None, :, :] + 0.25).reshape(-1, 3) * a
    return np.ascontiguousarray(positions, dtype=np.float64)


def maxwell_boltzmann_velocities(
    n_particles: int,
    temperature: float,
    rng: np.random.Generator,
    zero_momentum: bool = True,
) -> np.ndarray:
    """Sample velocities from the Maxwell-Boltzmann distribution at ``T*``.

    With ``zero_momentum`` the centre-of-mass velocity is removed and the
    kinetic energy rescaled back so the instantaneous temperature is exactly
    ``temperature`` (matching the paper's constant-NVE start).
    """
    if n_particles <= 0:
        raise GeometryError(f"n_particles must be positive, got {n_particles}")
    if temperature < 0:
        raise GeometryError(f"temperature must be non-negative, got {temperature}")
    if temperature == 0:
        return np.zeros((n_particles, 3), dtype=np.float64)
    velocities = rng.normal(0.0, math.sqrt(temperature), size=(n_particles, 3))
    if zero_momentum:
        velocities -= velocities.mean(axis=0, keepdims=True)
    # Rescale to the exact target temperature (3 N k T / 2 = sum m v^2 / 2).
    kinetic = 0.5 * float(np.sum(velocities * velocities))
    current = 2.0 * kinetic / (3.0 * n_particles)
    if current > 0:
        velocities *= math.sqrt(temperature / current)
    return np.ascontiguousarray(velocities, dtype=np.float64)


def _ball_sites(
    n_points: int,
    radius: float,
    rng: np.random.Generator,
    min_separation: float = 0.7,
) -> np.ndarray:
    """Jittered-grid points inside a ball around the origin.

    The grid spacing bounds how tightly points pack so LJ forces on the
    resulting configuration stay finite; the ball is refilled cyclically when
    it undersupplies sites.
    """
    spacing = max(min_separation, 1e-3)
    n_side = max(1, int(2 * radius / spacing))
    axis = (np.arange(n_side) + 0.5) * spacing - radius
    gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
    grid = np.column_stack((gx.ravel(), gy.ravel(), gz.ravel()))
    inside = grid[np.sum(grid * grid, axis=1) <= radius * radius]
    if len(inside) == 0:
        inside = np.zeros((1, 3))
    reps = int(np.ceil(n_points / len(inside)))
    sites = np.tile(inside, (reps, 1))[:n_points]
    jitter = rng.uniform(-0.25 * spacing, 0.25 * spacing, size=sites.shape)
    return sites + jitter


def ball_sites_sorted(
    n_points: int,
    radius: float,
    rng: np.random.Generator,
    min_separation: float = 0.7,
) -> np.ndarray:
    """Like :func:`_ball_sites` but ordered inside-out (by distance).

    Used by incremental condensation schedules: filling the sites in order
    grows the droplet shell by shell, so its radius tracks its occupancy.
    """
    spacing = max(min_separation, 1e-3)
    n_side = max(1, int(2 * radius / spacing))
    axis = (np.arange(n_side) + 0.5) * spacing - radius
    gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
    grid = np.column_stack((gx.ravel(), gy.ravel(), gz.ravel()))
    norms = np.sum(grid * grid, axis=1)
    inside = grid[norms <= radius * radius]
    if len(inside) == 0:
        inside = np.zeros((1, 3))
    order = np.argsort(np.sum(inside * inside, axis=1), kind="stable")
    inside = inside[order]
    reps = int(np.ceil(n_points / len(inside)))
    sites = np.tile(inside, (reps, 1))[:n_points]
    jitter = rng.uniform(-0.25 * spacing, 0.25 * spacing, size=sites.shape)
    return sites + jitter


def droplet_positions(
    n_particles: int,
    box_length: float,
    fraction: float,
    centers: np.ndarray,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    liquid_density: float = 0.8,
) -> np.ndarray:
    """Gas with a fraction of particles condensed into scattered droplets.

    Models the supercooled gas of the paper's Section 3.2, where particles
    nucleate into small droplets spread over the box. ``fraction`` of the
    particles is split among the droplet ``centers`` (proportionally to
    ``weights``, uniform by default); the rest is a uniform background gas.
    Each droplet's radius follows from its occupancy at ``liquid_density``
    (reduced LJ liquid: ~0.8), so condensed cells hold a bounded particle
    count no matter how much mass a droplet accretes -- the physical reason
    cell-granular load balancing remains meaningful during condensation.
    """
    if not 0.0 <= fraction <= 1.0:
        raise GeometryError(f"fraction must be in [0, 1], got {fraction}")
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    if centers.shape[1] != 3:
        raise GeometryError(f"centers must have shape (K, 3), got {centers.shape}")
    if liquid_density <= 0:
        raise GeometryError(f"liquid_density must be positive, got {liquid_density}")
    k = len(centers)
    if weights is None:
        weights = np.full(k, 1.0 / k)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (k,) or np.any(weights < 0) or weights.sum() <= 0:
            raise GeometryError("weights must be non-negative with a positive sum")
        weights = weights / weights.sum()

    n_cond = int(round(fraction * n_particles))
    # Largest-remainder split of the condensed particles among droplets.
    raw = weights * n_cond
    counts = np.floor(raw).astype(int)
    remainder = n_cond - counts.sum()
    if remainder > 0:
        order = np.argsort(-(raw - counts))
        counts[order[:remainder]] += 1

    spacing = (1.0 / liquid_density) ** (1.0 / 3.0)
    parts: list[np.ndarray] = []
    for center, count in zip(centers, counts):
        if count:
            # Radius from occupancy at liquid density (with slack so the
            # jittered grid always supplies enough in-ball sites).
            radius = 1.1 * (3.0 * count / (4.0 * math.pi * liquid_density)) ** (1.0 / 3.0)
            radius = max(radius, spacing)
            parts.append(center + _ball_sites(count, radius, rng, min_separation=spacing))
    n_gas = n_particles - n_cond
    if n_gas:
        parts.append(rng.uniform(0.0, box_length, size=(n_gas, 3)))
    if not parts:
        return np.empty((0, 3), dtype=np.float64)
    positions = np.concatenate(parts, axis=0)
    return np.ascontiguousarray(np.mod(positions, box_length), dtype=np.float64)


def clustered_positions(
    n_particles: int,
    box_length: float,
    cluster_fraction: float,
    cluster_radius: float,
    rng: np.random.Generator,
    center: np.ndarray | None = None,
    min_separation: float = 0.7,
) -> np.ndarray:
    """Uniform gas with a fraction of particles condensed into a ball.

    Used by the concentration workloads: ``cluster_fraction`` of the particles
    are placed inside a ball of ``cluster_radius`` around ``center`` (default:
    box centre), the rest uniformly in the box. ``min_separation`` bounds how
    tightly cluster particles may pack so the LJ forces stay finite: the ball
    is filled from a jittered grid of that spacing.
    """
    if not 0.0 <= cluster_fraction <= 1.0:
        raise GeometryError(f"cluster_fraction must be in [0, 1], got {cluster_fraction}")
    if cluster_radius <= 0:
        raise GeometryError(f"cluster_radius must be positive, got {cluster_radius}")
    if center is None:
        center = np.full(3, box_length / 2.0)
    center = np.asarray(center, dtype=np.float64)

    n_cluster = int(round(cluster_fraction * n_particles))
    n_gas = n_particles - n_cluster

    parts: list[np.ndarray] = []
    if n_cluster:
        parts.append(center + _ball_sites(n_cluster, cluster_radius, rng, min_separation))
    if n_gas:
        parts.append(rng.uniform(0.0, box_length, size=(n_gas, 3)))
    positions = np.concatenate(parts, axis=0)
    return np.ascontiguousarray(np.mod(positions, box_length), dtype=np.float64)
