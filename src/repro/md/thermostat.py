"""Velocity-rescaling thermostat.

The paper scales the temperature back to ``T_ref`` every 50 time steps
(Section 3.2); between rescalings the dynamics is plain NVE.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from .observables import temperature
from .system import ParticleSystem


class VelocityRescale:
    """Deterministic velocity rescaling to a reference temperature.

    Parameters
    ----------
    temperature:
        Target reduced temperature ``T_ref``.
    interval:
        Rescale every this many steps; 0 disables the thermostat entirely.
    """

    def __init__(self, temperature: float, interval: int) -> None:
        if temperature < 0:
            raise ConfigurationError(f"temperature must be non-negative, got {temperature}")
        if interval < 0:
            raise ConfigurationError(f"interval must be non-negative, got {interval}")
        self.temperature = float(temperature)
        self.interval = int(interval)

    def rescale(self, system: ParticleSystem) -> float:
        """Rescale velocities to the target temperature; returns the factor."""
        current = temperature(system)
        if current <= 0.0:
            return 1.0
        factor = math.sqrt(self.temperature / current)
        system.velocities *= factor
        return factor

    def maybe_rescale(self, system: ParticleSystem, step: int) -> float | None:
        """Apply the rescaling on thermostat steps; returns the factor or None.

        ``step`` is 1-based (the step that was just completed), so with
        ``interval=50`` rescaling happens after steps 50, 100, ...
        """
        if self.interval == 0 or step <= 0 or step % self.interval != 0:
            return None
        return self.rescale(system)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VelocityRescale(T={self.temperature}, interval={self.interval})"


def remove_drift(system: ParticleSystem) -> np.ndarray:
    """Remove centre-of-mass velocity; returns the drift that was removed."""
    drift = system.velocities.mean(axis=0)
    system.velocities -= drift
    return drift
