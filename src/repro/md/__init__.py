"""Molecular-dynamics substrate: Lennard-Jones physics in reduced units.

This subpackage is the serial MD engine the parallel layers build on:
particles, the LJ potential with cut-off, linked cell lists, velocity-form
Verlet integration and the velocity-rescaling thermostat of the paper's
Section 3.2.
"""

from .celllist import CellList, CellSort
from .forces import ForceField, ForceResult
from .kernels import (
    HalfListKernel,
    JitKernel,
    KernelBackend,
    NumpyKernel,
    create_kernel,
    default_kernel,
    forces_from_pairs,
    numba_available,
    register_kernel,
    resolve_kernel_name,
)
from .neighbors import NeighborStats, VerletList
from .integrator import VelocityVerlet
from .lattice import fcc_positions, maxwell_boltzmann_velocities, simple_cubic_positions
from .observables import kinetic_energy, pressure, temperature
from .pbc import minimum_image, wrap_positions
from .potential import LennardJones
from .simulation import SerialSimulation
from .system import ParticleSystem
from .thermostat import VelocityRescale
from .trajectory_io import read_xyz, write_xyz

__all__ = [
    "CellList",
    "CellSort",
    "ForceField",
    "ForceResult",
    "HalfListKernel",
    "JitKernel",
    "KernelBackend",
    "LennardJones",
    "NeighborStats",
    "NumpyKernel",
    "VerletList",
    "ParticleSystem",
    "SerialSimulation",
    "VelocityRescale",
    "VelocityVerlet",
    "create_kernel",
    "default_kernel",
    "fcc_positions",
    "forces_from_pairs",
    "numba_available",
    "register_kernel",
    "resolve_kernel_name",
    "kinetic_energy",
    "maxwell_boltzmann_velocities",
    "minimum_image",
    "pressure",
    "read_xyz",
    "simple_cubic_positions",
    "temperature",
    "wrap_positions",
    "write_xyz",
]
