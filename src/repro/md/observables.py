"""Thermodynamic observables in reduced units."""

from __future__ import annotations

import numpy as np

from .system import ParticleSystem


def kinetic_energy(system: ParticleSystem) -> float:
    """Total kinetic energy ``sum(m v^2) / 2`` (m = 1 in reduced units)."""
    v = system.velocities
    return 0.5 * float(np.einsum("ij,ij->", v, v))


def temperature(system: ParticleSystem) -> float:
    """Instantaneous reduced temperature ``2 E_kin / (3 N)``.

    Uses the 3N-degrees-of-freedom convention of the paper's era (no
    centre-of-mass correction).
    """
    if system.n == 0:
        return 0.0
    return 2.0 * kinetic_energy(system) / (3.0 * system.n)


def pressure(system: ParticleSystem, virial: float) -> float:
    """Reduced pressure from the virial theorem.

    ``P V = N T + W / 3`` with ``W = sum_pairs f_ij . r_ij``.
    """
    volume = system.box_length**3
    return (system.n * temperature(system) + virial / 3.0) / volume


def center_of_mass(system: ParticleSystem) -> np.ndarray:
    """Centre of mass of the wrapped coordinates (simple mean)."""
    return system.positions.mean(axis=0)


def momentum(system: ParticleSystem) -> np.ndarray:
    """Total momentum (m = 1)."""
    return system.velocities.sum(axis=0)
