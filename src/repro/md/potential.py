"""The Lennard-Jones pair potential with cut-off (Equation 1 of the paper).

``V(r) = 4 * epsilon * ((sigma/r)^12 - (sigma/r)^6)`` truncated at ``r_c``.
The library works in reduced units, so ``sigma = epsilon = 1`` by default,
but both parameters are kept explicit so substances other than the reduced
fluid can be modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LennardJones:
    """Truncated (and optionally shifted) Lennard-Jones potential.

    Attributes
    ----------
    epsilon, sigma:
        LJ parameters (1.0 in reduced units).
    cutoff:
        Truncation distance ``r_c``; interactions beyond it are zero.
    shift:
        If true, the potential is shifted by ``V(r_c)`` so the energy is
        continuous at the cut-off (forces are unaffected). The paper's plain
        truncation corresponds to ``shift=False``; the shifted form is the
        better default for energy-conservation checks.
    """

    epsilon: float = 1.0
    sigma: float = 1.0
    cutoff: float = 2.5
    shift: bool = True
    _v_cut: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {self.sigma}")
        if self.cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {self.cutoff}")
        sr6 = (self.sigma / self.cutoff) ** 6
        object.__setattr__(self, "_v_cut", 4.0 * self.epsilon * (sr6 * sr6 - sr6))

    @property
    def cutoff_sq(self) -> float:
        """Squared cut-off distance (hot loops compare squared distances)."""
        return self.cutoff * self.cutoff

    def energy(self, r: np.ndarray | float) -> np.ndarray | float:
        """Pair energy at distance ``r`` (0 beyond the cut-off)."""
        arr = np.atleast_1d(np.asarray(r, dtype=float))
        out = np.zeros_like(arr)
        mask = (arr > 0) & (arr < self.cutoff)
        sr6 = (self.sigma / arr[mask]) ** 6
        out[mask] = 4.0 * self.epsilon * (sr6 * sr6 - sr6)
        if self.shift:
            out[mask] -= self._v_cut
        return out if np.ndim(r) else float(out[0])

    def force_magnitude(self, r: np.ndarray | float) -> np.ndarray | float:
        """Magnitude of the radial force ``-dV/dr`` at distance ``r``.

        Positive values are repulsive. Zero beyond the cut-off.
        """
        arr = np.atleast_1d(np.asarray(r, dtype=float))
        out = np.zeros_like(arr)
        mask = (arr > 0) & (arr < self.cutoff)
        rm = arr[mask]
        sr6 = (self.sigma / rm) ** 6
        out[mask] = 24.0 * self.epsilon * (2.0 * sr6 * sr6 - sr6) / rm
        return out if np.ndim(r) else float(out[0])

    def energy_force_sq(self, r_sq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised kernel on *squared* distances (assumed within cut-off).

        Returns ``(energies, force_over_r)`` where ``force_over_r * dr_vec``
        is the force vector on the first particle of the pair. Callers must
        pre-filter ``r_sq < cutoff^2`` and ``r_sq > 0``; this function does no
        masking so it stays allocation-light in the hot path.
        """
        inv_r2 = (self.sigma * self.sigma) / r_sq
        sr6 = inv_r2 * inv_r2 * inv_r2
        sr12 = sr6 * sr6
        energies = 4.0 * self.epsilon * (sr12 - sr6)
        if self.shift:
            energies = energies - self._v_cut
        force_over_r = 24.0 * self.epsilon * (2.0 * sr12 - sr6) / r_sq
        return energies, force_over_r

    def minimum(self) -> tuple[float, float]:
        """Location and depth of the potential minimum: ``(2^(1/6) sigma, -epsilon)``."""
        r_min = 2.0 ** (1.0 / 6.0) * self.sigma
        return r_min, -self.epsilon - (self._v_cut if self.shift else 0.0)
