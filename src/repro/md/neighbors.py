"""Pair finding: who interacts with whom within the cut-off.

Two interchangeable backends produce identical pair sets (tested against
each other):

``pairs_kdtree``
    scipy's periodic cKDTree -- the fast default (compiled C).
``pairs_celllist``
    the faithful linked-cell search of the paper, vectorised with a padded
    occupancy matrix -- pure NumPy, used as the reference kernel and by the
    per-PE decomposed force path.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..errors import GeometryError
from .celllist import HALF_STENCIL, CellList
from .pbc import minimum_image


def pairs_kdtree(positions: np.ndarray, box_length: float, cutoff: float) -> np.ndarray:
    """All unordered pairs within ``cutoff`` under periodic boundaries.

    Returns an ``(n_pairs, 2)`` int array. Pairs at exactly the cut-off
    distance are excluded (open interval), matching the cell-list backend.
    """
    if cutoff <= 0:
        raise GeometryError(f"cutoff must be positive, got {cutoff}")
    if 2.0 * cutoff > box_length:
        raise GeometryError(
            f"cutoff {cutoff} too large for box {box_length} (needs L >= 2*r_c)"
        )
    if len(positions) == 0:
        return np.empty((0, 2), dtype=np.int64)
    tree = cKDTree(positions, boxsize=box_length)
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if len(pairs) == 0:
        return np.empty((0, 2), dtype=np.int64)
    # query_pairs uses a closed ball; drop pairs at exactly the cut-off so both
    # backends implement the same open interval r < r_c.
    delta = minimum_image(positions[pairs[:, 0]] - positions[pairs[:, 1]], box_length)
    r_sq = np.einsum("ij,ij->i", delta, delta)
    keep = r_sq < cutoff * cutoff
    return np.ascontiguousarray(pairs[keep], dtype=np.int64)


def candidate_pairs_celllist(
    positions: np.ndarray, cell_list: CellList, cell_ids: np.ndarray | None = None
) -> np.ndarray:
    """All particle pairs sharing a cell or sitting in adjacent cells.

    This is the raw candidate set the paper's force loop iterates ("every
    combination of molecules within each cell and its neighbouring 26
    cells"), before the distance test. Requires ``nc >= 3`` so the periodic
    half stencil visits each unordered cell pair exactly once.
    """
    if cell_list.cells_per_side < 3:
        raise GeometryError(
            f"cell-list pair search needs >= 3 cells per side, got {cell_list.cells_per_side}"
        )
    if len(positions) == 0:
        return np.empty((0, 2), dtype=np.int64)
    occupancy, counts = cell_list.padded_occupancy(positions)
    n_cells, max_count = occupancy.shape

    chunks: list[np.ndarray] = []

    # Intra-cell pairs: all i<j combinations inside each cell.
    if max_count >= 2:
        iu, ju = np.triu_indices(max_count, k=1)
        a = occupancy[:, iu].ravel()
        b = occupancy[:, ju].ravel()
        valid = (a >= 0) & (b >= 0)
        if valid.any():
            chunks.append(np.column_stack((a[valid], b[valid])))

    # Inter-cell pairs: for each of the 13 half offsets, cross products of the
    # cell's particles with the neighbour cell's particles.
    occupied = np.flatnonzero(counts > 0)
    for offset in HALF_STENCIL:
        neighbor = cell_list.neighbor_ids(offset)
        cells = occupied[counts[neighbor[occupied]] > 0]
        if len(cells) == 0:
            continue
        a = np.broadcast_to(occupancy[cells][:, :, None], (len(cells), max_count, max_count))
        b = np.broadcast_to(
            occupancy[neighbor[cells]][:, None, :], (len(cells), max_count, max_count)
        )
        a = a.reshape(-1)
        b = b.reshape(-1)
        valid = (a >= 0) & (b >= 0)
        if valid.any():
            chunks.append(np.column_stack((a[valid], b[valid])))

    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.ascontiguousarray(np.concatenate(chunks, axis=0), dtype=np.int64)


def pairs_celllist(
    positions: np.ndarray, cell_list: CellList, cutoff: float
) -> np.ndarray:
    """Unordered pairs within ``cutoff`` found through the linked-cell search."""
    if cutoff > cell_list.cell_size + 1e-12:
        raise GeometryError(
            f"cutoff {cutoff} exceeds cell size {cell_list.cell_size}: "
            "the 26-neighbour stencil would miss pairs"
        )
    candidates = candidate_pairs_celllist(positions, cell_list)
    if len(candidates) == 0:
        return candidates
    delta = minimum_image(
        positions[candidates[:, 0]] - positions[candidates[:, 1]], cell_list.box_length
    )
    r_sq = np.einsum("ij,ij->i", delta, delta)
    return np.ascontiguousarray(candidates[r_sq < cutoff * cutoff], dtype=np.int64)


def canonical_pairs(pairs: np.ndarray) -> np.ndarray:
    """Sort a pair list into canonical order (min first, lexicographic rows).

    Utility for comparing backend outputs in tests.
    """
    if len(pairs) == 0:
        return np.empty((0, 2), dtype=np.int64)
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    stacked = np.column_stack((lo, hi))
    order = np.lexsort((stacked[:, 1], stacked[:, 0]))
    return stacked[order]
