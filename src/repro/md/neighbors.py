"""Pair finding: who interacts with whom within the cut-off.

Interchangeable backends produce identical pair sets (tested against each
other):

``pairs_kdtree``
    scipy's periodic cKDTree -- the fast default (compiled C).
``pairs_celllist``
    the faithful linked-cell search of the paper, vectorised with a CSR
    (sorted-run) candidate generator -- pure NumPy, linear in the actual
    candidate count and robust to skewed occupancies, used as the reference
    kernel and by the per-PE decomposed force path.
``VerletList``
    a cached pair list built with ``cutoff + skin`` and reused across steps
    until any particle moves farther than ``skin / 2``; the ``"verlet"``
    backend of :class:`repro.md.forces.ForceField`.

``candidate_pairs_padded`` keeps the legacy padded-occupancy generator,
which costs O(n_cells * max_count^2) and blows up on the concentrated
configurations this paper studies; it remains as a correctness oracle only.
Its benchmark is retired behind ``--include-legacy``
(see ``benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..errors import GeometryError
from ..obs.profiler import scope
from .celllist import HALF_STENCIL, CellList, CellSort
from .pbc import minimum_image


def pairs_kdtree(positions: np.ndarray, box_length: float, cutoff: float) -> np.ndarray:
    """All unordered pairs within ``cutoff`` under periodic boundaries.

    Returns an ``(n_pairs, 2)`` int array. Pairs at exactly the cut-off
    distance are excluded (open interval), matching the cell-list backend.
    """
    if cutoff <= 0:
        raise GeometryError(f"cutoff must be positive, got {cutoff}")
    if 2.0 * cutoff > box_length:
        raise GeometryError(
            f"cutoff {cutoff} too large for box {box_length} (needs L >= 2*r_c)"
        )
    if len(positions) == 0:
        return np.empty((0, 2), dtype=np.int64)
    with scope("pairs.kdtree"):
        tree = cKDTree(positions, boxsize=box_length)
        pairs = tree.query_pairs(cutoff, output_type="ndarray")
        if len(pairs) == 0:
            return np.empty((0, 2), dtype=np.int64)
        # query_pairs uses a closed ball; drop pairs at exactly the cut-off so
        # both backends implement the same open interval r < r_c.
        delta = minimum_image(positions[pairs[:, 0]] - positions[pairs[:, 1]], box_length)
        r_sq = np.einsum("ij,ij->i", delta, delta)
        keep = r_sq < cutoff * cutoff
        return np.ascontiguousarray(pairs[keep], dtype=np.int64)


def _check_grid(cell_list: CellList) -> None:
    if cell_list.cells_per_side < 3:
        raise GeometryError(
            f"cell-list pair search needs >= 3 cells per side, got {cell_list.cells_per_side}"
        )


def candidate_pairs_celllist(
    positions: np.ndarray, cell_list: CellList, sort: CellSort | None = None
) -> np.ndarray:
    """All particle pairs sharing a cell or sitting in adjacent cells.

    This is the raw candidate set the paper's force loop iterates ("every
    combination of molecules within each cell and its neighbouring 26
    cells"), before the distance test. Requires ``nc >= 3`` so the periodic
    half stencil visits each unordered cell pair exactly once.

    The generator walks the CSR cell sort (``order``/``starts``) with
    ``np.repeat``-built index arithmetic, so its cost is linear in the number
    of candidates actually emitted -- unlike the padded-occupancy generator
    (:func:`candidate_pairs_padded`), whose cost scales with the *square of
    the fullest cell* across every cell, a pathology on clustered
    configurations. Pass a precomputed ``sort`` to reuse a snapshot's
    :meth:`repro.md.celllist.CellList.cell_sort`.
    """
    _check_grid(cell_list)
    if len(positions) == 0:
        return np.empty((0, 2), dtype=np.int64)
    with scope("pairs.csr_candidates"):
        if sort is None:
            sort = cell_list.cell_sort(positions)
        order, counts, starts = sort.order, sort.counts, sort.starts
        n = sort.n

        chunks: list[np.ndarray] = []

        # Intra-cell pairs: each sorted slot pairs with every later slot of its
        # cell's run, so slot s contributes (run_end - s - 1) pairs.
        sorted_cells = sort.flat[order]
        slots = np.arange(n, dtype=np.int64)
        reps = starts[sorted_cells + 1] - slots - 1
        total = int(reps.sum())
        if total:
            a_slots = np.repeat(slots, reps)
            seg_start = np.cumsum(reps) - reps
            offsets = np.arange(total, dtype=np.int64) - np.repeat(seg_start, reps)
            b_slots = a_slots + 1 + offsets
            chunks.append(np.column_stack((order[a_slots], order[b_slots])))

        # Inter-cell pairs: for each of the 13 half offsets, the cross product
        # of each occupied cell's run with its (occupied) neighbour's run.
        occupied = np.flatnonzero(counts > 0)
        for offset in HALF_STENCIL:
            neighbor = cell_list.neighbor_ids(offset)
            nbr = neighbor[occupied]
            mask = counts[nbr] > 0
            cells = occupied[mask]
            if len(cells) == 0:
                continue
            nbr = nbr[mask]
            count_a = counts[cells]
            count_b = counts[nbr]
            per_cell = count_a * count_b
            total = int(per_cell.sum())
            cell_idx = np.repeat(np.arange(len(cells), dtype=np.int64), per_cell)
            seg_start = np.cumsum(per_cell) - per_cell
            within = np.arange(total, dtype=np.int64) - seg_start[cell_idx]
            local_b = count_b[cell_idx]
            local_a = within // local_b
            a = order[starts[cells][cell_idx] + local_a]
            b = order[starts[nbr][cell_idx] + within - local_a * local_b]
            chunks.append(np.column_stack((a, b)))

        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        return np.ascontiguousarray(np.concatenate(chunks, axis=0), dtype=np.int64)


def candidate_pairs_padded(
    positions: np.ndarray, cell_list: CellList, sort: CellSort | None = None
) -> np.ndarray:
    """Legacy padded-occupancy candidate generator (correctness oracle).

    Same candidate set as :func:`candidate_pairs_celllist` (up to row order)
    via an ``(n_cells, max_count)`` padded matrix and broadcasting. Cost is
    O(n_cells * max_count^2): fine for uniform gases, catastrophic once a few
    cells concentrate most of the particles. Kept for cross-checking; its
    clustered benchmark only runs under ``--include-legacy`` (it costs ~13 s
    per round at quick scale).
    """
    _check_grid(cell_list)
    if len(positions) == 0:
        return np.empty((0, 2), dtype=np.int64)
    if sort is None:
        sort = cell_list.cell_sort(positions)
    occupancy, counts = cell_list.padded_occupancy(positions, sort=sort)
    n_cells, max_count = occupancy.shape

    chunks: list[np.ndarray] = []

    # Intra-cell pairs: all i<j combinations inside each cell.
    if max_count >= 2:
        iu, ju = np.triu_indices(max_count, k=1)
        a = occupancy[:, iu].ravel()
        b = occupancy[:, ju].ravel()
        valid = (a >= 0) & (b >= 0)
        if valid.any():
            chunks.append(np.column_stack((a[valid], b[valid])))

    # Inter-cell pairs: for each of the 13 half offsets, cross products of the
    # cell's particles with the neighbour cell's particles.
    occupied = np.flatnonzero(counts > 0)
    for offset in HALF_STENCIL:
        neighbor = cell_list.neighbor_ids(offset)
        cells = occupied[counts[neighbor[occupied]] > 0]
        if len(cells) == 0:
            continue
        a = np.broadcast_to(occupancy[cells][:, :, None], (len(cells), max_count, max_count))
        b = np.broadcast_to(
            occupancy[neighbor[cells]][:, None, :], (len(cells), max_count, max_count)
        )
        a = a.reshape(-1)
        b = b.reshape(-1)
        valid = (a >= 0) & (b >= 0)
        if valid.any():
            chunks.append(np.column_stack((a[valid], b[valid])))

    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.ascontiguousarray(np.concatenate(chunks, axis=0), dtype=np.int64)


def pairs_celllist(
    positions: np.ndarray,
    cell_list: CellList,
    cutoff: float,
    sort: CellSort | None = None,
) -> np.ndarray:
    """Unordered pairs within ``cutoff`` found through the linked-cell search."""
    if cutoff > cell_list.cell_size + 1e-12:
        raise GeometryError(
            f"cutoff {cutoff} exceeds cell size {cell_list.cell_size}: "
            "the 26-neighbour stencil would miss pairs"
        )
    candidates = candidate_pairs_celllist(positions, cell_list, sort=sort)
    if len(candidates) == 0:
        return candidates
    delta = minimum_image(
        positions[candidates[:, 0]] - positions[candidates[:, 1]], cell_list.box_length
    )
    r_sq = np.einsum("ij,ij->i", delta, delta)
    return np.ascontiguousarray(candidates[r_sq < cutoff * cutoff], dtype=np.int64)


def canonical_pairs(pairs: np.ndarray) -> np.ndarray:
    """Sort a pair list into canonical order (min first, lexicographic rows).

    Utility for comparing backend outputs in tests.
    """
    if len(pairs) == 0:
        return np.empty((0, 2), dtype=np.int64)
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    stacked = np.column_stack((lo, hi))
    order = np.lexsort((stacked[:, 1], stacked[:, 0]))
    return stacked[order]


# -- Verlet neighbour-list caching ----------------------------------------


@dataclass
class NeighborStats:
    """Counters of the pair-search layer (surfaced via instrumentation).

    Attributes
    ----------
    rebuilds:
        Full pair searches executed.
    reuses:
        Steps served from a cached Verlet list without a search.
    candidate_pairs:
        Candidates emitted by the last search (cutoff + skin ball for the
        Verlet backend; stencil candidates for the cell backend).
    accepted_pairs:
        Pairs within the true cut-off at the last force evaluation.
    total_candidates, total_accepted:
        Running sums of the above across the run.
    half_pairs_evaluated, half_force_rows:
        Half-neighbour-list accounting (``half``/``jit`` kernel tiers only):
        candidates the kernel evaluated once each, and force rows written by
        the Newton-3 scatter (two per accepted pair). Zero under the
        full-list ``numpy`` tier, keeping acceptance ratios comparable
        across backends.
    """

    rebuilds: int = 0
    reuses: int = 0
    candidate_pairs: int = 0
    accepted_pairs: int = 0
    total_candidates: int = 0
    total_accepted: int = 0
    half_pairs_evaluated: int = 0
    half_force_rows: int = 0

    def record_build(self, n_candidates: int) -> None:
        """Account one full pair search producing ``n_candidates``."""
        self.rebuilds += 1
        self.candidate_pairs = int(n_candidates)

    def record_reuse(self) -> None:
        """Account one step served from the cache."""
        self.reuses += 1

    def record_evaluation(self, n_candidates: int, n_accepted: int) -> None:
        """Account one force evaluation's candidate/accepted pair counts."""
        self.candidate_pairs = int(n_candidates)
        self.accepted_pairs = int(n_accepted)
        self.total_candidates += int(n_candidates)
        self.total_accepted += int(n_accepted)

    def record_half_list(self, n_evaluated: int, n_accepted: int) -> None:
        """Account one half-list kernel pass (one evaluation per pair,
        two force-row writes per accepted pair)."""
        self.half_pairs_evaluated += int(n_evaluated)
        self.half_force_rows += 2 * int(n_accepted)

    @property
    def evaluations(self) -> int:
        """Force evaluations seen (rebuilds + cache reuses)."""
        return self.rebuilds + self.reuses

    @property
    def reuse_ratio(self) -> float:
        """Fraction of evaluations served without a pair search."""
        total = self.evaluations
        return self.reuses / total if total else 0.0

    @property
    def acceptance_ratio(self) -> float:
        """Accepted / candidate pairs over the run (search selectivity)."""
        return self.total_accepted / self.total_candidates if self.total_candidates else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Flat summary for reports and machine-readable dumps."""
        return {
            "rebuilds": self.rebuilds,
            "reuses": self.reuses,
            "reuse_ratio": self.reuse_ratio,
            "candidate_pairs": self.candidate_pairs,
            "accepted_pairs": self.accepted_pairs,
            "acceptance_ratio": self.acceptance_ratio,
            "half_list": {
                "pairs_evaluated": self.half_pairs_evaluated,
                "force_rows_written": self.half_force_rows,
            },
        }

    def state_dict(self) -> dict[str, int]:
        """Checkpoint snapshot of the raw counters."""
        return {
            "rebuilds": self.rebuilds,
            "reuses": self.reuses,
            "candidate_pairs": self.candidate_pairs,
            "accepted_pairs": self.accepted_pairs,
            "total_candidates": self.total_candidates,
            "total_accepted": self.total_accepted,
            "half_pairs_evaluated": self.half_pairs_evaluated,
            "half_force_rows": self.half_force_rows,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        for name, value in state.items():
            setattr(self, name, int(value))


class VerletList:
    """A reusable pair list with a skin radius (Verlet neighbour list).

    The list is built with search radius ``cutoff + skin`` and stays valid as
    long as no particle has moved farther than ``skin / 2`` from its position
    at build time: two particles outside ``cutoff + skin`` then cannot have
    approached within ``cutoff``. The expensive pair search therefore runs
    once every ~10-20 steps instead of every step.

    Parameters
    ----------
    box_length:
        Periodic box edge.
    cutoff:
        True interaction cut-off ``r_c``.
    skin:
        Extra search margin (> 0). Larger skins rebuild less often but carry
        more candidates per evaluation.
    max_reuse:
        Hard cap on consecutive reuses before a forced rebuild (0 = no cap);
        a safety valve against drift in long NVE stretches.
    builder:
        ``"kdtree"`` (default) or ``"cells"``: backend used for the builds.
    cells_per_side:
        Grid resolution for the ``"cells"`` builder (cell edge must be at
        least ``cutoff + skin``).
    stats:
        Optional shared :class:`NeighborStats` to count into.
    """

    def __init__(
        self,
        box_length: float,
        cutoff: float,
        skin: float,
        max_reuse: int = 0,
        builder: str = "kdtree",
        cells_per_side: int | None = None,
        stats: NeighborStats | None = None,
    ) -> None:
        if cutoff <= 0:
            raise GeometryError(f"cutoff must be positive, got {cutoff}")
        if skin <= 0:
            raise GeometryError(f"skin must be positive, got {skin}")
        if max_reuse < 0:
            raise GeometryError(f"max_reuse must be non-negative, got {max_reuse}")
        if 2.0 * (cutoff + skin) > box_length:
            raise GeometryError(
                f"search radius {cutoff + skin} too large for box {box_length} "
                "(needs L >= 2*(r_c + skin); shrink the skin)"
            )
        if builder not in ("kdtree", "cells"):
            raise GeometryError(f"unknown Verlet builder {builder!r}")
        self.box_length = float(box_length)
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.max_reuse = int(max_reuse)
        self.builder = builder
        self.stats = stats if stats is not None else NeighborStats()
        self._cell_list: CellList | None = None
        if builder == "cells":
            if cells_per_side is None:
                raise GeometryError("the 'cells' Verlet builder requires cells_per_side")
            self._cell_list = CellList(box_length, int(cells_per_side))
            if self.radius > self._cell_list.cell_size + 1e-12:
                raise GeometryError(
                    f"search radius {self.radius} exceeds cell size "
                    f"{self._cell_list.cell_size}: coarsen the grid or shrink the skin"
                )
        self._pairs: np.ndarray | None = None
        self._reference: np.ndarray | None = None
        self._reuse_streak = 0

    @property
    def radius(self) -> float:
        """Search radius ``cutoff + skin`` of the cached list."""
        return self.cutoff + self.skin

    @property
    def is_built(self) -> bool:
        """Whether a cached list currently exists."""
        return self._pairs is not None

    def invalidate(self) -> None:
        """Drop the cached list (next :meth:`candidates` call rebuilds)."""
        self._pairs = None
        self._reference = None
        self._reuse_streak = 0

    def state_dict(self) -> dict:
        """Checkpoint snapshot of the cache, *including the pair order*.

        Pair order matters: it fixes the floating-point accumulation order
        of the force kernel, so a restored run reproduces forces bit-for-bit
        instead of merely to rounding error.
        """
        return {
            "pairs": None if self._pairs is None else self._pairs.copy(),
            "reference": None if self._reference is None else self._reference.copy(),
            "reuse_streak": self._reuse_streak,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        pairs = state["pairs"]
        reference = state["reference"]
        self._pairs = None if pairs is None else np.array(pairs, copy=True)
        self._reference = None if reference is None else np.array(reference, copy=True)
        self._reuse_streak = int(state["reuse_streak"])

    def max_displacement_sq(self, positions: np.ndarray) -> float:
        """Largest squared displacement since the last build (minimum image)."""
        if self._reference is None or len(positions) != len(self._reference):
            return np.inf
        delta = minimum_image(positions - self._reference, self.box_length)
        return float(np.einsum("ij,ij->i", delta, delta).max(initial=0.0))

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True when the cached list no longer covers ``positions``."""
        if self._pairs is None:
            return True
        if self.max_reuse and self._reuse_streak >= self.max_reuse:
            return True
        half_skin = 0.5 * self.skin
        return self.max_displacement_sq(positions) > half_skin * half_skin

    def build(self, positions: np.ndarray) -> np.ndarray:
        """Run the full pair search at ``cutoff + skin`` and cache the result."""
        with scope("pairs.verlet_build"):
            if self._cell_list is not None:
                pairs = pairs_celllist(positions, self._cell_list, self.radius)
            else:
                pairs = pairs_kdtree(positions, self.box_length, self.radius)
            self._pairs = pairs
            self._reference = np.array(positions, copy=True)
            self._reuse_streak = 0
            self.stats.record_build(len(pairs))
            return pairs

    def candidates(self, positions: np.ndarray) -> np.ndarray:
        """Candidate pairs covering every interaction of ``positions``.

        Rebuilds when stale, otherwise returns the cached list (a superset of
        the true pair set; callers filter by the actual cut-off).
        """
        if self.needs_rebuild(positions):
            return self.build(positions)
        self._reuse_streak += 1
        self.stats.record_reuse()
        assert self._pairs is not None
        return self._pairs

    def pairs(self, positions: np.ndarray) -> np.ndarray:
        """Exact pairs within ``cutoff`` (cached candidates + distance filter)."""
        candidates = self.candidates(positions)
        if len(candidates) == 0:
            return candidates
        delta = minimum_image(
            positions[candidates[:, 0]] - positions[candidates[:, 1]], self.box_length
        )
        r_sq = np.einsum("ij,ij->i", delta, delta)
        return np.ascontiguousarray(
            candidates[r_sq < self.cutoff * self.cutoff], dtype=np.int64
        )
