"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``presets``
    List the named workload presets.
``run``
    Run a preset as DDM and/or DLB-DDM and print the comparison.
``sweep``
    Run one effective-range boundary experiment (Figure 10 style).
``bounds``
    Print the theoretical upper bounds f(m, n) over a range of n.
``calibrate``
    Measure this host's per-pair force cost for MachineConfig.tau_pair.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from .config import RunConfig
from .core.runner import ParallelMDRunner
from .experiments.fig10 import run_boundary_experiment
from .obs import MetricsRegistry, Observability, Profiler, TraceRecorder
from .parallel.costmodel import calibrate_tau_pair
from .reporting import comparison_report, format_table, phase_breakdown, series_preview
from .theory.bounds import upper_bound
from .workloads.presets import PRESETS, get_preset


def _cmd_presets(_: argparse.Namespace) -> int:
    rows = [
        (p.name, p.n_particles, p.n_pes, p.m, p.steps, p.description)
        for p in PRESETS.values()
    ]
    print(format_table(["name", "N", "PEs", "m", "steps", "description"], rows))
    return 0


def _build_observability(args: argparse.Namespace) -> Observability | None:
    """Assemble the ``run`` command's observability bundle from its flags."""
    want_trace = getattr(args, "trace", None) is not None
    want_metrics = getattr(args, "metrics", None) is not None
    want_profile = bool(getattr(args, "profile", False))
    if not (want_trace or want_metrics or want_profile):
        return None
    recorder = TraceRecorder() if want_trace else None
    registry = MetricsRegistry() if want_metrics else None
    profiler = Profiler(trace=recorder, registry=registry)
    return Observability(trace=recorder, metrics=registry, profiler=profiler)


def _cmd_run(args: argparse.Namespace) -> int:
    preset = get_preset(args.preset)
    steps = args.steps if args.steps is not None else preset.steps
    results = {}
    modes = {"ddm": False, "dlb": True}
    selected = modes if args.mode == "both" else {args.mode: modes[args.mode]}
    obs = _build_observability(args)
    if obs is not None and obs.trace is not None:
        for pid, label in enumerate(selected):
            obs.trace.add_process(pid, f"{label} (simulated clock)", sort_index=pid)
    for trace_pid, (label, dlb_enabled) in enumerate(selected.items()):
        print(f"running {label} ({steps} steps) ...", file=sys.stderr)
        runner = ParallelMDRunner(
            preset.simulation_config(dlb_enabled=dlb_enabled),
            RunConfig(
                steps=steps,
                seed=args.seed,
                record_interval=args.record_interval,
                force_backend=args.backend,
                skin=args.skin,
            ),
            observability=obs,
            trace_pid=trace_pid,
        )
        if obs is not None:
            with obs.activate():
                results[label] = runner.run()
        else:
            results[label] = runner.run()
        stats = runner.neighbor_stats
        if args.backend == "verlet":
            print(
                f"  {label}: pair-search rebuilds={stats.rebuilds} "
                f"reuses={stats.reuses} (reuse ratio {stats.reuse_ratio:.2f}, "
                f"acceptance {stats.acceptance_ratio:.2f})",
                file=sys.stderr,
            )
    if len(results) == 2:
        print(comparison_report(results["ddm"], results["dlb"],
                                title=preset.description))
    else:
        ((label, result),) = results.items()
        print(series_preview(result.steps, result.tt, label=f"{label} Tt [s]"))
        print()
        for key, value in result.summary().items():
            print(f"  {key}: {value:.6g}")
    for label, result in results.items():
        print()
        print(phase_breakdown(result.timing,
                              title=f"{label}: per-phase step-time breakdown"))
    if obs is not None:
        if obs.trace is not None:
            obs.trace.write(args.trace)
            print(f"wrote {len(obs.trace)} trace events to {args.trace}",
                  file=sys.stderr)
        if obs.metrics is not None:
            obs.metrics.write(args.metrics)
            print(f"wrote {len(obs.metrics)} metrics to {args.metrics}",
                  file=sys.stderr)
        if args.profile and obs.profiler is not None:
            print()
            print(obs.profiler.table())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    print(
        f"boundary experiment: m={args.m}, P={args.pes}, rho={args.density}, "
        f"{args.reps} repetitions",
        file=sys.stderr,
    )
    experiment = run_boundary_experiment(
        args.m, args.pes, args.density, n_repetitions=args.reps, n_steps=args.steps
    )
    if experiment.mean_point is None:
        print("no divergence detected: DLB balanced the whole sweep "
              f"({experiment.n_failed} runs)")
        return 0
    point = experiment.mean_point
    theory = float(upper_bound(args.m, point.n))
    rows = [
        ("detected boundary points", f"{len(experiment.points)}/{args.reps}"),
        ("mean boundary step", point.step),
        ("concentration factor n", f"{point.n:.3f}"),
        ("C0/C at boundary (E)", f"{point.c0_ratio:.4f}"),
        ("theoretical bound f(m,n) (T)", f"{theory:.4f}"),
        ("ratio E/T", f"{point.c0_ratio / theory:.3f}"),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    n = np.linspace(args.n_min, args.n_max, args.points)
    rows = []
    for value in n:
        rows.append(
            (f"{value:.2f}",)
            + tuple(f"{float(upper_bound(m, value)):.4f}" for m in (2, 3, 4))
        )
    print(format_table(["n", "f(2,n)", "f(3,n)", "f(4,n)"], rows,
                       title="Theoretical upper bounds (Equations 9-11)"))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    tau = calibrate_tau_pair(n_particles=args.particles, repeats=args.repeats)
    print(f"measured tau_pair on this host: {tau:.3e} s per candidate pair")
    print("use it via:  MachineConfig(tau_pair=%.3e)" % tau)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic load balancing with permanent cells for parallel MD "
        "(Hayashi & Horiguchi, IPPS 2000) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list named workload presets").set_defaults(
        func=_cmd_presets
    )

    run = sub.add_parser("run", help="run a preset (DDM / DLB-DDM / both)")
    run.add_argument("preset", help="preset name (see `repro presets`)")
    run.add_argument("--mode", choices=["ddm", "dlb", "both"], default="both")
    run.add_argument("--steps", type=int, default=None)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--record-interval", type=int, default=20)
    run.add_argument(
        "--backend",
        choices=["kdtree", "cells", "verlet"],
        default="kdtree",
        help="pair-search backend (verlet caches the list across steps)",
    )
    run.add_argument(
        "--skin",
        type=float,
        default=0.4,
        help="Verlet-list skin radius (verlet backend only)",
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON timeline (Perfetto-loadable)",
    )
    run.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write the metrics registry (.prom text, or JSON lines for "
        ".json/.jsonl paths)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print the host kernel wall-clock profile after the run",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="run one effective-range experiment")
    sweep.add_argument("--m", type=int, default=3)
    sweep.add_argument("--pes", type=int, default=9)
    sweep.add_argument("--density", type=float, default=0.256)
    sweep.add_argument("--reps", type=int, default=4)
    sweep.add_argument("--steps", type=int, default=110)
    sweep.set_defaults(func=_cmd_sweep)

    bounds = sub.add_parser("bounds", help="print the theoretical bounds f(m, n)")
    bounds.add_argument("--n-min", type=float, default=1.0)
    bounds.add_argument("--n-max", type=float, default=4.0)
    bounds.add_argument("--points", type=int, default=13)
    bounds.set_defaults(func=_cmd_bounds)

    calibrate = sub.add_parser(
        "calibrate", help="measure this host's per-pair force cost"
    )
    calibrate.add_argument("--particles", type=int, default=4096)
    calibrate.add_argument("--repeats", type=int, default=3)
    calibrate.set_defaults(func=_cmd_calibrate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
