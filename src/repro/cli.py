"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``presets``
    List the named workload presets.
``run``
    Run a preset as DDM and/or DLB-DDM and print the comparison.
``sweep``
    Run one effective-range boundary experiment (Figure 10 style).  A thin
    alias over the campaign engine: repetitions execute as campaign runs
    (optionally in parallel and against a persistent store).
``campaign``
    Drive named experiment campaigns: ``run``/``resume`` a grid through the
    persistent run store, ``status`` and ``report`` what is stored, ``list``
    the built-ins, ``search`` the DLB boundary by bisection.
``bounds``
    Print the theoretical upper bounds f(m, n) over a range of n.
``calibrate``
    Measure this host's per-pair force cost for MachineConfig.tau_pair.
``serve``
    Run the simulation service: the asyncio HTTP/JSON API over the
    exactly-once run store (submit / status / stream / result / metrics).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from . import api
from .campaign import (
    CampaignSpec,
    RunStore,
    bisect_boundary,
    campaign_names,
    campaign_report,
    get_campaign,
    render_report,
    run_campaign,
)
from .config import BALANCER_NAMES, KERNEL_NAMES, RunConfig
from .core.results import write_result_json
from .engine import ENGINE_NAMES
from .errors import (
    AnalysisError,
    ConfigurationError,
    FaultInjectionError,
    ReproError,
    SchemaError,
)
from .obs import (
    EventLog,
    MetricsRegistry,
    Observability,
    Profiler,
    TraceRecorder,
    read_events,
    summarize_events,
    validate_events,
)
from .parallel.costmodel import calibrate_tau_pair
from .reporting import (
    comparison_report,
    flight_report,
    format_table,
    phase_breakdown,
    series_preview,
)
from .theory.bounds import upper_bound
from .workloads.presets import PRESETS, get_preset


def host_events_path(path: str | Path) -> Path:
    """The sidecar file holding the host channel of an events log.

    ``run.events.jsonl`` -> ``run.events.host.jsonl``: the sim channel is
    the canonical, backend-independent record; host events (engine worker
    lifecycle, checkpoint writes) are real but machine-specific, so they
    live next door instead of breaking the sim file's byte-identity.
    """
    path = Path(path)
    return path.with_name(path.stem + ".host" + (path.suffix or ".jsonl"))


def _cmd_presets(_: argparse.Namespace) -> int:
    rows = [
        (p.name, p.n_particles, p.n_pes, p.m, p.steps, p.description)
        for p in PRESETS.values()
    ]
    print(format_table(["name", "N", "PEs", "m", "steps", "description"], rows))
    return 0


def _build_observability(args: argparse.Namespace) -> Observability | None:
    """Assemble the ``run`` command's observability bundle from its flags."""
    want_trace = getattr(args, "trace", None) is not None
    want_metrics = getattr(args, "metrics", None) is not None
    want_profile = bool(getattr(args, "profile", False))
    want_events = getattr(args, "events", None) is not None
    if not (want_trace or want_metrics or want_profile or want_events):
        return None
    recorder = TraceRecorder() if want_trace else None
    registry = MetricsRegistry() if want_metrics else None
    profiler = Profiler(trace=recorder, registry=registry)
    obs = Observability(
        trace=recorder,
        metrics=registry,
        profiler=profiler,
        events=EventLog() if want_events else None,
    )
    if want_metrics and getattr(args, "metrics_every", 0):
        obs.metrics_path = args.metrics
        obs.metrics_every = args.metrics_every
    return obs


def _cmd_run(args: argparse.Namespace) -> int:
    preset = get_preset(args.preset)
    steps = args.steps if args.steps is not None else preset.steps
    results = {}
    modes = {"ddm": False, "dlb": True}
    selected = modes if args.mode == "both" else {args.mode: modes[args.mode]}
    stateful = (
        args.checkpoint_dir or args.resume
        or args.checkpoint_every or args.kill_after is not None
    )
    if stateful and len(selected) != 1:
        print(
            "error: --checkpoint-dir/--checkpoint-every/--resume/--kill-after "
            "need a single mode (--mode ddm or --mode dlb)",
            file=sys.stderr,
        )
        return 2
    if args.events and len(selected) != 1:
        # A second runner would restart the (step, seq) clock at step 0 and
        # break the log's non-decreasing-step contract.
        print(
            "error: --events records one run per file; pick a single mode "
            "(--mode ddm or --mode dlb)",
            file=sys.stderr,
        )
        return 2
    if args.metrics_every and not args.metrics:
        print("error: --metrics-every needs --metrics FILE", file=sys.stderr)
        return 2
    fault_plan = None
    if args.faults:
        try:
            fault_plan = api.load_faults(args.faults)
        except FaultInjectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    obs = _build_observability(args)
    if obs is not None and obs.trace is not None:
        for pid, label in enumerate(selected):
            obs.trace.add_process(pid, f"{label} (simulated clock)", sort_index=pid)
    run_config = RunConfig(
        steps=steps,
        seed=args.seed,
        record_interval=args.record_interval,
        force_backend=args.backend,
        skin=args.skin,
        kernel=args.kernel,
        balancer=args.balancer,
    )
    audit = (
        api.AuditPolicy(every=args.audit_every, policy=args.audit_policy)
        if args.audit_invariants
        else None
    )
    ckpt_dir = args.resume or args.checkpoint_dir
    checkpoints = (
        api.CheckpointPolicy(
            directory=ckpt_dir,
            every=args.checkpoint_every,
            resume=bool(args.resume),
        )
        if ckpt_dir
        else None
    )
    stop_after = None
    killed_at = None
    if args.kill_after is not None and args.kill_after < steps:
        stop_after = args.kill_after
        killed_at = args.kill_after
    for trace_pid, (label, dlb_enabled) in enumerate(selected.items()):
        print(f"running {label} ({steps} steps) ...", file=sys.stderr)
        try:
            result = api.simulate(
                args.preset,
                run=run_config,
                dlb=dlb_enabled,
                engine=args.engine,
                engine_workers=args.engine_workers,
                observability=obs,
                faults=fault_plan,
                audit=audit,
                checkpoints=checkpoints,
                trace_pid=trace_pid,
                stop_after=stop_after,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        results[label] = result
        if result.meta.get("resumed_at") is not None:
            print(
                f"  {label}: resumed from checkpoint at step "
                f"{result.meta['resumed_at']}",
                file=sys.stderr,
            )
        stats = result.meta.get("neighbor_stats") or {}
        if args.backend == "verlet":
            print(
                f"  {label}: pair-search rebuilds={stats['rebuilds']} "
                f"reuses={stats['reuses']} (reuse ratio {stats['reuse_ratio']:.2f}, "
                f"acceptance {stats['acceptance_ratio']:.2f})",
                file=sys.stderr,
            )
        audit_summary = result.meta.get("audit")
        if audit_summary is not None:
            print(
                f"  {label}: invariants audited {audit_summary['audits']} times, "
                f"{audit_summary['violations']} violation(s)",
                file=sys.stderr,
            )
    if args.result_json:
        payload = {
            "runs": {
                label: api.result_payload(result)
                for label, result in results.items()
            },
            "killed_at": killed_at,
        }
        write_result_json(args.result_json, payload)
        print(f"wrote result summary to {args.result_json}", file=sys.stderr)
    events = obs.events if obs is not None else None
    if events is not None:
        # Written even on the --kill-after path: the partial file is a valid
        # prefix, and the resumed run rewrites it byte-identically complete.
        events.write(args.events, channel="sim")
        host_path = host_events_path(args.events)
        events.write(host_path, channel="host")
        print(
            f"wrote {len(events)} events to {args.events} "
            f"(+{len(events.host_records)} host events to {host_path})",
            file=sys.stderr,
        )
    if killed_at is not None:
        print(
            f"killed after step {killed_at} (simulated crash for chaos testing); "
            "resume with --resume",
            file=sys.stderr,
        )
        return 3
    if len(results) == 2:
        print(comparison_report(results["ddm"], results["dlb"],
                                title=preset.description))
    else:
        ((label, result),) = results.items()
        print(series_preview(result.steps, result.tt, label=f"{label} Tt [s]"))
        print()
        for key, value in result.summary().items():
            print(f"  {key}: {value:.6g}")
    for label, result in results.items():
        print()
        print(phase_breakdown(
            result.timing,
            title=f"{label}: per-phase step-time breakdown",
            neighbor_stats=result.meta.get("neighbor_stats"),
            profiler=obs.profiler if obs is not None and args.profile else None,
        ))
    if events is not None:
        print()
        print(flight_report(events.records))
    if obs is not None:
        if obs.trace is not None:
            obs.trace.write(args.trace)
            print(f"wrote {len(obs.trace)} trace events to {args.trace}",
                  file=sys.stderr)
        if obs.metrics is not None:
            obs.metrics.write(args.metrics)
            print(f"wrote {len(obs.metrics)} metrics to {args.metrics}",
                  file=sys.stderr)
        if args.profile and obs.profiler is not None:
            print()
            print(obs.profiler.table())
    return 0


def _sweep_campaign(args: argparse.Namespace) -> CampaignSpec:
    """The one-point boundary campaign behind ``repro sweep``.

    Seeds match the pre-campaign serial driver exactly (raw ``--seed``, no
    density/PE offsets), so the sweep's numbers are unchanged by the engine.
    ``--replay-seed`` instead runs exactly one repetition with the given
    schedule seed -- the value ``campaign report`` prints per repetition.
    """
    from .campaign import RunSpec

    name = f"sweep-m{args.m}-p{args.pes}-rho{args.density}"
    if args.replay_seed is not None:
        run = RunSpec(
            m=args.m, n_pes=args.pes, density=args.density,
            n_steps=args.steps, seed=args.replay_seed,
        )
        return CampaignSpec(
            name=name, runs=(run,),
            description="single-repetition replay from a stored seed",
        )
    return CampaignSpec.boundary_grid(
        name,
        m_values=(args.m,),
        pe_counts=(args.pes,),
        densities=(args.density,),
        n_repetitions=args.reps,
        n_steps=args.steps,
        seed=args.seed,
        density_seed_offset=False,
        description="ad-hoc sweep via the campaign engine",
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    campaign = _sweep_campaign(args)
    print(
        f"boundary experiment: m={args.m}, P={args.pes}, rho={args.density}, "
        f"{len(campaign)} repetitions",
        file=sys.stderr,
    )
    with RunStore(args.dir) as store:
        summary = run_campaign(campaign, store, workers=args.workers)
        report = campaign_report(store, campaign.name)
    (group,) = report.boundary_groups or (None,)
    if args.json:
        payload = {
            "m": args.m,
            "pes": args.pes,
            "density": args.density,
            "summary": summary.to_dict(),
            "repetitions": [dict(rep) for rep in group.repetitions] if group else [],
        }
        if group is not None:
            for key in ("n", "c0_ratio", "et_ratio"):
                stats = group.mean_std(key)
                payload[key] = (
                    {"mean": stats[0], "std": stats[1]} if stats else None
                )
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if group is None or not group.points:
        n_runs = group.n_failed if group else len(campaign)
        print("no divergence detected: DLB balanced the whole sweep "
              f"({n_runs} runs)")
        return 0
    rep_rows = [
        (
            index,
            rep["seed"],
            "yes" if rep["diverged"] else "no",
            f"{rep['n']:.3f}" if rep["diverged"] else "-",
            f"{rep['c0_ratio']:.4f}" if rep["diverged"] else "-",
            f"{rep['et_ratio']:.3f}" if rep.get("et_ratio") else "-",
        )
        for index, rep in enumerate(group.repetitions)
    ]
    print(format_table(
        ["rep", "seed", "diverged", "n", "C0/C (E)", "E/T"],
        rep_rows,
        title="per-repetition boundary points",
    ))
    n_stats = group.mean_std("n")
    c_stats = group.mean_std("c0_ratio")
    theory = float(upper_bound(args.m, n_stats[0]))
    rows = [
        ("detected boundary points",
         f"{len(group.points)}/{len(group.repetitions)}"),
        ("concentration factor n", f"{n_stats[0]:.3f} ± {n_stats[1]:.3f}"),
        ("C0/C at boundary (E)", f"{c_stats[0]:.4f} ± {c_stats[1]:.4f}"),
        ("theoretical bound f(m,n) (T)", f"{theory:.4f}"),
        ("ratio E/T", f"{c_stats[0] / theory:.3f}"),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _progress_printer(total: int):
    """A progress callback printing one stderr line per scheduling event."""
    state = {"done": 0}

    def progress(event: str, run_hash: str, spec) -> None:
        if event in ("done", "failed", "cached"):
            state["done"] += 1
        if event == "start":
            return
        print(
            f"  [{state['done']}/{total}] {event:9s} {run_hash} "
            f"({spec.kind} m={spec.m} P={spec.n_pes} rho={spec.density} "
            f"seed={spec.seed})",
            file=sys.stderr,
        )

    return progress


def _cmd_campaign(args: argparse.Namespace) -> int:
    verb = args.verb
    if verb == "list":
        rows = []
        for name in campaign_names():
            spec = get_campaign(name)
            rows.append((name, len(spec), spec.description))
        print(format_table(["name", "runs", "description"], rows,
                           title="built-in campaigns"))
        return 0

    if verb in ("run", "resume"):
        campaign = get_campaign(args.name)
        with RunStore(args.dir) as store:
            summary = run_campaign(
                campaign,
                store,
                workers=args.workers,
                timeout=args.timeout,
                retries=args.retries,
                stop_after=args.max_runs,
                progress=None if args.json else _progress_printer(len(campaign)),
                events_dir=args.events_dir,
            )
            if args.json:
                print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
            else:
                print(
                    f"campaign {campaign.name!r}: {summary.completed} completed, "
                    f"{summary.cached} cached, {summary.failed} failed, "
                    f"{summary.cancelled} cancelled in {summary.wall_s:.1f}s"
                )
        return 1 if summary.failed else 0

    if verb == "status":
        with RunStore(args.dir) as store:
            names = [args.name] if args.name else store.campaigns()
            counts = {name: store.status_counts(name) for name in names}
        if args.json:
            print(json.dumps(counts, indent=2, sort_keys=True))
        else:
            rows = [
                (name, c["done"], c["pending"], c["failed"],
                 c["quarantined"], sum(c.values()))
                for name, c in counts.items()
            ]
            print(format_table(
                ["campaign", "done", "pending", "failed", "quarantined",
                 "total"],
                rows, title="run store status",
            ))
        return 0

    if verb == "gc":
        statuses = tuple(
            status.strip() for status in args.status.split(",") if status.strip()
        )
        try:
            age_s = _parse_duration(args.older_than)
            with RunStore(args.dir) as store:
                evicted = store.evict_older_than(
                    age_s, statuses=statuses, campaign=args.name
                )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        removed_artifacts = 0
        for run_hash in evicted:
            removed_artifacts += _remove_run_artifacts(
                args.dir, run_hash, events_dir=args.events_dir
            )
        if args.json:
            print(json.dumps(
                {"evicted": evicted, "count": len(evicted),
                 "artifacts_removed": removed_artifacts},
                indent=2, sort_keys=True,
            ))
        else:
            print(
                f"evicted {len(evicted)} run(s) older than {args.older_than} "
                f"({removed_artifacts} artifact file(s) removed); evicted "
                f"runs re-execute on resubmission"
            )
        return 0

    if verb == "report":
        with RunStore(args.dir) as store:
            report = campaign_report(store, args.name)
        if args.json:
            print(json.dumps(
                {
                    "campaign": report.campaign,
                    "counts": report.counts,
                    "boundary": [
                        {
                            "m": g.m,
                            "n_pes": g.n_pes,
                            "density": g.density,
                            "seeds": list(g.seeds),
                            "repetitions": [dict(rep) for rep in g.repetitions],
                        }
                        for g in report.boundary_groups
                    ],
                    "presets": [dict(row) for row in report.preset_rows],
                },
                indent=2, sort_keys=True,
            ))
        else:
            print(render_report(report))
        return 0

    if verb == "search":
        with RunStore(args.dir) as store:
            result = bisect_boundary(
                args.m, args.pes, args.density,
                n_steps=args.steps, stride=args.stride, seed=args.seed,
                store=store,
            )
        if args.json:
            payload = {
                "m": result.m,
                "pes": result.n_pes,
                "density": result.density,
                "boundary_index": result.boundary_index,
                "point": list(result.point) if result.point else None,
                "n_probes": result.n_probes,
                "grid_size": len(result.grid),
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif result.found:
            n, c0 = result.point
            print(
                f"boundary at schedule level {result.boundary_index} "
                f"(n={n:.3f}, C0/C={c0:.4f}) in {result.n_probes} probes "
                f"(exhaustive scan: {len(result.grid)})"
            )
        else:
            print(f"no boundary found on the grid ({result.n_probes} probes)")
        return 0

    raise AssertionError(f"unhandled campaign verb {verb!r}")  # pragma: no cover


_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _parse_duration(text: str) -> float:
    """Parse ``90``/``90s``/``15m``/``2h``/``7d`` into seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _DURATION_UNITS:
        unit = _DURATION_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ReproError(
            f"unreadable duration {text!r} (use e.g. 90, 90s, 15m, 2h, 7d)"
        ) from None
    if value < 0:
        raise ReproError(f"duration must be >= 0, got {value}")
    return value * unit


def _remove_run_artifacts(
    store_dir: str, run_hash: str, events_dir: str | None = None
) -> int:
    """Delete an evicted run's checkpoint/event files; returns files removed."""
    from pathlib import Path

    removed = 0
    checkpoint_dir = Path(store_dir) / "checkpoints" / run_hash
    if checkpoint_dir.is_dir():
        for path in checkpoint_dir.iterdir():
            path.unlink(missing_ok=True)
            removed += 1
        try:
            checkpoint_dir.rmdir()
        except OSError:  # pragma: no cover - non-empty leftovers
            pass
    if events_dir is not None:
        base = Path(events_dir) / f"{run_hash}.events.jsonl"
        for path in (base, base.with_name(f"{run_hash}.events.host.jsonl")):
            if path.exists():
                path.unlink()
                removed += 1
    return removed


def _cmd_runs(args: argparse.Namespace) -> int:
    """The ``repro runs`` group: quarantine inspection and requeue."""
    verb = args.verb
    if verb == "quarantine":
        with RunStore(args.dir) as store:
            rows = store.quarantined_runs(args.name)
        if args.json:
            print(json.dumps(
                [
                    {
                        "run_id": stored.hash,
                        "campaign": stored.campaign,
                        "attempts": stored.attempts,
                        "failed_owners": list(stored.failed_owners),
                        "quarantine": stored.error_payload,
                    }
                    for stored in rows
                ],
                indent=2, sort_keys=True,
            ))
        else:
            table = [
                (
                    stored.hash,
                    stored.campaign,
                    stored.attempts,
                    len(stored.failed_owners),
                    (stored.error_payload or {}).get("reason", ""),
                )
                for stored in rows
            ]
            print(format_table(
                ["run", "campaign", "attempts", "instances", "reason"],
                table, title="quarantined runs",
            ))
        return 0

    if verb == "requeue":
        with RunStore(args.dir) as store:
            ok = store.requeue_quarantined(args.hash)
        if not ok:
            print(
                f"error: run {args.hash!r} is not quarantined in {args.dir}",
                file=sys.stderr,
            )
            return 2
        print(f"run {args.hash} requeued as pending (failure history cleared)")
        return 0

    raise AssertionError(f"unhandled runs verb {verb!r}")  # pragma: no cover


def _bounds_grid(args: argparse.Namespace) -> tuple[np.ndarray, dict[int, list[float]]]:
    n = np.linspace(args.n_min, args.n_max, args.points)
    curves = {m: [float(upper_bound(m, value)) for value in n] for m in (2, 3, 4)}
    return n, curves


def _cmd_bounds(args: argparse.Namespace) -> int:
    n, curves = _bounds_grid(args)
    if args.json:
        print(json.dumps(
            {"n": [float(v) for v in n]}
            | {f"f{m}": values for m, values in curves.items()},
            indent=2, sort_keys=True,
        ))
        return 0
    rows = []
    for i, value in enumerate(n):
        rows.append(
            (f"{value:.2f}",) + tuple(f"{curves[m][i]:.4f}" for m in (2, 3, 4))
        )
    print(format_table(["n", "f(2,n)", "f(3,n)", "f(4,n)"], rows,
                       title="Theoretical upper bounds (Equations 9-11)"))
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    try:
        records = read_events(args.file)
        validate_events(records, source=args.file)
    except (OSError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.verb == "tail":
        for record in records[-args.lines:] if args.lines > 0 else []:
            print(json.dumps(record, sort_keys=True, separators=(",", ":")))
        return 0
    if args.json:
        print(json.dumps(summarize_events(records), indent=2, sort_keys=True))
    else:
        print(flight_report(records, title=f"Flight recorder: {args.file}"))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .dlb.explain import explain_events, render_explanation

    try:
        records = read_events(args.events)
        validate_events(records, source=args.events)
        decisions = explain_events(records, step=args.step)
    except (OSError, SchemaError, AnalysisError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not decisions:
        print("no balancer decisions recorded "
              "(DDM run, or the balancer never fired)")
        return 0
    for index, decision in enumerate(decisions):
        if index:
            print()
        print(render_explanation(decision))
    return 0 if all(decision.matches for decision in decisions) else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    tau = calibrate_tau_pair(n_particles=args.particles, repeats=args.repeats)
    print(f"measured tau_pair on this host: {tau:.3e} s per candidate pair")
    print("use it via:  MachineConfig(tau_pair=%.3e)" % tau)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service pulls in asyncio plumbing no other
    # subcommand needs.
    from .service import ServiceConfig, serve

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    try:
        serve(ServiceConfig(
            host=args.host,
            port=args.port,
            store_dir=args.dir,
            workers=args.workers,
            queue_size=args.queue_size,
            run_timeout=args.timeout,
            retries=args.retries,
            events_dir=args.events_dir,
            lease_ttl=args.lease_ttl if args.lease_ttl > 0 else None,
            reap_interval=args.reap_interval,
            max_attempts=args.max_attempts,
            checkpoint_every=args.checkpoint_every,
            result_ttl_s=(
                _parse_duration(args.result_ttl)
                if args.result_ttl is not None else None
            ),
            gc_interval_s=args.gc_interval,
        ))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic load balancing with permanent cells for parallel MD "
        "(Hayashi & Horiguchi, IPPS 2000) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list named workload presets").set_defaults(
        func=_cmd_presets
    )

    run = sub.add_parser("run", help="run a preset (DDM / DLB-DDM / both)")
    run.add_argument("preset", help="preset name (see `repro presets`)")
    run.add_argument("--mode", choices=["ddm", "dlb", "both"], default="both")
    run.add_argument("--steps", type=int, default=None)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--record-interval", type=int, default=20)
    run.add_argument(
        "--backend",
        choices=["kdtree", "cells", "verlet"],
        default="kdtree",
        help="pair-search backend (verlet caches the list across steps)",
    )
    run.add_argument(
        "--skin",
        type=float,
        default=0.4,
        help="Verlet-list skin radius (verlet backend only)",
    )
    run.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help="force-kernel tier: numpy (full-list reference), half "
        "(cache-blocked half-neighbour list, bit-identical), jit "
        "(numba-compiled; errors when numba is missing) or auto (jit when "
        "numba imports, silently half otherwise); default honours "
        "the REPRO_KERNEL environment variable",
    )
    run.add_argument(
        "--balancer",
        choices=list(BALANCER_NAMES),
        default=None,
        help="load-balancer strategy: permanent (the paper's permanent-cell "
        "protocol), diffusion (nearest-neighbour load diffusion), sfc "
        "(space-filling-curve repartition), none (static decomposition "
        "baseline) or auto (permanent); default honours the REPRO_BALANCER "
        "environment variable",
    )
    run.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default=None,
        help="execution engine for the force path (default: classic in-process; "
        "multiprocess shards virtual PEs over worker processes, bit-identical "
        "results by construction)",
    )
    run.add_argument(
        "--engine-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-process count for --engine multiprocess "
        "(default: min(4, cpu count))",
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON timeline (Perfetto-loadable)",
    )
    run.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write the metrics registry (.prom text, or JSON lines for "
        ".json/.jsonl paths)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print the host kernel wall-clock profile after the run",
    )
    run.add_argument(
        "--metrics-every",
        type=int,
        default=0,
        metavar="N",
        help="also flush the metrics registry to the --metrics file every N "
        "steps (live telemetry for long runs; 0 = final write only)",
    )
    run.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="record the flight recorder to FILE as JSONL (sim channel; host "
        "events go to a .host sidecar); single mode only — inspect with "
        "`repro events` and `repro explain`",
    )
    run.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help="JSON fault plan: seeded per-PE slowdowns/jitter/stalls, per-tag "
        "message loss/delay/duplication, dropped DLB timing reports",
    )
    run.add_argument(
        "--audit-invariants",
        action="store_true",
        help="validate the permanent-cell structural invariants while running",
    )
    run.add_argument(
        "--audit-every",
        type=int,
        default=1,
        metavar="N",
        help="invariant-audit cadence in steps (default: every step)",
    )
    run.add_argument(
        "--audit-policy",
        choices=["raise", "log"],
        default="raise",
        help="on violation: raise InvariantViolation (default) or log and continue",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for crash-safe snapshots (single mode only)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="snapshot cadence in steps (0 = never; needs --checkpoint-dir)",
    )
    run.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="resume from the newest checkpoint in DIR (bit-identical to an "
        "uninterrupted run)",
    )
    run.add_argument(
        "--kill-after",
        type=int,
        default=None,
        metavar="K",
        help="simulate a crash: stop after step K with exit code 3 "
        "(checkpoints already written remain usable)",
    )
    run.add_argument(
        "--result-json",
        metavar="FILE",
        default=None,
        help="write summary + bit-exact digest (for comparing resumed runs)",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep",
        help="run one effective-range experiment (campaign-engine alias)",
    )
    sweep.add_argument("--m", type=int, default=3)
    sweep.add_argument("--pes", type=int, default=9)
    sweep.add_argument("--density", type=float, default=0.256)
    sweep.add_argument("--reps", type=int, default=4)
    sweep.add_argument("--steps", type=int, default=110)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--replay-seed", type=int, default=None,
        help="replay exactly one repetition with this schedule seed "
        "(the per-repetition seed `campaign report` prints)",
    )
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = run inline)")
    sweep.add_argument("--dir", default=None,
                       help="persistent run-store directory (default: in-memory)")
    sweep.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    sweep.set_defaults(func=_cmd_sweep)

    campaign = sub.add_parser(
        "campaign", help="run, resume and report experiment campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="verb", required=True)

    def _store_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", default=".campaigns",
                       help="run-store directory (default: .campaigns)")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")

    campaign_sub.add_parser("list", help="list built-in campaigns").set_defaults(
        func=_cmd_campaign
    )
    for verb, help_text in (
        ("run", "execute a campaign (cached runs are skipped)"),
        ("resume", "synonym of run: continue an interrupted campaign"),
    ):
        p = campaign_sub.add_parser(verb, help=help_text)
        p.add_argument("name", help="campaign name (see `repro campaign list`)")
        p.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = run inline)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock budget in seconds")
        p.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failing run")
        p.add_argument("--max-runs", type=int, default=None,
                       help="stop after this many new completions (CI smoke)")
        p.add_argument("--events-dir", metavar="DIR", default=None,
                       help="record each run's flight-recorder log as "
                       "DIR/<run_hash>.events.jsonl (boundary runs excluded)")
        _store_args(p)
        p.set_defaults(func=_cmd_campaign)
    status = campaign_sub.add_parser("status", help="run-store status counts")
    status.add_argument("name", nargs="?", default=None)
    _store_args(status)
    status.set_defaults(func=_cmd_campaign)
    report = campaign_sub.add_parser("report", help="aggregate stored payloads")
    report.add_argument("name")
    _store_args(report)
    report.set_defaults(func=_cmd_campaign)
    gc = campaign_sub.add_parser(
        "gc", help="evict stored results older than a cutoff (result TTL)"
    )
    gc.add_argument("name", nargs="?", default=None,
                    help="restrict eviction to one campaign")
    gc.add_argument("--older-than", required=True, metavar="AGE",
                    help="evict terminal runs not updated for AGE "
                    "(e.g. 90s, 15m, 2h, 7d)")
    gc.add_argument("--status", default="done",
                    help="comma-separated terminal statuses to evict "
                    "(default: done)")
    gc.add_argument("--events-dir", metavar="DIR", default=None,
                    help="also delete the evicted runs' event logs from DIR")
    _store_args(gc)
    gc.set_defaults(func=_cmd_campaign)
    search = campaign_sub.add_parser(
        "search", help="bisect the DLB effective-range boundary"
    )
    search.add_argument("--m", type=int, default=3)
    search.add_argument("--pes", type=int, default=9)
    search.add_argument("--density", type=float, default=0.256)
    search.add_argument("--steps", type=int, default=100)
    search.add_argument("--stride", type=int, default=4)
    search.add_argument("--seed", type=int, default=0)
    _store_args(search)
    search.set_defaults(func=_cmd_campaign)

    events = sub.add_parser(
        "events", help="inspect a flight-recorder event log (JSONL)"
    )
    events_sub = events.add_subparsers(dest="verb", required=True)
    tail = events_sub.add_parser("tail", help="print the last N event records")
    tail.add_argument("file", help="events JSONL file (from `repro run --events`)")
    tail.add_argument("-n", "--lines", type=int, default=10,
                      help="records to print (default: 10)")
    tail.set_defaults(func=_cmd_events)
    ev_summary = events_sub.add_parser(
        "summary", help="validate and aggregate an event log"
    )
    ev_summary.add_argument("file",
                            help="events JSONL file (from `repro run --events`)")
    ev_summary.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON instead of a table")
    ev_summary.set_defaults(func=_cmd_events)

    explain = sub.add_parser(
        "explain",
        help="replay logged balancer decisions and explain why cells moved",
    )
    explain.add_argument("events",
                         help="events JSONL file (from `repro run --events`)")
    explain.add_argument(
        "--step", type=int, default=None, metavar="K",
        help="explain only the decision at step K (default: every decision); "
        "exit code 1 when any replay diverges from the log",
    )
    explain.set_defaults(func=_cmd_explain)

    bounds = sub.add_parser("bounds", help="print the theoretical bounds f(m, n)")
    bounds.add_argument("--n-min", type=float, default=1.0)
    bounds.add_argument("--n-max", type=float, default=4.0)
    bounds.add_argument("--points", type=int, default=13)
    bounds.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")
    bounds.set_defaults(func=_cmd_bounds)

    calibrate = sub.add_parser(
        "calibrate", help="measure this host's per-pair force cost"
    )
    calibrate.add_argument("--particles", type=int, default=4096)
    calibrate.add_argument("--repeats", type=int, default=3)
    calibrate.set_defaults(func=_cmd_calibrate)

    serve = sub.add_parser(
        "serve",
        help="run the simulation service (HTTP/JSON API over the run store)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 = ephemeral; default: 8321)")
    serve.add_argument("--dir", default=".campaigns/service",
                       help="run-store directory (default: .campaigns/service)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent worker slots (default: 2)")
    serve.add_argument("--queue-size", type=int, default=64,
                       help="bounded submission queue; a full queue answers "
                       "429 with Retry-After (default: 64)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock budget in seconds")
    serve.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failing run (default: 1)")
    serve.add_argument("--events-dir", metavar="DIR", default=None,
                       help="record flight-recorder logs for submissions "
                       "that ask (record_events: true), served from "
                       "/v1/runs/<id>/events")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       help="run-lease TTL in seconds; siblings sharing the "
                       "store reclaim runs whose lease expires (0 disables "
                       "leases and fleet failover; default: 30)")
    serve.add_argument("--reap-interval", type=float, default=None,
                       help="lease renewal / reaper cadence in seconds "
                       "(default: lease TTL / 3)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="distinct instances that must fail a run before "
                       "it is quarantined terminally (default: 3)")
    serve.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="checkpoint preset runs every N steps so a "
                       "reclaimed run resumes mid-flight (default: 0 = off)")
    serve.add_argument("--result-ttl", metavar="AGE", default=None,
                       help="evict stored results older than AGE (e.g. 2h, "
                       "7d) on a periodic sweep (default: keep forever)")
    serve.add_argument("--gc-interval", type=float, default=60.0,
                       help="seconds between result-TTL sweeps (default: 60)")
    serve.set_defaults(func=_cmd_serve)

    runs = sub.add_parser(
        "runs", help="inspect and manage individual stored runs"
    )
    runs_sub = runs.add_subparsers(dest="verb", required=True)
    quarantine = runs_sub.add_parser(
        "quarantine",
        help="list quarantined runs with their structured error payloads",
    )
    quarantine.add_argument("name", nargs="?", default=None,
                            help="restrict to one campaign")
    quarantine.add_argument("--dir", default=".campaigns/service",
                            help="run-store directory "
                            "(default: .campaigns/service)")
    quarantine.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON instead of a table")
    quarantine.set_defaults(func=_cmd_runs)
    requeue = runs_sub.add_parser(
        "requeue", help="lift a run's quarantine (back to pending)"
    )
    requeue.add_argument("hash", help="the quarantined run's hash")
    requeue.add_argument("--dir", default=".campaigns/service",
                         help="run-store directory "
                         "(default: .campaigns/service)")
    requeue.set_defaults(func=_cmd_runs)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
