"""CSV export of experiment series (the figures' underlying data)."""

from __future__ import annotations

import csv
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError


def write_csv(path: str | Path, columns: Mapping[str, Sequence[object]]) -> Path:
    """Write named, equal-length columns to a CSV file; returns the path."""
    if not columns:
        raise ConfigurationError("write_csv needs at least one column")
    lengths = {name: len(values) for name, values in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ConfigurationError(f"column lengths differ: {lengths}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = list(columns)
    arrays = [np.asarray(columns[n]) for n in names]
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for row in zip(*arrays):
            writer.writerow([x.item() if hasattr(x, "item") else x for x in row])
    return path
