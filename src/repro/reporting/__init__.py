"""Reporting helpers: ASCII tables, CSV series, experiment summaries."""

from .loadmap import imbalance_summary, load_map
from .report import comparison_report, series_preview
from .series import write_csv
from .tables import format_table

__all__ = [
    "comparison_report",
    "format_table",
    "imbalance_summary",
    "load_map",
    "series_preview",
    "write_csv",
]
