"""Reporting helpers: ASCII tables, CSV series, experiment summaries."""

from .flight import flight_report
from .loadmap import imbalance_summary, load_map
from .phases import kernel_scope_rows, phase_breakdown, phase_shares
from .report import balancer_comparison_report, comparison_report, series_preview
from .series import write_csv
from .tables import format_table

__all__ = [
    "balancer_comparison_report",
    "comparison_report",
    "flight_report",
    "format_table",
    "imbalance_summary",
    "kernel_scope_rows",
    "load_map",
    "phase_breakdown",
    "phase_shares",
    "series_preview",
    "write_csv",
]
