"""Per-phase breakdown of a run's simulated step time.

Splits the mean ``Tt`` into the phases the accountant charges -- force,
halo communication, DLB protocol, and everything else (integration,
cell-list upkeep) -- using the aggregate columns of a
:class:`~repro.parallel.instrumentation.TimingLog`. The "other" share is
the remainder ``Tt - Fmax - comm_max - dlb``, i.e. whatever the critical
PE spent outside the three named phases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..parallel.instrumentation import TimingLog
from .tables import format_table

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..obs.profiler import Profiler


def phase_shares(log: TimingLog) -> dict[str, float]:
    """Mean seconds per step spent in each phase (keys: force/halo-comm/dlb/other/total)."""
    tt = float(log.tt.mean())
    force = float(log.fmax.mean())
    comm = float(log.comm_max.mean())
    dlb = float(log.dlb_time.mean())
    other = max(0.0, tt - force - comm - dlb)
    return {
        "force": force,
        "halo-comm": comm,
        "dlb": dlb,
        "other": other,
        "total": tt,
    }


def kernel_scope_rows(profiler: "Profiler") -> list[tuple[str, int, float, float]]:
    """Discover ``kernel.<name>`` profiler scopes, driver- and worker-side.

    Force kernels time themselves under ``kernel.<tier>`` (see
    ``repro.md.forces``), and multiprocess engines fold worker profiles back
    in under a ``workerN.`` prefix — so the full vocabulary is dynamic, not a
    fixed tier list. Returns ``(scope, calls, total_s, mean_s)`` rows with
    worker prefixes merged into their base scope, sorted by total seconds
    descending; new kernel backends appear with no reporting change.
    """
    merged: dict[str, tuple[int, float]] = {}
    for name, stat in profiler.stats.items():
        base = name
        if base.startswith("worker") and ".kernel." in base:
            base = base.split(".", 1)[1]
        if not base.startswith("kernel."):
            continue
        count, total = merged.get(base, (0, 0.0))
        merged[base] = (count + stat.count, total + stat.total)
    return sorted(
        (
            (name, count, total, total / count if count else 0.0)
            for name, (count, total) in merged.items()
        ),
        key=lambda row: -row[2],
    )


def phase_breakdown(
    log: TimingLog,
    title: str | None = None,
    neighbor_stats: dict | None = None,
    profiler: "Profiler | None" = None,
) -> str:
    """ASCII table of the per-phase mean step time and its share of ``Tt``.

    ``neighbor_stats`` (the :meth:`NeighborStats.as_dict` payload surfaced in
    run metadata) appends a half-neighbour-list footer when a ``half``/``jit``
    kernel tier did the force work, so pair-acceptance accounting stays
    comparable across kernel backends. ``profiler`` (when given) appends one
    host wall-clock line per discovered ``kernel.<name>`` scope — the set is
    found dynamically via :func:`kernel_scope_rows`, so new kernel tiers show
    up without touching the reporting layer.
    """
    shares = phase_shares(log)
    total = shares["total"]
    rows = []
    for phase in ("force", "halo-comm", "dlb", "other"):
        seconds = shares[phase]
        share = seconds / total if total > 0 else np.nan
        rows.append((phase, f"{seconds:.6g}", f"{100.0 * share:5.1f}%"))
    rows.append(("total (Tt)", f"{total:.6g}", "100.0%"))
    table = format_table(
        ["phase", "mean s/step", "share"],
        rows,
        title=title or "Per-phase step-time breakdown",
    )
    half = (neighbor_stats or {}).get("half_list") or {}
    evaluated = int(half.get("pairs_evaluated", 0))
    if evaluated > 0:
        written = int(half.get("force_rows_written", 0))
        table += (
            f"\n  half-list kernel: {evaluated} pairs evaluated once -> "
            f"{written} force rows written (Newton-3 scatter x"
            f"{written / evaluated:.2f})"
        )
    if profiler is not None:
        for name, calls, total, mean in kernel_scope_rows(profiler):
            table += (
                f"\n  host {name}: {calls} calls, {total:.4g} s total "
                f"({mean:.3g} s/call)"
            )
    return table
