"""Flight-recorder report: an ASCII digest of one run's event log.

Renders what :func:`repro.obs.events.summarize_events` aggregates — event
counts per kind, the step span, lend/return traffic, fault and audit
tallies — plus the imbalance analytics the ``run.end`` record embeds
(max/mean ratio, the paper's parallel-efficiency estimate, straggler
attribution, and the cumulative DLB benefit versus the no-balance
counterfactual). This is the block behind ``repro events summary`` and the
flight section of ``repro run --events``.
"""

from __future__ import annotations

from .tables import format_table

__all__ = ["flight_report"]


def _fmt_seconds(value: float | None) -> str:
    return "-" if value is None else f"{value:.6g} s"


def flight_report(records: list[dict], title: str | None = None) -> str:
    """ASCII report of an event-record list (see :func:`read_events`)."""
    from ..obs.events import summarize_events

    summary = summarize_events(records)
    if summary["events"] == 0:
        return "flight recorder: no events recorded"
    kind_rows = [
        (kind, count) for kind, count in summary["kinds"].items()
    ]
    table = format_table(
        ["event kind", "count"],
        kind_rows,
        title=title or "Flight recorder: event summary",
    )
    span = f"steps {summary['first_step']}..{summary['last_step']}"
    lines = [
        table,
        f"  {summary['events']} events over {span}",
        f"  balancer traffic: {summary['lends']} lend(s), "
        f"{summary['returns']} return(s)",
    ]
    if summary["fault_messages"] or summary["fault_stalls"]:
        lines.append(
            f"  faults: {summary['fault_messages']} message perturbation(s), "
            f"{summary['fault_stalls']} compute stall(s)"
        )
    if summary["audits"]:
        lines.append(
            f"  audits: {summary['audits']} run, "
            f"{summary['audit_violations']} violation(s)"
        )
    imbalance = summary["imbalance"]
    if imbalance:
        lines.append(
            f"  imbalance: mean ratio {imbalance['mean_ratio']:.4f}, "
            f"efficiency {imbalance['mean_efficiency']:.4f}, "
            f"worst {imbalance['worst_ratio']:.4f} @ step "
            f"{imbalance['worst_step']}"
        )
        straggler = imbalance.get("top_straggler")
        if straggler is not None:
            counts = imbalance.get("straggler_counts") or []
            held = counts[straggler] if straggler < len(counts) else 0
            lines.append(
                f"  top straggler: PE {straggler} set the barrier on "
                f"{held}/{imbalance['steps']} step(s)"
            )
        benefit = imbalance.get("dlb_benefit_seconds")
        if benefit is not None:
            lines.append(
                f"  DLB benefit vs no-balance counterfactual: "
                f"{_fmt_seconds(benefit)} saved "
                f"({_fmt_seconds(imbalance['counterfactual_seconds'])} -> "
                f"{_fmt_seconds(imbalance['actual_seconds'])})"
            )
    return "\n".join(lines)
