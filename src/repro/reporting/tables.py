"""Plain-text table rendering for benchmark and experiment output."""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width ASCII table.

    Floats go through ``float_format``; everything else through ``str``.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
