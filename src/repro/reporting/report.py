"""Higher-level report builders used by examples and benchmarks."""

from __future__ import annotations

import numpy as np

from ..core.results import RunResult
from .tables import format_table


def series_preview(
    steps: np.ndarray, values: np.ndarray, n_points: int = 10, label: str = "value"
) -> str:
    """Down-sample a series into a small ASCII table for terminal display."""
    steps = np.asarray(steps)
    values = np.asarray(values)
    if len(steps) == 0:
        return f"(empty {label} series)"
    idx = np.unique(np.linspace(0, len(steps) - 1, min(n_points, len(steps))).astype(int))
    rows = [(int(steps[i]), float(values[i])) for i in idx]
    return format_table(["step", label], rows)


def comparison_report(ddm: RunResult, dlb: RunResult, title: str = "DDM vs DLB-DDM") -> str:
    """Side-by-side summary of a DDM run against its DLB-DDM counterpart.

    This is the textual form of Figure 5: the interesting outcome is the
    growth of DDM's per-step time against DLB-DDM's flat profile.
    """
    d = ddm.summary()
    b = dlb.summary()
    rows = []
    for key in ("tt_first", "tt_last", "tt_mean", "tt_max", "spread_last", "total_moves"):
        rows.append((key, d[key], b[key]))
    growth_ddm = d["tt_last"] / d["tt_first"] if d["tt_first"] > 0 else float("nan")
    growth_dlb = b["tt_last"] / b["tt_first"] if b["tt_first"] > 0 else float("nan")
    rows.append(("tt growth (last/first)", growth_ddm, growth_dlb))
    return format_table(["metric", "DDM", "DLB-DDM"], rows, title=title)


def balancer_comparison_report(
    results: "dict[str, RunResult | dict]", title: str = "Balancer comparison"
) -> str:
    """One row per balancer strategy, side by side over the same workload.

    ``results`` maps a strategy name (``permanent``, ``diffusion``, ``sfc``,
    ``none``, ...) to either a :class:`~repro.core.results.RunResult` or an
    already-computed summary dict (a campaign payload works directly). Rows
    keep insertion order, so callers control the comparison's reading order;
    the ``none`` baseline is the natural first row.
    """
    if not results:
        return f"(empty {title!r}: no balancer results)"
    rows = []
    for name, result in results.items():
        summary = result.summary() if isinstance(result, RunResult) else result
        tt_first = float(summary.get("tt_first", 0.0))
        tt_last = float(summary.get("tt_last", 0.0))
        growth = tt_last / tt_first if tt_first > 0 else float("nan")
        rows.append(
            (
                name,
                f"{float(summary.get('tt_mean', 0.0)):.5f}",
                f"{tt_last:.5f}",
                f"{float(summary.get('tt_max', 0.0)):.5f}",
                f"{float(summary.get('spread_last', 0.0)):.5f}",
                int(summary.get("total_moves", 0)),
                f"{growth:.3f}",
            )
        )
    return format_table(
        ["balancer", "tt_mean", "tt_last", "tt_max", "spread_last", "moves",
         "tt growth"],
        rows,
        title=title,
    )
