"""ASCII visualisation of the PE torus: who holds how much load.

Terminal-friendly heat maps of the per-PE load (or any per-PE scalar), laid
out on the 2-D torus -- handy when watching the balancer shuffle cells.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError

#: Shade ramp from idle to saturated.
SHADES = " .:-=+*#%@"


def load_map(values: np.ndarray, title: str | None = None) -> str:
    """Render per-PE values (length P, P square) as a shaded torus grid.

    Each PE shows its shade character plus its percentage of the maximum.
    """
    values = np.asarray(values, dtype=float)
    side = math.isqrt(len(values))
    if side * side != len(values):
        raise ConfigurationError(f"need a square PE count, got {len(values)}")
    top = float(values.max())
    lines = []
    if title:
        lines.append(title)
    for i in range(side):
        row = []
        for j in range(side):
            value = values[i * side + j]
            level = 0 if top <= 0 else value / top
            shade = SHADES[min(int(level * (len(SHADES) - 1)), len(SHADES) - 1)]
            row.append(f"[{shade}{value / top * 100 if top > 0 else 0:3.0f}%]")
        lines.append(" ".join(row))
    return "\n".join(lines)


def imbalance_summary(values: np.ndarray) -> str:
    """One-line imbalance statement: max/mean ratio and spread."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ConfigurationError("need at least one PE")
    mean = float(values.mean())
    if mean == 0:
        return "all PEs idle"
    return (
        f"max/mean = {values.max() / mean:.2f}, "
        f"min/mean = {values.min() / mean:.2f}, "
        f"spread = {(values.max() - values.min()):.3g}"
    )
