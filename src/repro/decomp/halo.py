"""Ghost-cell (halo) exchange accounting.

Each PE needs the particles of every cell adjacent to its domain but owned by
another PE. This module derives, from a flat cell-owner map and per-cell
particle counts, how many ghost cells / particles / neighbour messages each
PE's halo exchange involves -- the inputs of the communication cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DecompositionError
from ..md.celllist import FULL_STENCIL, CellList


@dataclass(frozen=True)
class HaloExchange:
    """Per-PE halo profile for one configuration.

    Attributes
    ----------
    ghost_cells:
        ``(P,)`` distinct cells each PE imports.
    ghost_particles:
        ``(P,)`` particles contained in those cells.
    messages:
        ``(P,)`` distinct neighbour PEs each PE receives from.
    """

    ghost_cells: np.ndarray
    ghost_particles: np.ndarray
    messages: np.ndarray


def compute_halo(
    cell_owner: np.ndarray,
    cell_list: CellList,
    counts_flat: np.ndarray,
    n_pes: int,
) -> HaloExchange:
    """Halo profile of an owner map.

    ``cell_owner`` is the flat ``(C,)`` map, ``counts_flat`` the flat per-cell
    particle counts. A ghost cell adjacent through several stencil offsets is
    imported once (real implementations deduplicate the ghost region).
    """
    n_cells = cell_list.n_cells
    if cell_owner.shape != (n_cells,):
        raise DecompositionError(f"owner map shape {cell_owner.shape} != ({n_cells},)")
    if counts_flat.shape != (n_cells,):
        raise DecompositionError(f"counts shape {counts_flat.shape} != ({n_cells},)")

    importer_chunks: list[np.ndarray] = []
    ghost_chunks: list[np.ndarray] = []
    for offset in FULL_STENCIL:
        if offset == (0, 0, 0):
            continue
        neighbor = cell_list.neighbor_ids(offset)
        cross = cell_owner != cell_owner[neighbor]
        if not cross.any():
            continue
        cells = np.flatnonzero(cross)
        importer_chunks.append(cell_owner[cells])
        ghost_chunks.append(neighbor[cells])

    ghost_cells = np.zeros(n_pes, dtype=np.int64)
    ghost_particles = np.zeros(n_pes, dtype=np.int64)
    messages = np.zeros(n_pes, dtype=np.int64)
    if not importer_chunks:
        return HaloExchange(ghost_cells, ghost_particles, messages)

    importers = np.concatenate(importer_chunks)
    ghosts = np.concatenate(ghost_chunks)
    # Deduplicate (importer, ghost cell) pairs: one import per ghost cell.
    keys = np.unique(importers.astype(np.int64) * n_cells + ghosts)
    imp = keys // n_cells
    cell = keys % n_cells
    ghost_cells += np.bincount(imp, minlength=n_pes)
    ghost_particles += np.bincount(imp, weights=counts_flat[cell], minlength=n_pes).astype(
        np.int64
    )
    # Message count: distinct (importer, source PE) pairs.
    src = cell_owner[cell]
    pair_keys = np.unique(imp * n_pes + src)
    messages += np.bincount(pair_keys // n_pes, minlength=n_pes)
    return HaloExchange(ghost_cells, ghost_particles, messages)


def halo_summary(halo: HaloExchange) -> dict[str, float]:
    """Aggregate statistics of a halo profile (for reports and tests)."""
    return {
        "max_ghost_cells": float(halo.ghost_cells.max(initial=0)),
        "mean_ghost_cells": float(halo.ghost_cells.mean()) if len(halo.ghost_cells) else 0.0,
        "max_ghost_particles": float(halo.ghost_particles.max(initial=0)),
        "max_messages": float(halo.messages.max(initial=0)),
    }
