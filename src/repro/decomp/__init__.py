"""Domain decomposition: cells, domains and cell-to-PE assignment.

Implements the three domain shapes of Figure 2 (plane, square pillar, cube)
with the square-pillar shape -- the paper's choice for DLB -- as the fully
featured one: the load balancer redistributes its cells one at a time, while
the permanent wall (a row and a column of full-z cell columns per domain)
pins the 8-neighbour structure.
"""

from .assignment import CellAssignment, ColumnAssignment
from .grid import ColumnGrid
from .halo import HaloExchange, halo_summary
from .partition import (
    cube_partition,
    pillar_partition,
    plane_partition,
)
from .shapes import domain_comm_volume, domain_shape_info
from .validation import check_eight_neighbor_property, contact_pairs

__all__ = [
    "CellAssignment",
    "ColumnAssignment",
    "ColumnGrid",
    "HaloExchange",
    "check_eight_neighbor_property",
    "contact_pairs",
    "cube_partition",
    "domain_comm_volume",
    "domain_shape_info",
    "halo_summary",
    "pillar_partition",
    "plane_partition",
]
