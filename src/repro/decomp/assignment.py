"""Mutable cell-to-PE assignment for square-pillar decompositions.

Tracks, for every cell, its *home* PE (the initial square-pillar owner,
which never changes) and its *holder* (the PE currently computing it, which
DLB may change). The redistribution unit is a single cell (Section 2.3 sends
one cell ``C_send`` per step); the permanent wall, however, is defined per
*column*: every cell whose cross-section column lies on the wall row/column
of its domain (Figure 3) is permanent and pinned to its home. Because walls
span the full z extent, any lending of movable cells keeps the 8-neighbour
property.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import DecompositionError, ProtocolError
from .grid import ColumnGrid
from .partition import expand_columns_to_cells, pillar_partition


def classify_permanent_columns(cells_per_side: int, n_pes: int) -> np.ndarray:
    """Boolean mask over *columns*: the permanent wall of each domain.

    Within each PE's ``m x m`` block (local coordinates ``u = cx mod m``,
    ``v = cy mod m``), the permanent columns are the wall row ``u = m-1`` and
    wall column ``v = m-1``: ``2m - 1`` columns, leaving ``(m-1)^2`` movable
    (Section 2.3: for m=2 a quarter of the domain is movable, for m=4 it is
    9/16). The wall sits on the high-coordinate edges because the protocol
    only lends cells toward lower-coordinate neighbours (Case 1).
    """
    side = math.isqrt(n_pes)
    if side * side != n_pes:
        raise DecompositionError(f"need square n_pes, got {n_pes}")
    if cells_per_side % side != 0:
        raise DecompositionError(f"need sqrt(P) | nc, got {side}, {cells_per_side}")
    m = cells_per_side // side
    cols = np.arange(cells_per_side**2)
    cx, cy = cols // cells_per_side, cols % cells_per_side
    u, v = cx % m, cy % m
    return (u == m - 1) | (v == m - 1)


class CellAssignment:
    """Who holds which cell, with DLB's structural invariants enforced."""

    def __init__(self, cells_per_side: int, n_pes: int) -> None:
        self.grid = ColumnGrid(cells_per_side)
        self.cells_per_side = int(cells_per_side)
        self.n_cells = self.cells_per_side**3
        self.n_pes = int(n_pes)
        self.pe_side = math.isqrt(n_pes)
        if self.pe_side * self.pe_side != n_pes:
            raise DecompositionError(f"need square n_pes, got {n_pes}")
        self.m = cells_per_side // self.pe_side
        column_home = pillar_partition(cells_per_side, n_pes)
        self.home = expand_columns_to_cells(column_home, cells_per_side)
        self.holder = self.home.copy()
        column_permanent = classify_permanent_columns(cells_per_side, n_pes)
        self.permanent = np.repeat(column_permanent, cells_per_side)

    # -- queries -----------------------------------------------------------

    def cells_of(self, pe: int) -> np.ndarray:
        """Cell ids currently held by ``pe``."""
        return np.flatnonzero(self.holder == pe)

    def cell_counts_per_pe(self) -> np.ndarray:
        """Number of cells each PE currently holds."""
        return np.bincount(self.holder, minlength=self.n_pes)

    def movable_at_home(self, pe: int) -> np.ndarray:
        """``pe``'s own movable cells that are currently at home."""
        return np.flatnonzero((self.home == pe) & (self.holder == pe) & ~self.permanent)

    def borrowed_by(self, pe: int, lender: int) -> np.ndarray:
        """Cells with home ``lender`` currently held by ``pe``."""
        return np.flatnonzero((self.home == lender) & (self.holder == pe))

    def cell_owner_map(self) -> np.ndarray:
        """The flat ``(nc^3,)`` holder map (alias for compatibility)."""
        return self.holder

    def column_of_cell(self, cell: int) -> int:
        """Cross-section column id of a flat cell id."""
        return cell // self.cells_per_side

    def cell_cross_section(self, cell: int) -> tuple[int, int, int]:
        """Cross-section coordinates and depth ``(cx, cy, z)`` of a cell."""
        nc = self.cells_per_side
        column, z = divmod(cell, nc)
        cx, cy = divmod(column, nc)
        return cx, cy, z

    def pe_coords(self, pe: int) -> tuple[int, int]:
        """Torus coordinates ``(i, j)`` of a flat PE id."""
        return pe // self.pe_side, pe % self.pe_side

    def pe_flat(self, i: int, j: int) -> int:
        """Flat PE id from torus coordinates (periodic)."""
        side = self.pe_side
        return (i % side) * side + (j % side)

    def lower_neighbors(self, pe: int) -> set[int]:
        """The three PEs a cell homed at ``pe`` may be lent to (Case 1)."""
        i, j = self.pe_coords(pe)
        return {
            self.pe_flat(i - 1, j - 1),
            self.pe_flat(i - 1, j),
            self.pe_flat(i, j - 1),
        }

    # -- mutations -----------------------------------------------------------

    def transfer(self, cell: int, to_pe: int) -> None:
        """Move ``cell`` to ``to_pe``, enforcing the DLB invariants.

        Raises :class:`ProtocolError` on moving a permanent cell, on a no-op
        transfer, or on placing a cell anywhere other than its home or one of
        the home's three lower (Case 1) neighbours.
        """
        if not 0 <= cell < self.n_cells:
            raise ProtocolError(f"cell {cell} out of range")
        if not 0 <= to_pe < self.n_pes:
            raise ProtocolError(f"PE {to_pe} out of range")
        if self.permanent[cell]:
            raise ProtocolError(f"cell {cell} is permanent and cannot move")
        if self.holder[cell] == to_pe:
            raise ProtocolError(f"cell {cell} already held by PE {to_pe}")
        home = int(self.home[cell])
        if to_pe != home and to_pe not in self.lower_neighbors(home):
            raise ProtocolError(
                f"cell {cell} (home PE {home}) may only be lent to the home's "
                f"lower neighbours {sorted(self.lower_neighbors(home))}, not PE {to_pe}"
            )
        self.holder[cell] = to_pe

    def transfer_any(self, cell: int, to_pe: int) -> None:
        """Move ``cell`` to ``to_pe`` with bounds checks only.

        The escape hatch for *unconstrained* balancer strategies (diffusion,
        SFC repartition): they are not bound by the paper's permanent-cell
        invariants, so permanent cells may move and any PE may receive.
        Ownership conservation still holds -- a cell always has exactly one
        holder -- and :class:`~repro.faults.audit.InvariantAuditor` keeps
        checking it for every strategy.
        """
        if not 0 <= cell < self.n_cells:
            raise ProtocolError(f"cell {cell} out of range")
        if not 0 <= to_pe < self.n_pes:
            raise ProtocolError(f"PE {to_pe} out of range")
        if self.holder[cell] == to_pe:
            raise ProtocolError(f"cell {cell} already held by PE {to_pe}")
        self.holder[cell] = to_pe

    def reset(self) -> None:
        """Return every cell to its home PE."""
        self.holder[...] = self.home

    def validate(self) -> None:
        """Check all structural invariants; raises on violation."""
        if np.any(self.holder[self.permanent] != self.home[self.permanent]):
            raise DecompositionError("a permanent cell is away from home")
        away = np.flatnonzero(self.holder != self.home)
        for cell in away:
            home = int(self.home[cell])
            if int(self.holder[cell]) not in self.lower_neighbors(home):
                raise DecompositionError(
                    f"cell {cell} lent to non-adjacent PE {self.holder[cell]}"
                )


#: Backwards-compatible alias: earlier revisions redistributed whole columns.
ColumnAssignment = CellAssignment
