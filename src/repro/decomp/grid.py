"""The 2-D cross-section view of the cell grid: columns of cells.

A square-pillar decomposition never splits the z axis, so the unit of
ownership and redistribution is a *column*: the stack of ``nc`` cells sharing
an ``(cx, cy)`` cross-section coordinate (Figure 3 of the paper draws this
cross-section; each drawn square is a column).

Column flat index convention: ``col = cx * nc + cy``.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError


class ColumnGrid:
    """Index arithmetic for the ``nc x nc`` grid of cell columns."""

    def __init__(self, cells_per_side: int) -> None:
        if cells_per_side <= 0:
            raise GeometryError(f"cells_per_side must be positive, got {cells_per_side}")
        self.cells_per_side = int(cells_per_side)
        self.n_columns = self.cells_per_side**2

    def flatten(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Column ids from cross-section coordinates."""
        return np.asarray(cx) * self.cells_per_side + np.asarray(cy)

    def unflatten(self, col: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cross-section coordinates ``(cx, cy)`` of column ids."""
        col = np.asarray(col)
        return col // self.cells_per_side, col % self.cells_per_side

    def column_of_cell(self, cell_flat: np.ndarray) -> np.ndarray:
        """Column id of each flat cell id (cells use (ix*nc + iy)*nc + iz)."""
        return np.asarray(cell_flat) // self.cells_per_side

    def cells_of_column(self, col: int) -> np.ndarray:
        """The ``nc`` flat cell ids stacked in column ``col``."""
        if not 0 <= col < self.n_columns:
            raise GeometryError(f"column {col} out of range [0, {self.n_columns})")
        return col * self.cells_per_side + np.arange(self.cells_per_side)

    def column_counts(self, counts_grid: np.ndarray) -> np.ndarray:
        """Particles per column from an ``(nc, nc, nc)`` per-cell counts grid."""
        if counts_grid.shape != (self.cells_per_side,) * 3:
            raise GeometryError(
                f"counts grid shape {counts_grid.shape} != ({self.cells_per_side},)*3"
            )
        return counts_grid.sum(axis=2).reshape(-1)

    def neighbor_columns(self, col: int) -> np.ndarray:
        """The 8 cross-section neighbours of a column (periodic, unique)."""
        nc = self.cells_per_side
        cx, cy = divmod(col, nc)
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                out.append(((cx + dx) % nc) * nc + (cy + dy) % nc)
        return np.unique(np.array(out, dtype=np.int64))
