"""Structural validation: the 8-neighbour property.

DLB must never let a PE's domain touch the domain of a PE that is not one of
its 8 torus neighbours (Section 2.3) -- an irregular communication pattern
would destroy the predictable halo exchange. These checks are the executable
form of that invariant, on the full 3-D cell owner map (26-adjacency).
"""

from __future__ import annotations

import numpy as np

from ..errors import DecompositionError
from .assignment import CellAssignment

#: 8-neighbourhood offsets in the cross-section plane (the PE torus is 2-D).
CROSS_SECTION_OFFSETS: tuple[tuple[int, int], ...] = (
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
)

#: The 26 neighbour offsets of the 3-D cell grid.
CELL_OFFSETS_3D: tuple[tuple[int, int, int], ...] = tuple(
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) != (0, 0, 0)
)


def contact_pairs(cell_owner: np.ndarray, cells_per_side: int) -> set[tuple[int, int]]:
    """Unordered pairs of distinct PEs whose domains touch (26-adjacency)."""
    expected = cells_per_side**3
    if cell_owner.shape != (expected,):
        raise DecompositionError(f"cell owner shape {cell_owner.shape} != ({expected},)")
    owners = cell_owner.reshape((cells_per_side,) * 3)
    pairs: set[tuple[int, int]] = set()
    for offset in CELL_OFFSETS_3D:
        shifted = np.roll(owners, shift=offset, axis=(0, 1, 2))
        mask = owners != shifted
        if not mask.any():
            continue
        a = owners[mask]
        b = shifted[mask]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        pairs.update(zip(lo.tolist(), hi.tolist()))
    return pairs


def torus_neighbors(pe: int, pe_side: int) -> set[int]:
    """The 8 torus neighbours of a PE on a ``pe_side x pe_side`` torus."""
    i, j = divmod(pe, pe_side)
    out = set()
    for di, dj in CROSS_SECTION_OFFSETS:
        out.add(((i + di) % pe_side) * pe_side + (j + dj) % pe_side)
    out.discard(pe)
    return out


def check_eight_neighbor_property(assignment: CellAssignment) -> None:
    """Raise :class:`DecompositionError` if any domains touch beyond 8 neighbours."""
    pairs = contact_pairs(assignment.holder, assignment.cells_per_side)
    for a, b in pairs:
        if b not in torus_neighbors(a, assignment.pe_side):
            raise DecompositionError(
                f"domains of PEs {a} and {b} touch but are not torus neighbours"
            )
