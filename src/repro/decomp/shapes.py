"""Domain shapes and their communication footprints (Figure 2).

The paper (and its reference [8]) compares plane, square-pillar and cube
domains by interprocessor communication overhead, concluding the square
pillar is best for mid-size simulations on mid-size machines. This module
quantifies that comparison: ghost-cell volume and neighbour count per PE for
each shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DomainShapeInfo:
    """Communication profile of one domain shape.

    Attributes
    ----------
    shape:
        ``"plane"``, ``"pillar"`` or ``"cube"``.
    cells_per_domain:
        Cells owned by each PE.
    ghost_cells:
        Cells imported from neighbours each step (halo of thickness 1).
    n_neighbors:
        Distinct PEs each PE must exchange with (2 / 8 / 26).
    """

    shape: str
    cells_per_domain: int
    ghost_cells: int
    n_neighbors: int


def domain_shape_info(shape: str, cells_per_side: int, n_pes: int) -> DomainShapeInfo:
    """Communication profile for ``shape`` at the given problem size.

    Raises :class:`ConfigurationError` when ``n_pes`` does not tile the grid
    for the requested shape.
    """
    nc = cells_per_side
    if shape == "plane":
        if nc % n_pes != 0:
            raise ConfigurationError(f"plane needs P | nc, got {n_pes}, {nc}")
        thickness = nc // n_pes
        # Two ghost faces of nc x nc cells (or one if the slab wraps onto itself).
        ghost = 2 * nc * nc if n_pes > 1 else 0
        return DomainShapeInfo("plane", thickness * nc * nc, ghost, min(2, n_pes - 1) if n_pes > 1 else 0)
    if shape == "pillar":
        side = math.isqrt(n_pes)
        if side * side != n_pes or nc % side != 0:
            raise ConfigurationError(f"pillar needs square P with sqrt(P) | nc, got {n_pes}, {nc}")
        m = nc // side
        ghost = ((m + 2) ** 2 - m * m) * nc if side > 1 else 0
        return DomainShapeInfo("pillar", m * m * nc, ghost, 8 if side > 2 else (3 if side == 2 else 0))
    if shape == "cube":
        side = round(n_pes ** (1.0 / 3.0))
        if side**3 != n_pes or nc % side != 0:
            raise ConfigurationError(f"cube needs cubic P with cbrt(P) | nc, got {n_pes}, {nc}")
        m = nc // side
        ghost = (m + 2) ** 3 - m**3 if side > 1 else 0
        return DomainShapeInfo("cube", m**3, ghost, 26 if side > 2 else (7 if side == 2 else 0))
    raise ConfigurationError(f"unknown shape {shape!r}")


def domain_comm_volume(shape: str, cells_per_side: int, n_pes: int) -> int:
    """Ghost cells imported per PE per step for ``shape`` (lower is better)."""
    return domain_shape_info(shape, cells_per_side, n_pes).ghost_cells


def best_shape(cells_per_side: int, n_pes: int) -> str:
    """The feasible shape with the smallest ghost volume at this size.

    Reproduces the design argument of Section 2.2: square pillars win for
    mid-size problems on mid-size machines; cubes take over when the machine
    is large relative to the grid.
    """
    candidates: list[tuple[int, str]] = []
    for shape in ("plane", "pillar", "cube"):
        try:
            candidates.append((domain_comm_volume(shape, cells_per_side, n_pes), shape))
        except ConfigurationError:
            continue
    if not candidates:
        raise ConfigurationError(
            f"no domain shape tiles nc={cells_per_side} across P={n_pes}"
        )
    return min(candidates)[1]
