"""Initial cell-to-PE partitions for the three domain shapes of Figure 2."""

from __future__ import annotations

import math

import numpy as np

from ..errors import DecompositionError


def plane_partition(cells_per_side: int, n_pes: int) -> np.ndarray:
    """Slab decomposition: contiguous x-slabs of cells, PEs on a ring.

    Returns the flat ``(C,)`` owner map (cells indexed ``(ix*nc + iy)*nc + iz``).
    """
    if cells_per_side % n_pes != 0:
        raise DecompositionError(
            f"plane partition needs n_pes | cells_per_side, got {n_pes}, {cells_per_side}"
        )
    slab = cells_per_side // n_pes
    ix = np.arange(cells_per_side**3) // (cells_per_side**2)
    return (ix // slab).astype(np.int64)


def pillar_partition(cells_per_side: int, n_pes: int) -> np.ndarray:
    """Square-pillar decomposition: returns the *column* owner map ``(nc^2,)``.

    PE(i, j) (flat ``i * sqrt(P) + j``) owns the ``m x m`` block of columns
    with ``cx in [i*m, (i+1)*m)``, ``cy in [j*m, (j+1)*m)`` where
    ``m = nc / sqrt(P)`` (Figure 7).
    """
    side = math.isqrt(n_pes)
    if side * side != n_pes:
        raise DecompositionError(f"pillar partition needs square n_pes, got {n_pes}")
    if cells_per_side % side != 0:
        raise DecompositionError(
            f"pillar partition needs sqrt(P) | nc, got sqrt({n_pes})={side}, nc={cells_per_side}"
        )
    m = cells_per_side // side
    cols = np.arange(cells_per_side**2)
    cx, cy = cols // cells_per_side, cols % cells_per_side
    return ((cx // m) * side + (cy // m)).astype(np.int64)


def cube_partition(cells_per_side: int, n_pes: int) -> np.ndarray:
    """Cube decomposition: flat ``(C,)`` owner map, PEs on a 3-D torus."""
    side = round(n_pes ** (1.0 / 3.0))
    if side**3 != n_pes:
        raise DecompositionError(f"cube partition needs cubic n_pes, got {n_pes}")
    if cells_per_side % side != 0:
        raise DecompositionError(
            f"cube partition needs cbrt(P) | nc, got cbrt({n_pes})={side}, nc={cells_per_side}"
        )
    m = cells_per_side // side
    nc = cells_per_side
    cells = np.arange(nc**3)
    ix, iy, iz = cells // (nc * nc), (cells // nc) % nc, cells % nc
    return ((ix // m) * side * side + (iy // m) * side + (iz // m)).astype(np.int64)


def expand_columns_to_cells(column_owner: np.ndarray, cells_per_side: int) -> np.ndarray:
    """Expand a ``(nc^2,)`` column owner map to the flat ``(nc^3,)`` cell map."""
    if column_owner.shape != (cells_per_side**2,):
        raise DecompositionError(
            f"column owner shape {column_owner.shape} != ({cells_per_side ** 2},)"
        )
    return np.repeat(column_owner, cells_per_side)
