"""The stable public API of the repro library.

Everything a caller needs to run a simulation lives behind two functions:

>>> from repro import api
>>> from repro.config import RunConfig
>>> result = api.simulate("quickstart", run=RunConfig(steps=100, seed=7))

:func:`simulate` runs the parallel MD workload (a preset name or a full
:class:`~repro.config.SimulationConfig`) and returns a
:class:`~repro.core.results.RunResult`; :func:`simulate_driven` feeds an
external configuration sequence through the same DLB machinery. Both accept
the full feature set — execution engines, observability, fault plans,
invariant audits, checkpoint/resume — as typed keyword-only arguments, and
record provenance in ``result.meta``.

The CLI, the campaign executor and the experiment drivers all construct
their runs through this module; the runner classes in
:mod:`repro.core.runner` remain importable but are an implementation layer,
and their old top-level re-exports (``repro.ParallelMDRunner``) are
deprecated shims.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from .config import (
    DecompositionConfig,
    DLBConfig,
    MachineConfig,
    MDConfig,
    RunConfig,
    SimulationConfig,
)
from .core.checkpoint import CheckpointManager
from .core.results import (
    RESULT_SCHEMA_VERSION,
    RunResult,
    attach_schema_version,
    check_schema_version,
    read_result_json,
    write_result_json,
)
from .core.runner import DrivenLoadRunner, ParallelMDRunner
from .engine.base import Engine, EngineSpec, create_engine
from .errors import ConfigurationError, ReproError, SchemaError
from .faults.audit import InvariantAuditor
from .faults.injector import FaultInjector
from .faults.plan import FaultPlan
from .md.system import ParticleSystem
from .obs import Observability
from .workloads.presets import get_preset

__all__ = [
    "AuditPolicy",
    "CanonicalSubmission",
    "CheckpointPolicy",
    "EngineSpec",
    "RunConfig",
    "RunResult",
    "SimulationConfig",
    "canonicalize_submission",
    "load_config",
    "load_faults",
    "load_result",
    "result_payload",
    "save_config",
    "simulate",
    "simulate_driven",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a run checkpoints (and optionally resumes).

    Attributes
    ----------
    directory:
        Where snapshots live.
    every:
        Snapshot cadence in steps (driven runs: in configurations); 0 means
        no cadence-driven snapshots.
    resume:
        Restore from the newest snapshot in ``directory`` before running;
        the resumed run is bit-identical to an uninterrupted one.
    keep:
        Completed snapshots to retain.
    """

    directory: str | Path
    every: int = 0
    resume: bool = False
    keep: int = 2


@dataclass(frozen=True)
class AuditPolicy:
    """How a run validates structural invariants while stepping.

    ``every`` is the audit cadence in steps; ``policy`` is ``"raise"``
    (stop on the first violation) or ``"log"`` (record and continue). The
    audit summary lands in ``result.meta["audit"]``.
    """

    every: int = 1
    policy: str = "raise"


def _resolve_config(
    config: SimulationConfig | str, dlb: bool | None
) -> tuple[SimulationConfig, str | None]:
    """Accept a preset name or a full config; returns (config, preset_name)."""
    if isinstance(config, str):
        preset = get_preset(config)
        return preset.simulation_config(dlb_enabled=True if dlb is None else dlb), config
    if not isinstance(config, SimulationConfig):
        raise ConfigurationError(
            f"config must be a SimulationConfig or a preset name, got {type(config)!r}"
        )
    if dlb is not None and dlb != config.dlb.enabled:
        config = dataclasses.replace(
            config, dlb=dataclasses.replace(config.dlb, enabled=dlb)
        )
    return config, None


def _resolve_faults(
    faults: FaultPlan | FaultInjector | None, n_pes: int
) -> FaultInjector | None:
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults, n_pes)
    raise ConfigurationError(
        f"faults must be a FaultPlan or FaultInjector, got {type(faults)!r}"
    )


def _checkpoint_manager(
    checkpoints: CheckpointPolicy | None,
) -> CheckpointManager | None:
    if checkpoints is None:
        return None
    return CheckpointManager(
        checkpoints.directory, every=checkpoints.every, keep=checkpoints.keep
    )


def simulate(
    config: SimulationConfig | str,
    *,
    run: RunConfig,
    dlb: bool | None = None,
    balancer: str | None = None,
    engine: Engine | EngineSpec | str | None = None,
    engine_workers: int | None = None,
    observability: Observability | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    audit: AuditPolicy | None = None,
    checkpoints: CheckpointPolicy | None = None,
    system: ParticleSystem | None = None,
    trace_pid: int = 0,
    stop_after: int | None = None,
) -> RunResult:
    """Run one parallel MD simulation and return its result.

    Parameters
    ----------
    config:
        A :class:`~repro.config.SimulationConfig`, or the name of a workload
        preset (see ``repro presets``).
    run:
        Steps, seed, recording cadence, pair-search backend, timing mode.
    dlb:
        Override the config's DLB switch (convenient with preset names:
        ``dlb=False`` runs plain DDM).
    balancer:
        Override ``run.balancer``: the DLB strategy name (``"permanent"``,
        ``"diffusion"``, ``"sfc"``, ``"none"`` or ``"auto"``). ``None``
        keeps ``run.balancer`` (which itself defers to ``REPRO_BALANCER``
        and ultimately ``"permanent"``). The resolved name lands in
        ``result.meta["balancer"]``.
    engine:
        Execution engine for the force path: an engine name
        (``"sequential"`` / ``"multiprocess"``), an
        :class:`~repro.engine.EngineSpec`, a constructed
        :class:`~repro.engine.Engine` (caller keeps ownership), or ``None``
        for the classic in-process path. Engines created here from a
        name/spec are closed before returning.
    engine_workers:
        Worker-process count when ``engine`` is a name (multiprocess only).
    observability:
        Nullable trace/metrics/profiler bundle; activated around the run.
    faults:
        A :class:`~repro.faults.FaultPlan` (instantiated against this
        workload's PE count) or a ready :class:`~repro.faults.FaultInjector`.
    audit:
        Invariant-audit policy; summary in ``result.meta["audit"]``.
    checkpoints:
        Checkpoint/resume policy (see :class:`CheckpointPolicy`).
    system:
        Pre-built particle system (defaults to the config's, seeded by
        ``run.seed``).
    trace_pid:
        Trace process id when sharing one recorder across runs; each runner
        claims its pid, so collisions raise instead of corrupting the trace.
    stop_after:
        Execute at most this many (further) steps and return the partial
        result — the crash-drill knob behind ``repro run --kill-after``;
        combined with ``checkpoints`` the truncated run is resumable.
    """
    sim_config, preset_name = _resolve_config(config, dlb)
    if balancer is not None:
        run = dataclasses.replace(run, balancer=balancer)
    injector = _resolve_faults(faults, sim_config.decomposition.n_pes)
    events = observability.events if observability is not None else None
    if injector is not None and events is not None:
        injector.events = events
    resolved_engine = create_engine(engine, workers=engine_workers)
    owns_engine = resolved_engine is not None and not isinstance(engine, Engine)
    try:
        runner = ParallelMDRunner(
            sim_config,
            run,
            system=system,
            observability=observability,
            trace_pid=trace_pid,
            faults=injector,
            engine=resolved_engine,
        )
        auditor = None
        if audit is not None:
            auditor = InvariantAuditor(
                runner.assignment,
                n_particles=runner.system.n,
                every=audit.every,
                policy=audit.policy,
                metrics=observability.metrics if observability is not None else None,
                events=events,
                strategy=runner.balancer_name,
            )
            runner.auditor = auditor
        manager = _checkpoint_manager(checkpoints)
        partial = None
        resumed_at = None
        if checkpoints is not None and checkpoints.resume:
            partial = runner.restore(manager.load_latest()["state"])
            resumed_at = runner.step_count
            if events is not None:
                events.emit_host(runner.step_count, "checkpoint.resume")
        remaining = run.steps - runner.step_count
        if remaining < 0:
            raise ConfigurationError(
                f"checkpoint is at step {runner.step_count}, beyond the "
                f"requested {run.steps} steps"
            )
        if stop_after is not None:
            if stop_after < 0:
                raise ConfigurationError(
                    f"stop_after must be >= 0, got {stop_after}"
                )
            remaining = min(remaining, stop_after)
        if observability is not None:
            with observability.activate():
                result = runner.run(remaining, checkpoint=manager, result=partial)
        else:
            result = runner.run(remaining, checkpoint=manager, result=partial)
        result.meta.update(
            {
                "schema_version": RESULT_SCHEMA_VERSION,
                "mode": "dlb" if runner.dlb_enabled else "ddm",
                "preset": preset_name,
                "engine": resolved_engine.name if resolved_engine is not None else "inproc",
                "engine_workers": (
                    resolved_engine.workers if resolved_engine is not None else None
                ),
                "resumed_at": resumed_at,
                "audit": auditor.summary() if auditor is not None else None,
                "neighbor_stats": runner.neighbor_stats.as_dict(),
                "kernel": runner.kernel_name,
                "balancer": runner.balancer_name,
                "imbalance": (
                    runner.imbalance.summary() if runner.imbalance is not None else None
                ),
                "events": len(events) if events is not None else None,
            }
        )
        return result
    finally:
        if owns_engine:
            resolved_engine.close()


def simulate_driven(
    config: SimulationConfig | str,
    configurations: Iterable[np.ndarray],
    *,
    rounds_per_config: int = 1,
    dlb: bool | None = None,
    balancer: str | None = None,
    observability: Observability | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    audit: AuditPolicy | None = None,
    checkpoints: CheckpointPolicy | None = None,
    trace_pid: int = 0,
) -> RunResult:
    """Feed an external configuration sequence through the DLB machinery.

    Each item of ``configurations`` is an ``(N, 3)`` position array; no
    forces are integrated — each configuration is binned, time-accounted on
    the virtual machine, and the balancer reacts (``rounds_per_config``
    accounting rounds per configuration). This is the quasi-static driver
    behind the effective-range experiments (Figures 9-10). ``balancer``
    selects the DLB strategy exactly as in :func:`simulate`.
    """
    sim_config, preset_name = _resolve_config(config, dlb)
    injector = _resolve_faults(faults, sim_config.decomposition.n_pes)
    events = observability.events if observability is not None else None
    if injector is not None and events is not None:
        injector.events = events
    runner = DrivenLoadRunner(
        sim_config,
        rounds_per_config=rounds_per_config,
        observability=observability,
        trace_pid=trace_pid,
        faults=injector,
        balancer=balancer,
    )
    auditor = None
    if audit is not None:
        auditor = InvariantAuditor(
            runner.assignment,
            every=audit.every,
            policy=audit.policy,
            metrics=observability.metrics if observability is not None else None,
            events=events,
            strategy=runner.balancer_name,
        )
        runner.auditor = auditor
    manager = _checkpoint_manager(checkpoints)
    partial = None
    resumed_at = None
    if checkpoints is not None and checkpoints.resume:
        partial = runner.restore(manager.load_latest()["state"])
        resumed_at = runner.configs_done
        if events is not None:
            events.emit_host(runner.step_count, "checkpoint.resume")
    if observability is not None:
        with observability.activate():
            result = runner.run(configurations, checkpoint=manager, result=partial)
    else:
        result = runner.run(configurations, checkpoint=manager, result=partial)
    result.meta.update(
        {
            "schema_version": RESULT_SCHEMA_VERSION,
            "mode": "dlb" if runner.dlb_enabled else "ddm",
            "preset": preset_name,
            "engine": "inproc",
            "engine_workers": None,
            "resumed_at": resumed_at,
            "audit": auditor.summary() if auditor is not None else None,
            "balancer": runner.balancer_name,
            "imbalance": (
                runner.imbalance.summary() if runner.imbalance is not None else None
            ),
            "events": len(events) if events is not None else None,
        }
    )
    return result


def result_payload(result: RunResult) -> dict[str, Any]:
    """The canonical JSON-safe payload of one run (schema-versioned)."""
    return attach_schema_version(
        {
            "summary": result.summary(),
            "digest": result.digest(),
            "steps_run": len(result.records),
            "audit": result.meta.get("audit"),
            "meta": dict(result.meta),
        }
    )


# -- submissions ------------------------------------------------------------


@dataclass(frozen=True)
class CanonicalSubmission:
    """What :func:`canonicalize_submission` resolves a raw submission into.

    ``spec`` is the validated, executable run description; ``run_hash`` is
    the deterministic content hash of its *resolved* configuration — the key
    the campaign engine and the simulation service dedupe on, so two
    submissions that describe the same physics share one execution no matter
    how they were spelled.
    """

    spec: Any
    run_hash: str
    content: dict[str, Any]


def canonicalize_submission(submission: dict[str, Any]) -> CanonicalSubmission:
    """Validate and canonicalise a raw run-submission mapping.

    The input is an untyped mapping (typically a decoded JSON body): run
    kind, preset/geometry parameters, steps, seed — the fields of
    :class:`~repro.campaign.spec.RunSpec`. An optional ``schema_version``
    entry is checked against the library's result schema (an unknown major
    version is rejected, see :func:`repro.core.results.check_schema_version`);
    unknown fields and invalid values raise
    :class:`~repro.errors.ConfigurationError` with an actionable message
    rather than being silently dropped, because a typo'd field would
    otherwise canonicalise to a *different* run than the caller intended.

    The returned hash is exactly :meth:`RunSpec.spec_hash`, so service
    submissions, campaign grids and ad-hoc sweeps all dedupe against the
    same stored runs.
    """
    from .campaign.spec import RunSpec

    if not isinstance(submission, dict):
        raise ConfigurationError(
            f"submission must be a JSON object, got {type(submission).__name__}"
        )
    if "schema_version" in submission:
        check_schema_version(submission, source="submission")
    known = {f.name for f in dataclasses.fields(RunSpec)}
    unknown = sorted(set(submission) - known - {"schema_version"})
    if unknown:
        raise ConfigurationError(
            f"unknown submission field(s) {', '.join(map(repr, unknown))}; "
            f"expected a subset of {sorted(known)}"
        )
    try:
        spec = RunSpec(**{k: v for k, v in submission.items() if k in known})
        content = spec.content()
        run_hash = spec.spec_hash()
    except ConfigurationError:
        raise
    except (ReproError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"invalid submission: {exc}") from exc
    return CanonicalSubmission(spec=spec, run_hash=run_hash, content=content)


# -- persisted artifacts ----------------------------------------------------


def save_config(
    path: str | Path,
    config: SimulationConfig,
    run: RunConfig | None = None,
) -> None:
    """Persist a simulation (and optionally run) configuration as JSON."""
    payload: dict[str, Any] = {
        "simulation": {
            "md": dataclasses.asdict(config.md),
            "decomposition": dataclasses.asdict(config.decomposition),
            "dlb": dataclasses.asdict(config.dlb),
            "machine": dataclasses.asdict(config.machine),
        },
    }
    if run is not None:
        payload["run"] = dataclasses.asdict(run)
    write_result_json(path, payload)


def _from_dict(cls, data: dict[str, Any]):
    """Build a config dataclass, ignoring unknown keys (forward compat)."""
    known = {f.name for f in dataclasses.fields(cls) if f.init}
    return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class LoadedConfig:
    """What :func:`load_config` returns: the simulation and (optional) run."""

    simulation: SimulationConfig
    run: RunConfig | None


def load_config(path: str | Path) -> LoadedConfig:
    """Load a configuration written by :func:`save_config` (schema-checked)."""
    payload = read_result_json(path, source=f"config {path}")
    sim = payload.get("simulation")
    if not isinstance(sim, dict):
        raise SchemaError(f"config {path} has no 'simulation' section")
    simulation = SimulationConfig(
        md=_from_dict(MDConfig, sim.get("md", {})),
        decomposition=_from_dict(DecompositionConfig, sim.get("decomposition", {})),
        dlb=_from_dict(DLBConfig, sim.get("dlb", {})),
        machine=_from_dict(MachineConfig, sim.get("machine", {})),
    )
    run = payload.get("run")
    return LoadedConfig(
        simulation=simulation,
        run=_from_dict(RunConfig, run) if isinstance(run, dict) else None,
    )


def load_result(path: str | Path) -> dict[str, Any]:
    """Load a result payload written via :func:`write_result_json`.

    Raises :class:`~repro.errors.SchemaError` on a missing or unsupported
    (different major) ``schema_version``.
    """
    return read_result_json(path, source=f"result {path}")


def load_faults(path: str | Path) -> FaultPlan:
    """Load a JSON fault plan (see ``repro run --faults``)."""
    return FaultPlan.from_json_file(path)
