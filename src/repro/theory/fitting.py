"""Least-squares boundary fits and the E/T comparison of Table 1.

The experimental boundary points of Figure 10 lie along a curve of the same
family as the theoretical bound; the paper fits them with least squares and
reports the ratio of the experimental boundary (E) to the theoretical upper
bound (T). Fitting the one-parameter family ``E(n) = k * f(m, n)`` makes
``k`` exactly that E/T ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .boundary import BoundaryPoint
from .bounds import upper_bound


@dataclass(frozen=True)
class ETComparison:
    """Result of fitting experimental boundary points against ``f(m, n)``.

    Attributes
    ----------
    m:
        Pillar cross-section of the experiment.
    ratio:
        The fitted scale ``k`` = E/T.
    residual_rms:
        RMS of the fit residuals in ``C0/C`` units.
    n_points:
        Number of boundary points used.
    """

    m: int
    ratio: float
    residual_rms: float
    n_points: int

    def boundary(self, n: np.ndarray | float) -> np.ndarray | float:
        """The fitted experimental boundary ``k * f(m, n)``."""
        return self.ratio * upper_bound(self.m, n)


def fit_boundary_scale(points: list[BoundaryPoint], m: int) -> ETComparison:
    """Least-squares fit of ``C0/C = k * f(m, n)`` through boundary points.

    Minimising ``sum (y_i - k f_i)^2`` gives ``k = sum(y f) / sum(f^2)``.
    """
    if not points:
        raise AnalysisError("cannot fit a boundary through zero points")
    n_vals = np.array([p.n for p in points], dtype=float)
    y_vals = np.array([p.c0_ratio for p in points], dtype=float)
    f_vals = np.asarray(upper_bound(m, n_vals), dtype=float)
    denom = float(np.dot(f_vals, f_vals))
    if denom <= 0:
        raise AnalysisError("degenerate fit: all theoretical values are zero")
    k = float(np.dot(y_vals, f_vals)) / denom
    residuals = y_vals - k * f_vals
    rms = float(np.sqrt(np.mean(residuals**2)))
    return ETComparison(m=m, ratio=k, residual_rms=rms, n_points=len(points))


def average_points(groups: list[list[BoundaryPoint]]) -> list[BoundaryPoint]:
    """Average repeated runs into one boundary point per group.

    The paper averages ten executions (five initial configurations, each run
    twice) into each plotted point; a group here is those repetitions.
    """
    out: list[BoundaryPoint] = []
    for group in groups:
        if not group:
            raise AnalysisError("empty repetition group")
        out.append(
            BoundaryPoint(
                step=int(round(np.mean([p.step for p in group]))),
                n=float(np.mean([p.n for p in group])),
                c0_ratio=float(np.mean([p.c0_ratio for p in group])),
            )
        )
    return out


def point_error_ranges(groups: list[list[BoundaryPoint]]) -> list[tuple[float, float]]:
    """Standard deviations of (n, C0/C) per repetition group (the paper's
    error ranges in Figure 10)."""
    out: list[tuple[float, float]] = []
    for group in groups:
        if not group:
            raise AnalysisError("empty repetition group")
        out.append(
            (
                float(np.std([p.n for p in group])),
                float(np.std([p.c0_ratio for p in group])),
            )
        )
    return out
