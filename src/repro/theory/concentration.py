"""Measuring the concentration parameters of Section 4 from simulation state.

Figure 8 defines, for a configuration and an assignment:

* ``C``   -- total cells; ``C0`` -- cells containing no particles;
* ``C'``  -- cells of the *maximum domain*,
  ``[m^2 + 3(m-1)^2] C^(1/3)``;
* ``C0'`` -- empty cells inside the maximum domain;
* ``n = (C0'/C') / (C0/C) >= 1`` -- the concentration factor.

Parallel runs cannot assume any PE actually holds the maximum domain, so the
paper estimates ``C0'/C'`` by averaging the empty-cell ratios of two PEs: the
one holding the most cells and the one holding the most empty cells
(Section 4.2). :func:`measure_concentration` implements both the exact
definition (given a hypothetical maximum domain around the emptiest region)
and the paper's two-PE estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decomp.assignment import CellAssignment
from ..dlb.limits import max_domain_cells
from ..errors import AnalysisError


@dataclass(frozen=True)
class ConcentrationState:
    """Concentration parameters of one configuration.

    Attributes
    ----------
    n_cells:
        ``C``.
    empty_cells:
        ``C0``.
    c0_ratio:
        ``C0 / C``, the particle concentration ratio.
    n:
        The concentration factor (paper's two-PE estimate, clipped to >= 1).
    max_domain_cells:
        ``C'`` of the theory.
    """

    n_cells: int
    empty_cells: int
    c0_ratio: float
    n: float
    max_domain_cells: int


def _pe_cell_stats(
    counts_flat: np.ndarray, assignment: CellAssignment
) -> tuple[np.ndarray, np.ndarray]:
    """Per-PE (cells held, empty cells held)."""
    owner = assignment.cell_owner_map()
    cells = np.bincount(owner, minlength=assignment.n_pes).astype(np.int64)
    empty = np.bincount(
        owner, weights=(counts_flat == 0).astype(np.float64), minlength=assignment.n_pes
    ).astype(np.int64)
    return cells, empty


def measure_concentration(
    counts_grid: np.ndarray, assignment: CellAssignment
) -> ConcentrationState:
    """Concentration parameters for a counts grid under an assignment.

    The estimate of ``n`` follows Section 4.2: average the empty-cell ratio
    of the PE holding the most cells and of the PE holding the most empty
    cells, then divide by the global ratio ``C0/C``. The result is clipped to
    the theoretical domain ``n >= 1``.
    """
    nc = assignment.cells_per_side
    if counts_grid.shape != (nc,) * 3:
        raise AnalysisError(f"counts grid shape {counts_grid.shape} != ({nc},)*3")
    counts_flat = counts_grid.reshape(-1)
    n_cells = counts_flat.size
    empty_cells = int((counts_flat == 0).sum())
    c0_ratio = empty_cells / n_cells

    cells_per_pe, empty_per_pe = _pe_cell_stats(counts_flat, assignment)
    pe_most_cells = int(np.argmax(cells_per_pe))
    pe_most_empty = int(np.argmax(empty_per_pe))
    ratios = []
    for pe in (pe_most_cells, pe_most_empty):
        held = cells_per_pe[pe]
        ratios.append(empty_per_pe[pe] / held if held > 0 else 0.0)
    est = float(np.mean(ratios))

    if c0_ratio > 0:
        n = max(est / c0_ratio, 1.0)
    else:
        n = 1.0
    return ConcentrationState(
        n_cells=n_cells,
        empty_cells=empty_cells,
        c0_ratio=c0_ratio,
        n=n,
        max_domain_cells=max_domain_cells(assignment.m, nc),
    )


def exact_concentration_factor(
    counts_grid: np.ndarray, assignment: CellAssignment
) -> float:
    """Upper-envelope ``n``: the emptiest possible maximum domain.

    Scans every placement of a maximum domain (a PE's block plus the movable
    blocks of its three upper/right lenders) and returns the largest
    ``(C0'/C') / (C0/C)``. Serves as an oracle in tests; note the paper's
    two-PE estimate is a different (cruder) statistic and may deviate from
    this envelope in either direction, so tests compare magnitudes loosely.
    """
    nc = assignment.cells_per_side
    m = assignment.m
    side = assignment.pe_side
    if counts_grid.shape != (nc,) * 3:
        raise AnalysisError(f"counts grid shape {counts_grid.shape} != ({nc},)*3")
    empty_cols = (counts_grid == 0).sum(axis=2)  # empty cells per column (nc, nc)
    c0 = float((counts_grid == 0).sum())
    c = float(counts_grid.size)
    if c0 == 0:
        return 1.0
    global_ratio = c0 / c

    cp = max_domain_cells(m, nc)
    best = 0.0
    for i in range(side):
        for j in range(side):
            # Own block [i*m, (i+1)*m) x [j*m, (j+1)*m) plus the movable
            # (m-1)^2 blocks of the three lenders at (i+1, j), (i, j+1),
            # (i+1, j+1) (periodic).
            total_empty = 0.0
            total_empty += empty_cols[
                np.ix_(
                    np.arange(i * m, (i + 1) * m) % nc,
                    np.arange(j * m, (j + 1) * m) % nc,
                )
            ].sum()
            lenders = (((i + 1) % side, j), (i, (j + 1) % side), ((i + 1) % side, (j + 1) % side))
            for li, lj in lenders:
                rows = np.arange(li * m, li * m + m - 1) % nc
                cols = np.arange(lj * m, lj * m + m - 1) % nc
                if len(rows) and len(cols):
                    total_empty += empty_cols[np.ix_(rows, cols)].sum()
            ratio = total_empty / cp
            best = max(best, ratio / global_ratio)
    return max(best, 1.0)
