"""Theory of DLB effective ranges (Section 4 of the paper).

Upper bounds ``f(m, n)`` on the particle concentration ratio ``C0/C`` up to
which DLB can equalise load, measurement of the concentration parameters
``(n, C0/C)`` from simulation state, experimental boundary-point detection
and the least-squares E/T comparison of Table 1.
"""

from .boundary import BoundaryPoint, detect_divergence_step
from .bounds import f2, f3, f4, ordering_gap, upper_bound
from .concentration import ConcentrationState, measure_concentration
from .fitting import ETComparison, fit_boundary_scale
from .trajectory import Trajectory, TrajectoryRecorder

__all__ = [
    "BoundaryPoint",
    "ConcentrationState",
    "ETComparison",
    "Trajectory",
    "TrajectoryRecorder",
    "detect_divergence_step",
    "f2",
    "f3",
    "f4",
    "fit_boundary_scale",
    "measure_concentration",
    "ordering_gap",
    "upper_bound",
]
