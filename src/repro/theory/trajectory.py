"""Trajectories in (n, C0/C) space (Figure 9).

Every recorded step contributes one point; the trajectory of a cooling,
clustering gas starts near the origin of the plot and climbs as cells empty
out and particles concentrate. The experimental boundary point of a run is a
specific point on this trajectory (see :mod:`repro.theory.boundary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from .concentration import ConcentrationState


@dataclass(frozen=True)
class Trajectory:
    """Immutable (step, n, C0/C) series."""

    steps: np.ndarray
    n: np.ndarray
    c0_ratio: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.steps) == len(self.n) == len(self.c0_ratio)):
            raise AnalysisError("trajectory arrays must have equal length")

    def __len__(self) -> int:
        return len(self.steps)

    def point_at_step(self, step: int) -> tuple[float, float]:
        """The (n, C0/C) point recorded at ``step`` (nearest record if absent)."""
        if len(self.steps) == 0:
            raise AnalysisError("empty trajectory")
        idx = int(np.argmin(np.abs(self.steps - step)))
        return float(self.n[idx]), float(self.c0_ratio[idx])


@dataclass
class TrajectoryRecorder:
    """Accumulates concentration measurements step by step."""

    _steps: list[int] = field(default_factory=list)
    _n: list[float] = field(default_factory=list)
    _c0: list[float] = field(default_factory=list)

    def record(self, step: int, state: ConcentrationState) -> None:
        """Append one measurement."""
        self._steps.append(step)
        self._n.append(state.n)
        self._c0.append(state.c0_ratio)

    def freeze(self) -> Trajectory:
        """Snapshot the accumulated series as an immutable trajectory."""
        return Trajectory(
            steps=np.array(self._steps, dtype=np.int64),
            n=np.array(self._n, dtype=np.float64),
            c0_ratio=np.array(self._c0, dtype=np.float64),
        )

    def __len__(self) -> int:
        return len(self._steps)
