"""Theoretical upper bounds of the particle concentration ratio (Section 4.1).

DLB can keep the load uniform only while the number of particles reachable by
the maximum domain covers the per-PE average; Equation (8) turns that
condition into an upper bound on ``C0/C``:

    f(m, n) = 3 (m-1)^2 / [ m^2 (n - 1) + 3 n (m - 1)^2 ]

with ``m`` the pillar cross-section and ``n >= 1`` the concentration factor.
Equations (9)-(11) are its closed forms for m = 2, 3, 4 and Equation (12)
their ordering ``f(2,n) <= f(3,n) <= f(4,n)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError


def upper_bound(m: int, n: np.ndarray | float) -> np.ndarray | float:
    """Evaluate ``f(m, n)`` (Equation 8).

    Valid for ``m >= 2`` and ``n >= 1``. At ``n = 1`` (no concentration) the
    bound is ``3(m-1)^2 / [3(m-1)^2] = 1`` only when ``m^2 (n-1) = 0``, i.e.
    the whole space may be empty cells; the bound decreases toward 0 as
    ``n`` grows.
    """
    if m < 2:
        raise AnalysisError(f"the bound needs m >= 2 (no movable cells otherwise), got {m}")
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 1.0):
        raise AnalysisError("concentration factor n must be >= 1")
    movable3 = 3.0 * (m - 1) ** 2
    denom = m * m * (n_arr - 1.0) + n_arr * movable3
    out = movable3 / denom
    return out if np.ndim(n) else float(out)


def f2(n: np.ndarray | float) -> np.ndarray | float:
    """Equation (9): ``f(2, n) = 3 / (7n - 4)``."""
    n_arr = np.asarray(n, dtype=float)
    out = 3.0 / (7.0 * n_arr - 4.0)
    return out if np.ndim(n) else float(out)


def f3(n: np.ndarray | float) -> np.ndarray | float:
    """Equation (10): ``f(3, n) = 4 / (7n - 3)``."""
    n_arr = np.asarray(n, dtype=float)
    out = 4.0 / (7.0 * n_arr - 3.0)
    return out if np.ndim(n) else float(out)


def f4(n: np.ndarray | float) -> np.ndarray | float:
    """Equation (11): ``f(4, n) = 27 / (43n - 16)``."""
    n_arr = np.asarray(n, dtype=float)
    out = 27.0 / (43.0 * n_arr - 16.0)
    return out if np.ndim(n) else float(out)


def ordering_gap(n: np.ndarray | float) -> np.ndarray | float:
    """Smallest gap in the chain ``f(2,n) <= f(3,n) <= f(4,n)`` (Equation 12).

    Non-negative for every ``n >= 1``; tests assert exactly that.
    """
    a = np.asarray(f2(n), dtype=float)
    b = np.asarray(f3(n), dtype=float)
    c = np.asarray(f4(n), dtype=float)
    out = np.minimum(b - a, c - b)
    return out if np.ndim(n) else float(out)
