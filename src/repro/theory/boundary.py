"""Experimental boundary-point detection (Section 4.2).

The paper decides the boundary of DLB's effective range "by finding a time
step at which the difference between the maximum and the minimum of force
computing time begins to increase". This module implements that detector:
smooth the ``Fmax - Fmin`` series, establish a baseline over the balanced
early phase, and report the first step where the spread rises above the
baseline by a sustained margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .trajectory import Trajectory


@dataclass(frozen=True)
class BoundaryPoint:
    """An experimental boundary point of DLB's effective range.

    Attributes
    ----------
    step:
        Step at which the spread begins to increase.
    n:
        Concentration factor there.
    c0_ratio:
        Particle concentration ratio there.
    """

    step: int
    n: float
    c0_ratio: float


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge shrinkage (same length as input)."""
    if window <= 0:
        raise AnalysisError(f"window must be positive, got {window}")
    if window == 1 or len(series) <= 1:
        return np.asarray(series, dtype=float).copy()
    kernel = np.ones(min(window, len(series)))
    weights = np.convolve(np.ones_like(series, dtype=float), kernel, mode="same")
    return np.convolve(np.asarray(series, dtype=float), kernel, mode="same") / weights


def detect_divergence_step(
    spread: np.ndarray,
    steps: np.ndarray | None = None,
    window: int = 11,
    baseline_fraction: float = 0.2,
    factor: float = 2.0,
    sustain: int = 10,
) -> int:
    """First step where the (smoothed) spread begins a sustained increase.

    Parameters
    ----------
    spread:
        The ``Fmax - Fmin`` series.
    steps:
        Optional step labels aligned with ``spread``; defaults to indices.
    window:
        Moving-average window for noise suppression.
    baseline_fraction:
        Fraction of the series (from the start) treated as the balanced
        baseline.
    factor:
        The spread counts as diverged once it exceeds ``factor * baseline``.
    sustain:
        The exceedance must persist for this many consecutive records.

    Raises
    ------
    AnalysisError
        If the series is too short or never diverges.
    """
    spread = np.asarray(spread, dtype=float)
    if len(spread) < max(3, sustain + 1):
        raise AnalysisError(f"spread series too short ({len(spread)} records)")
    if not 0 < baseline_fraction < 1:
        raise AnalysisError(f"baseline_fraction must be in (0, 1), got {baseline_fraction}")
    smooth = moving_average(spread, window)
    n_base = max(1, int(len(smooth) * baseline_fraction))
    baseline = float(np.median(smooth[:n_base]))
    # An absolute floor keeps a near-zero baseline from flagging noise.
    threshold = max(factor * baseline, baseline + 1e-12, float(np.max(smooth[:n_base])) * 1.05)

    above = smooth > threshold
    # Find the first index from which `sustain` consecutive records are above.
    run = 0
    for idx in range(len(above)):
        run = run + 1 if above[idx] else 0
        if run >= sustain:
            start = idx - sustain + 1
            if steps is not None:
                return int(np.asarray(steps)[start])
            return start
    raise AnalysisError("the spread never diverges: DLB stayed within its limit")


def boundary_point(
    spread: np.ndarray,
    trajectory: Trajectory,
    steps: np.ndarray | None = None,
    **kwargs,
) -> BoundaryPoint:
    """Detect the divergence step and read its (n, C0/C) off the trajectory."""
    step = detect_divergence_step(spread, steps=steps, **kwargs)
    n, c0 = trajectory.point_at_step(step)
    return BoundaryPoint(step=step, n=n, c0_ratio=c0)
