"""Declarative campaign specifications.

A *campaign* is the unit the paper's evaluation actually consists of: tens to
hundreds of independent runs over a parameter grid (m x P x density x seeds,
or preset x mode x backend), each repeated per seed and aggregated into one
figure or table.  :class:`CampaignSpec` describes that grid declaratively;
each cell is a :class:`RunSpec` keyed by a deterministic content hash of its
*resolved* configuration, so identical work is recognised across processes,
invocations and machines (the run store's exactly-once guarantee hangs off
this hash).

Three run kinds cover the repo's experiment surface:

``"boundary"``
    One concentration sweep + boundary-point detection (the repetition unit
    behind Figures 9/10 and Table 1) -- executes
    :func:`repro.experiments.fig10.run_boundary_repetition`.
``"probe"``
    A prefix of a concentration sweep held at a fixed concentration level:
    the yes/no divergence oracle the adaptive bisection search is built on
    (see :mod:`repro.campaign.search`).
``"preset"``
    A named workload preset run as DDM or DLB-DDM with a selectable force
    backend (the Figure 5/6 unit).
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable, Iterable
from dataclasses import asdict, dataclass, fields

from ..config import SimulationConfig
from ..errors import CampaignError
from ..experiments.common import geometry_for, simulation_config_for
from ..rng import repetition_seeds
from ..units import PAPER_RHO_SWEEP

#: Bump when the hashed content's layout changes (invalidates stored runs).
SPEC_SCHEMA = 1

#: Valid run kinds.
RUN_KINDS = ("boundary", "probe", "preset")


@dataclass(frozen=True)
class RunSpec:
    """One schedulable run, fully determined by its fields.

    Attributes
    ----------
    kind:
        One of :data:`RUN_KINDS`.
    m, n_pes, density:
        Experiment geometry of the ``boundary``/``probe`` kinds.
    n_steps:
        Schedule length (``boundary``/``probe``) or MD steps (``preset``).
    seed:
        The schedule seed (``boundary``/``probe``) or the run seed
        (``preset``).  This is the *only* stochastic input: a stored spec
        replays the run exactly.
    repetition:
        Informational repetition index within the campaign grid.  Not part
        of the content hash -- two repetitions with identical parameters and
        seed are the same run.
    rounds_per_config:
        Balancer rounds per configuration (None = ``auto_rounds``).
    detector_factor, detector_sustain:
        Boundary-detector knobs of the ``boundary`` kind.
    probe_index, probe_hold:
        Concentration level and hold length of the ``probe`` kind.
    preset, mode, backend:
        Workload name, ddm/dlb side and force backend of the ``preset`` kind.
    engine, engine_workers:
        Execution engine of the ``preset`` kind (None = classic in-process).
        ``engine`` is part of the content hash (it selects the decomposed
        force path); ``engine_workers`` is not -- engine results are
        bit-identical for any worker count, and the scheduler rewrites it
        through the nested-parallelism guard without invalidating caches.
    balancer:
        Balancer strategy of the ``preset`` kind (None = the runner's
        default resolution, i.e. ``permanent``).  Part of the content hash
        when set -- different strategies redistribute differently -- and
        omitted when None so pre-seam stored specs keep their hashes.
    """

    kind: str = "boundary"
    m: int = 3
    n_pes: int = 9
    density: float = 0.256
    n_steps: int = 110
    seed: int = 0
    repetition: int = 0
    rounds_per_config: int | None = None
    detector_factor: float = 2.5
    detector_sustain: int = 15
    probe_index: int | None = None
    probe_hold: int = 30
    preset: str | None = None
    mode: str = "dlb"
    backend: str = "kdtree"
    engine: str | None = None
    engine_workers: int | None = None
    balancer: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in RUN_KINDS:
            raise CampaignError(f"unknown run kind {self.kind!r} (expected {RUN_KINDS})")
        if self.n_steps <= 0:
            raise CampaignError(f"n_steps must be positive, got {self.n_steps}")
        if self.kind == "probe":
            if self.probe_index is None or self.probe_index < 0:
                raise CampaignError(
                    f"probe runs need a non-negative probe_index, got {self.probe_index}"
                )
            if self.probe_index >= self.n_steps:
                raise CampaignError(
                    f"probe_index {self.probe_index} outside the schedule "
                    f"(n_steps={self.n_steps})"
                )
            if self.probe_hold <= 0:
                raise CampaignError(f"probe_hold must be positive, got {self.probe_hold}")
        if self.kind == "preset":
            if not self.preset:
                raise CampaignError("preset runs need a preset name")
            if self.mode not in ("ddm", "dlb"):
                raise CampaignError(f"preset mode must be ddm or dlb, got {self.mode!r}")
        if self.engine is not None:
            if self.kind != "preset":
                raise CampaignError("engines apply to preset runs only")
            if self.engine not in ("sequential", "multiprocess"):
                raise CampaignError(f"unknown engine {self.engine!r}")
        elif self.engine_workers is not None:
            raise CampaignError("engine_workers given without an engine")
        if self.balancer is not None:
            if self.kind != "preset":
                raise CampaignError("balancers apply to preset runs only")
            if self.balancer not in ("permanent", "diffusion", "sfc", "none"):
                raise CampaignError(
                    f"unknown balancer {self.balancer!r} (choose from "
                    "permanent, diffusion, sfc, none)"
                )

    # -- resolution and hashing -------------------------------------------

    def resolved_config(self) -> SimulationConfig:
        """The full :class:`SimulationConfig` this run executes against."""
        if self.kind == "preset":
            from ..workloads.presets import get_preset

            return get_preset(self.preset).simulation_config(
                dlb_enabled=self.mode == "dlb"
            )
        geometry = geometry_for(self.m, self.n_pes, self.density)
        return simulation_config_for(geometry, dlb_enabled=True)

    def content(self) -> dict:
        """The hashed content: resolved simulation config + run knobs.

        Everything that influences the run's payload is in here; pure
        metadata (the repetition index) is not, so re-gridding a campaign
        never re-executes work it has already stored.
        """
        knobs = {
            "kind": self.kind,
            "n_steps": self.n_steps,
            "seed": self.seed,
            "rounds_per_config": self.rounds_per_config,
        }
        if self.kind == "boundary":
            knobs["detector"] = {
                "factor": self.detector_factor,
                "sustain": self.detector_sustain,
            }
        elif self.kind == "probe":
            knobs["probe"] = {"index": self.probe_index, "hold": self.probe_hold}
        else:
            knobs["preset"] = {
                "name": self.preset,
                "mode": self.mode,
                "backend": self.backend,
            }
            # Hash-preserving: engine-less specs keep their pre-engine hash,
            # and the worker count never enters (results are worker-count
            # independent by the engine's bit-identity guarantee).
            if self.engine is not None:
                knobs["preset"]["engine"] = self.engine
            # Hash-preserving likewise: balancer-less specs resolve to the
            # permanent strategy and keep their pre-seam hash.
            if self.balancer is not None:
                knobs["preset"]["balancer"] = self.balancer
        return {
            "schema": SPEC_SCHEMA,
            "config": asdict(self.resolved_config()),
            "run": knobs,
        }

    def spec_hash(self) -> str:
        """Deterministic content hash (hex, 16 chars) keying the run store."""
        canonical = json.dumps(self.content(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (what the run store persists).

        Engine fields are omitted at their defaults, so stored spec JSON is
        byte-identical to pre-engine stores for engine-less runs.
        """
        data = asdict(self)
        if self.engine is None:
            del data["engine"]
            del data["engine_workers"]
        if self.balancer is None:
            del data["balancer"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class CampaignSpec:
    """A named, ordered collection of runs."""

    name: str
    runs: tuple[RunSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaigns need a name")
        if not self.runs:
            raise CampaignError(f"campaign {self.name!r} has no runs")

    def __len__(self) -> int:
        return len(self.runs)

    def hashes(self) -> list[str]:
        """Content hash of every run, in campaign order."""
        return [run.spec_hash() for run in self.runs]

    @classmethod
    def boundary_grid(
        cls,
        name: str,
        m_values: Iterable[int],
        pe_counts: Iterable[int],
        densities: Iterable[float],
        n_repetitions: int,
        n_steps: int,
        seed: int = 0,
        description: str = "",
        density_seed_offset: bool = True,
        pes_seed_offset: bool = False,
    ) -> "CampaignSpec":
        """Expand an (m x P x density x repetition) boundary grid.

        Per-point seeds follow the serial drivers exactly --
        ``seed + 1000*density`` for the Figure 10 grid, plus ``n_pes`` for
        Table 1 -- so a campaign's stored payloads agree bit-for-bit with
        :func:`repro.experiments.fig10.run_fig10` /
        :func:`repro.experiments.table1.run_table1` at the same parameters.
        """
        runs: list[RunSpec] = []
        for m in m_values:
            for n_pes in pe_counts:
                for density in densities:
                    point_seed = seed
                    if density_seed_offset:
                        point_seed += int(1000 * density)
                    if pes_seed_offset:
                        point_seed += n_pes
                    for rep, schedule_seed in enumerate(
                        repetition_seeds(point_seed, n_repetitions)
                    ):
                        runs.append(
                            RunSpec(
                                kind="boundary",
                                m=m,
                                n_pes=n_pes,
                                density=density,
                                n_steps=n_steps,
                                seed=schedule_seed,
                                repetition=rep,
                            )
                        )
        return cls(name=name, runs=tuple(runs), description=description)

    @classmethod
    def preset_grid(
        cls,
        name: str,
        presets: Iterable[str],
        modes: Iterable[str] = ("ddm", "dlb"),
        backends: Iterable[str] = ("kdtree",),
        n_steps: int = 200,
        seed: int = 7,
        description: str = "",
        engine: str | None = None,
        engine_workers: int | None = None,
        balancers: Iterable[str | None] = (None,),
    ) -> "CampaignSpec":
        """Expand a (preset x mode x backend x balancer) MD-comparison grid.

        ``balancers`` defaults to ``(None,)`` — the runner's own strategy
        resolution — which keeps pre-seam grids and their hashes unchanged.
        """
        runs = tuple(
            RunSpec(
                kind="preset",
                preset=preset,
                mode=mode,
                backend=backend,
                n_steps=n_steps,
                seed=seed,
                engine=engine,
                engine_workers=engine_workers,
                balancer=balancer,
            )
            for preset in presets
            for mode in modes
            for backend in backends
            for balancer in balancers
        )
        return cls(name=name, runs=runs, description=description)


# -- built-in campaigns -----------------------------------------------------


def _smoke() -> CampaignSpec:
    return CampaignSpec.boundary_grid(
        "smoke",
        m_values=(2,),
        pe_counts=(9,),
        densities=(0.256, 0.384),
        n_repetitions=3,
        n_steps=60,
        description="6-run smoke campaign (CI interrupt/resume check)",
    )


def _fig9_quick() -> CampaignSpec:
    return CampaignSpec.boundary_grid(
        "fig9-quick",
        m_values=(3,),
        pe_counts=(9,),
        densities=(0.256,),
        n_repetitions=1,
        n_steps=110,
        description="Figure 9: one (n, C0/C) trajectory sweep at m=3, P=9",
    )


def _fig10_quick() -> CampaignSpec:
    return CampaignSpec.boundary_grid(
        "fig10-quick",
        m_values=(2, 3, 4),
        pe_counts=(9,),
        densities=PAPER_RHO_SWEEP,
        n_repetitions=3,
        n_steps=100,
        description="Figure 10 panels at bench scale (P=9, 3 repetitions/point)",
    )


def _fig10_full() -> CampaignSpec:
    return CampaignSpec.boundary_grid(
        "fig10-full",
        m_values=(2, 3, 4),
        pe_counts=(36,),
        densities=PAPER_RHO_SWEEP,
        n_repetitions=10,
        n_steps=130,
        description="Figure 10 at the paper's scale (P=36, 10 repetitions/point)",
    )


def _table1_quick() -> CampaignSpec:
    return CampaignSpec.boundary_grid(
        "table1-quick",
        m_values=(2, 3),
        pe_counts=(9, 16),
        densities=PAPER_RHO_SWEEP,
        n_repetitions=3,
        n_steps=90,
        description="Table 1 E/T grid at bench scale",
        pes_seed_offset=True,
    )


def _table1_full() -> CampaignSpec:
    return CampaignSpec.boundary_grid(
        "table1-full",
        m_values=(2, 3, 4),
        pe_counts=(16, 36, 64),
        densities=PAPER_RHO_SWEEP,
        n_repetitions=10,
        n_steps=130,
        description="Table 1 at the paper's scale (16/36/64 PEs)",
        pes_seed_offset=True,
    )


def _fig5_quick() -> CampaignSpec:
    return CampaignSpec.preset_grid(
        "fig5-quick",
        presets=("bench-m2", "bench-m4"),
        n_steps=200,
        description="Figure 5: DDM vs DLB-DDM per-step time at bench scale",
    )


def _balancer_matrix() -> CampaignSpec:
    return CampaignSpec.preset_grid(
        "balancer-matrix",
        presets=("bench-m2", "bench-m4"),
        modes=("dlb",),
        n_steps=200,
        balancers=("permanent", "diffusion", "sfc", "none"),
        description=(
            "Balancer strategy matrix: permanent vs diffusion vs sfc vs none "
            "over the bench presets (the comparison-table unit)"
        ),
    )


#: Registry of built-in campaigns (factories, so specs stay immutable).
BUILTIN_CAMPAIGNS: dict[str, Callable[[], CampaignSpec]] = {
    "smoke": _smoke,
    "balancer-matrix": _balancer_matrix,
    "fig5-quick": _fig5_quick,
    "fig9-quick": _fig9_quick,
    "fig10-quick": _fig10_quick,
    "fig10-full": _fig10_full,
    "table1-quick": _table1_quick,
    "table1-full": _table1_full,
}


def campaign_names() -> list[str]:
    """Names of the built-in campaigns."""
    return sorted(BUILTIN_CAMPAIGNS)


def get_campaign(name: str) -> CampaignSpec:
    """Look up a built-in campaign by name."""
    try:
        factory = BUILTIN_CAMPAIGNS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign {name!r}; available: {', '.join(campaign_names())}"
        ) from None
    return factory()
