"""Adaptive boundary search: bisection over the concentration schedule.

The exhaustive way to localise DLB's effective-range boundary (the Figure 10
"E" points) is to run the full concentration sweep and watch where the spread
diverges -- every repetition costs a whole ``n_steps`` schedule.  But the
underlying question per concentration level is binary ("does DLB still keep
up here?") and monotone in the level: once the concentration exceeds the
effective range, holding it there keeps the spread diverged.  That structure
admits bisection.

A *probe* (``RunSpec(kind="probe")``) runs the schedule prefix up to a level
and then holds that level; its payload's ``diverged`` flag is the oracle.
:func:`bisect_boundary` needs ``O(log G)`` probes to localise the boundary on
a ``G``-point grid where :func:`exhaustive_boundary_scan` needs ``G`` -- the
benchmark asserts the >= 2x saving.  Probes are ordinary campaign runs:
handed a :class:`~repro.campaign.store.RunStore`, repeated searches reuse
each other's probes for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CampaignError
from .executor import execute_run
from .spec import RunSpec
from .store import RunStore


def probe_spec(
    m: int,
    n_pes: int,
    density: float,
    index: int,
    n_steps: int = 100,
    seed: int = 0,
    probe_hold: int = 30,
    rounds_per_config: int | None = None,
) -> RunSpec:
    """The probe run asking "does DLB diverge at schedule level ``index``?"."""
    return RunSpec(
        kind="probe",
        m=m,
        n_pes=n_pes,
        density=density,
        n_steps=n_steps,
        seed=seed,
        probe_index=index,
        probe_hold=probe_hold,
        rounds_per_config=rounds_per_config,
    )


def evaluate_probe(
    spec: RunSpec,
    store: RunStore | None = None,
    campaign: str = "search",
) -> dict:
    """Execute a probe (through the store's cache when one is given)."""
    if spec.kind != "probe":
        raise CampaignError(f"evaluate_probe needs a probe spec, got {spec.kind!r}")
    if store is None:
        return execute_run(spec)
    run_hash = store.register(spec, campaign)
    stored = store.get(run_hash)
    if stored is not None and stored.status == "done":
        return stored.payload
    import time

    store.start(run_hash)
    started = time.perf_counter()
    payload = execute_run(spec)
    store.complete(run_hash, payload, time.perf_counter() - started)
    return payload


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a boundary search over one (m, P, density) geometry.

    Attributes
    ----------
    boundary_index:
        First grid level whose probe diverges, or None when DLB keeps up
        across the whole grid.
    point:
        ``(n, c0_ratio)`` read off the boundary probe's trajectory
        (None when no boundary was found).
    n_probes:
        Probes *evaluated* by this search -- the cost the benchmark compares
        (cache hits served by a shared store still count; they would have
        been runs without the search strategy).
    grid:
        The schedule levels the search discretised over.
    """

    m: int
    n_pes: int
    density: float
    boundary_index: int | None
    point: tuple[float, float] | None
    n_probes: int
    grid: tuple[int, ...]

    @property
    def found(self) -> bool:
        """Whether the search localised a boundary."""
        return self.boundary_index is not None


def _search_grid(n_steps: int, stride: int) -> tuple[int, ...]:
    if stride <= 0:
        raise CampaignError(f"stride must be positive, got {stride}")
    return tuple(range(0, n_steps, stride))


def _point_of(payload: dict) -> tuple[float, float]:
    return (float(payload["n"]), float(payload["c0_ratio"]))


def bisect_boundary(
    m: int,
    n_pes: int,
    density: float,
    n_steps: int = 100,
    stride: int = 4,
    seed: int = 0,
    probe_hold: int = 30,
    rounds_per_config: int | None = None,
    store: RunStore | None = None,
) -> SearchResult:
    """Localise the first diverging schedule level by binary search.

    Assumes the probe oracle is monotone in the level (below the effective
    range DLB holds the spread, above it the spread stays diverged), which
    is the paper's own premise for a *boundary* existing.  Grid resolution
    matches :func:`exhaustive_boundary_scan` at the same ``stride``, so the
    two localise the same level -- in ``O(log G)`` instead of ``O(G)`` runs.
    """
    grid = _search_grid(n_steps, stride)
    n_probes = 0

    def oracle(index_in_grid: int) -> dict:
        nonlocal n_probes
        n_probes += 1
        spec = probe_spec(
            m, n_pes, density, grid[index_in_grid],
            n_steps=n_steps, seed=seed, probe_hold=probe_hold,
            rounds_per_config=rounds_per_config,
        )
        return evaluate_probe(spec, store=store)

    def result(boundary: int | None, payload: dict | None) -> SearchResult:
        return SearchResult(
            m=m, n_pes=n_pes, density=density,
            boundary_index=None if boundary is None else grid[boundary],
            point=_point_of(payload) if payload is not None else None,
            n_probes=n_probes, grid=grid,
        )

    # No boundary inside the grid at all?  One probe at the top level
    # settles it (and doubles as the bisection's initial "high" witness).
    top = oracle(len(grid) - 1)
    if not top["diverged"]:
        return result(None, None)
    first = oracle(0)
    if first["diverged"]:
        return result(0, first)

    # Invariant: grid[lo] holds, grid[hi] diverges.
    lo, hi, hi_payload = 0, len(grid) - 1, top
    while hi - lo > 1:
        mid = (lo + hi) // 2
        payload = oracle(mid)
        if payload["diverged"]:
            hi, hi_payload = mid, payload
        else:
            lo = mid
    return result(hi, hi_payload)


def exhaustive_boundary_scan(
    m: int,
    n_pes: int,
    density: float,
    n_steps: int = 100,
    stride: int = 4,
    seed: int = 0,
    probe_hold: int = 30,
    rounds_per_config: int | None = None,
    store: RunStore | None = None,
) -> SearchResult:
    """Probe every grid level in order -- the baseline the bisection beats.

    Scans the whole grid unconditionally (the way a parameter sweep would),
    then reports the first diverging level.
    """
    grid = _search_grid(n_steps, stride)
    boundary: int | None = None
    boundary_payload: dict | None = None
    for position, index in enumerate(grid):
        payload = evaluate_probe(
            probe_spec(
                m, n_pes, density, index,
                n_steps=n_steps, seed=seed, probe_hold=probe_hold,
                rounds_per_config=rounds_per_config,
            ),
            store=store,
        )
        if payload["diverged"] and boundary is None:
            boundary = position
            boundary_payload = payload
    return SearchResult(
        m=m, n_pes=n_pes, density=density,
        boundary_index=None if boundary is None else grid[boundary],
        point=_point_of(boundary_payload) if boundary_payload is not None else None,
        n_probes=len(grid), grid=grid,
    )
