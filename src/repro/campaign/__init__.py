"""repro.campaign: parallel, resumable experiment campaigns.

The paper's evaluation is not one run but a *campaign*: a grid of
(m x P x density x seed) repetitions behind each figure and table.  This
package turns that grid into a first-class object --

* :mod:`~repro.campaign.spec` declares campaigns; every run is keyed by a
  deterministic content hash of its resolved configuration;
* :mod:`~repro.campaign.store` persists results in SQLite with exactly-once
  semantics, so interrupted campaigns resume with zero recomputation;
* :mod:`~repro.campaign.executor` drains a campaign through a process pool
  with retries, per-run timeouts and graceful cancellation;
* :mod:`~repro.campaign.search` localises the DLB effective-range boundary
  by bisection in ``O(log G)`` probes instead of an ``O(G)`` sweep;
* :mod:`~repro.campaign.report` aggregates stored payloads back into the
  paper's tables.
"""

from .executor import CampaignSummary, execute_run, run_campaign
from .report import (
    BoundaryGroup,
    CampaignReport,
    campaign_report,
    group_experiment,
    render_report,
)
from .search import (
    SearchResult,
    bisect_boundary,
    evaluate_probe,
    exhaustive_boundary_scan,
    probe_spec,
)
from .spec import (
    BUILTIN_CAMPAIGNS,
    CampaignSpec,
    RunSpec,
    campaign_names,
    get_campaign,
)
from .store import RunStore, StoredRun, canonical_payload

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "BoundaryGroup",
    "CampaignReport",
    "CampaignSpec",
    "CampaignSummary",
    "RunSpec",
    "RunStore",
    "SearchResult",
    "StoredRun",
    "bisect_boundary",
    "campaign_names",
    "campaign_report",
    "canonical_payload",
    "evaluate_probe",
    "execute_run",
    "exhaustive_boundary_scan",
    "get_campaign",
    "group_experiment",
    "probe_spec",
    "render_report",
    "run_campaign",
]
