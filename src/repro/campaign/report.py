"""Campaign reports: aggregate stored payloads back into figure/table form.

A report never re-executes anything -- it reads the run store, groups the
``done`` payloads of one campaign by experiment point and summarises them:

* ``boundary`` runs group by ``(m, P, density)`` and report *every*
  repetition's boundary point alongside the mean and spread (the paper plots
  the mean; the spread is what the error bars in Figure 10 come from), plus
  the theory bound and E/T ratio.  Each repetition's seed is printed, so any
  single run can be replayed from the report alone.
* ``preset`` runs group by ``(preset, backend)`` and report the DDM vs
  DLB-DDM per-step times side by side (the Figure 5 comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reporting.tables import format_table
from .store import RunStore, StoredRun


@dataclass(frozen=True)
class BoundaryGroup:
    """All repetitions of one (m, P, density) boundary point."""

    m: int
    n_pes: int
    density: float
    repetitions: tuple[dict, ...]

    @property
    def seeds(self) -> tuple[int, ...]:
        """Per-repetition schedule seeds, in run order."""
        return tuple(int(rep["seed"]) for rep in self.repetitions)

    @property
    def points(self) -> tuple[dict, ...]:
        """The diverged repetitions (those that produced a boundary point)."""
        return tuple(rep for rep in self.repetitions if rep["diverged"])

    @property
    def n_failed(self) -> int:
        """Repetitions whose spread never diverged."""
        return len(self.repetitions) - len(self.points)

    def mean_std(self, key: str) -> tuple[float, float] | None:
        """Mean and std of one payload field across the diverged reps."""
        values = [float(rep[key]) for rep in self.points if rep.get(key) is not None]
        if not values:
            return None
        return float(np.mean(values)), float(np.std(values))

    @property
    def mean_et_ratio(self) -> float | None:
        """Mean experimental/theoretical boundary ratio."""
        stats = self.mean_std("et_ratio")
        return stats[0] if stats else None


@dataclass(frozen=True)
class CampaignReport:
    """Aggregated view of one campaign's stored payloads."""

    campaign: str
    counts: dict[str, int]
    boundary_groups: tuple[BoundaryGroup, ...]
    preset_rows: tuple[dict, ...]
    failures: tuple[StoredRun, ...]

    @property
    def complete(self) -> bool:
        """Whether every registered run of the campaign is ``done``."""
        return self.counts.get("done", 0) == sum(self.counts.values())


def _group_boundaries(payloads: list[dict]) -> tuple[BoundaryGroup, ...]:
    grouped: dict[tuple[int, int, float], list[dict]] = {}
    for payload in payloads:
        key = (int(payload["m"]), int(payload["n_pes"]), float(payload["density"]))
        grouped.setdefault(key, []).append(payload)
    return tuple(
        BoundaryGroup(m=m, n_pes=n_pes, density=density, repetitions=tuple(reps))
        for (m, n_pes, density), reps in sorted(grouped.items())
    )


def campaign_report(store: RunStore, campaign: str) -> CampaignReport:
    """Build the aggregated report of one campaign from the store."""
    rows = store.runs(campaign)
    boundary: list[dict] = []
    presets: list[dict] = []
    failures: list[StoredRun] = []
    for row in rows:
        if row.status == "failed":
            failures.append(row)
        if row.status != "done" or row.payload is None:
            continue
        kind = row.payload.get("kind")
        if kind == "boundary":
            boundary.append(row.payload)
        elif kind == "preset":
            presets.append(row.payload)
    return CampaignReport(
        campaign=campaign,
        counts=store.status_counts(campaign),
        boundary_groups=_group_boundaries(boundary),
        preset_rows=tuple(presets),
        failures=tuple(failures),
    )


def group_experiment(group: BoundaryGroup):
    """Rebuild a :class:`~repro.experiments.fig10.BoundaryExperiment`.

    Stored campaign payloads carry everything a repetition outcome holds, so
    the serial drivers' aggregation (mean point, error bars, boundary fit)
    applies unchanged to campaign results -- this is what lets the Figure 10
    benchmark run through the engine without touching its assertions.
    """
    from ..experiments.common import geometry_for
    from ..experiments.fig10 import RepetitionOutcome, experiment_from_outcomes
    from ..theory.boundary import BoundaryPoint

    outcomes = [
        RepetitionOutcome(
            seed=int(rep["seed"]),
            point=(
                BoundaryPoint(
                    step=int(rep["step"]),
                    n=float(rep["n"]),
                    c0_ratio=float(rep["c0_ratio"]),
                )
                if rep["diverged"]
                else None
            ),
        )
        for rep in group.repetitions
    ]
    return experiment_from_outcomes(
        geometry_for(group.m, group.n_pes, group.density), outcomes
    )


def _fmt(value: float | None, pattern: str = "{:.4f}") -> str:
    return "-" if value is None else pattern.format(value)


def render_report(report: CampaignReport) -> str:
    """Human-readable report text (what ``repro campaign report`` prints)."""
    lines: list[str] = []
    counts = ", ".join(f"{k}={v}" for k, v in report.counts.items() if v)
    lines.append(f"campaign {report.campaign!r}: {counts or 'no runs registered'}")
    if report.boundary_groups:
        rows = []
        for group in report.boundary_groups:
            n_stats = group.mean_std("n")
            c_stats = group.mean_std("c0_ratio")
            rows.append(
                [
                    group.m,
                    group.n_pes,
                    group.density,
                    f"{len(group.points)}/{len(group.repetitions)}",
                    _fmt(n_stats[0] if n_stats else None)
                    + (f" ± {n_stats[1]:.4f}" if n_stats else ""),
                    _fmt(c_stats[0] if c_stats else None)
                    + (f" ± {c_stats[1]:.4f}" if c_stats else ""),
                    _fmt(group.mean_et_ratio, "{:.3f}"),
                ]
            )
        lines.append(
            format_table(
                ["m", "P", "rho", "diverged", "n (mean ± std)",
                 "C0/C (mean ± std)", "E/T"],
                rows,
                title="boundary points",
            )
        )
        rep_rows = []
        for group in report.boundary_groups:
            for index, rep in enumerate(group.repetitions):
                rep_rows.append(
                    [
                        group.m,
                        group.n_pes,
                        group.density,
                        index,
                        rep["seed"],
                        "yes" if rep["diverged"] else "no",
                        _fmt(rep.get("n")),
                        _fmt(rep.get("c0_ratio")),
                    ]
                )
        lines.append(
            format_table(
                ["m", "P", "rho", "rep", "seed", "diverged", "n", "C0/C"],
                rep_rows,
                title="per-repetition boundary points (seed replays the run)",
            )
        )
    if report.preset_rows:
        rows = [
            [
                payload["preset"],
                payload["mode"],
                payload["backend"],
                # Pre-seam payloads predate the balancer field; they ran the
                # permanent-cells protocol by construction.
                payload.get("balancer", "permanent"),
                payload["seed"],
                _fmt(payload.get("tt_mean"), "{:.5f}"),
                _fmt(payload.get("tt_last"), "{:.5f}"),
                _fmt(payload.get("spread_last"), "{:.5f}"),
            ]
            for payload in sorted(
                report.preset_rows,
                key=lambda p: (
                    p["preset"],
                    p["backend"],
                    p["mode"],
                    p.get("balancer", "permanent"),
                ),
            )
        ]
        lines.append(
            format_table(
                ["preset", "mode", "backend", "balancer", "seed", "tt_mean",
                 "tt_last", "spread_last"],
                rows,
                title="preset runs",
            )
        )
    for failure in report.failures:
        last_line = (failure.error or "").strip().splitlines()
        lines.append(f"FAILED {failure.hash}: {last_line[-1] if last_line else '?'}")
    return "\n".join(lines)
