"""Persistent run store: cross-invocation caching, exactly-once, leases.

One SQLite file per campaign directory holds every run the engine has ever
seen, keyed by the spec's content hash.  A run moves through the statuses

    pending -> running -> done | failed | quarantined

and a ``done`` run is *never* re-executed: re-submitting the same campaign
(or a different campaign sharing grid points) serves the stored payload as a
cache hit.  ``failed`` rows are retryable; ``quarantined`` rows are terminal
until an operator explicitly requeues them (``repro runs requeue``).

Ownership of a ``running`` row is a **lease**: the row records which
instance owns it (``owner``), its attempt counter, and — for monitored
leases — a deadline on the store clock after which any other instance may
reclaim the run.  Every mutation of a leased row is a compare-and-swap on
``(hash, status, owner, attempts)``, so an instance that was paused past its
deadline and lost the lease can *never* renew it, demote it, or commit a
result over the reclaimer's work.  The store clock defaults to
``time.monotonic()``, which on one host is shared by all processes and
immune to wall-clock skew; tests inject skewed clocks to prove the CAS keeps
the exactly-once guarantee even when clocks disagree.

Payloads are stored as canonical JSON (sorted keys, compact separators), so
"same spec hash => same payload" is checkable byte-for-byte across serial
and parallel executions.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import sqlite3
import time
from dataclasses import dataclass, replace
from pathlib import Path

from ..core.results import attach_schema_version, check_schema_version
from ..errors import CampaignError
from .spec import RunSpec

#: Store schema version (bump on layout change; v1 stores migrate in place).
STORE_SCHEMA = 2

#: Database filename inside a campaign directory.
DB_NAME = "campaign.sqlite"

_STATUSES = ("pending", "running", "done", "failed", "quarantined")

#: Statuses a lease acquisition may flip to ``running``.
_CLAIMABLE = ("pending", "failed")

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS runs (
    hash TEXT PRIMARY KEY,
    campaign TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    status TEXT NOT NULL,
    payload_json TEXT,
    error TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    duration_s REAL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    owner TEXT,
    lease_deadline REAL,
    failed_owners TEXT NOT NULL DEFAULT '[]'
);
CREATE INDEX IF NOT EXISTS runs_by_campaign ON runs (campaign, status);
CREATE TABLE IF NOT EXISTS instances (
    id TEXT PRIMARY KEY,
    started_at REAL NOT NULL,
    last_seen REAL NOT NULL,
    deadline REAL NOT NULL
);
"""

#: ALTER statements migrating a v1 ``runs`` table in place (v1 rows have no
#: lease columns; NULL owner/deadline reads back as an unmonitored claim).
_MIGRATE_V1_SQL = (
    "ALTER TABLE runs ADD COLUMN owner TEXT",
    "ALTER TABLE runs ADD COLUMN lease_deadline REAL",
    "ALTER TABLE runs ADD COLUMN failed_owners TEXT NOT NULL DEFAULT '[]'",
)

_ROW_COLUMNS = (
    "hash, campaign, spec_json, status, payload_json, error, attempts, "
    "duration_s, owner, lease_deadline, failed_owners"
)


def canonical_payload(payload: dict) -> str:
    """The canonical JSON form payloads are stored (and compared) in."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def default_instance_id() -> str:
    """A fleet-unique instance identity: ``<host>-<pid>-<nonce>``.

    The pid is embedded second-to-last so operators (and the chaos harness)
    can map a lease's owner back to a live process.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(3)}"


def quarantine_payload(
    reason: str,
    failed_owners: list[str],
    attempts: int,
    last_error: str | None = None,
) -> dict:
    """The structured error payload a quarantined run carries."""
    return {
        "quarantined": True,
        "reason": reason,
        "attempts": int(attempts),
        "failed_owners": sorted(failed_owners),
        "last_error": last_error,
    }


@dataclass(frozen=True)
class Lease:
    """Proof of ownership of one ``running`` row.

    ``attempt`` is the attempts counter *at acquisition*: every guarded
    store operation compares it, so a reclaim (which bumps the counter)
    invalidates all previously-issued leases for the hash at once.
    ``deadline`` is on the store clock; ``None`` marks an unmonitored claim
    (legacy single-process semantics — never expires, reclaimed only by a
    takeover/startup sweep).
    """

    run_hash: str
    owner: str
    attempt: int
    deadline: float | None
    ttl: float | None


@dataclass(frozen=True)
class StoredRun:
    """One row of the run store."""

    hash: str
    campaign: str
    spec: dict
    status: str
    payload: dict | None
    error: str | None
    attempts: int
    duration_s: float | None
    owner: str | None = None
    lease_deadline: float | None = None
    failed_owners: tuple[str, ...] = ()

    @property
    def payload_json(self) -> str | None:
        """Canonical JSON of the payload (byte-comparable across stores)."""
        return canonical_payload(self.payload) if self.payload is not None else None

    @property
    def error_payload(self) -> dict | None:
        """The structured error payload, when the error column holds one."""
        if self.error is None:
            return None
        try:
            decoded = json.loads(self.error)
        except (TypeError, ValueError):
            return {"reason": self.error}
        return decoded if isinstance(decoded, dict) else {"reason": self.error}

    def run_spec(self) -> RunSpec:
        """The stored spec, rebuilt as a :class:`RunSpec`."""
        return RunSpec.from_dict(self.spec)


class RunStore:
    """SQLite-backed store of campaign runs.

    ``path`` is a campaign directory (created on demand); ``None`` opens an
    in-memory store for ephemeral executions (the CLI ``sweep`` alias).

    *Across* processes the store is safe to share: file-backed stores run in
    WAL journal mode with a busy timeout, and every ownership transition is
    an atomic compare-and-swap (see :meth:`acquire_lease`), so any number of
    processes draining the same campaign never double-execute a run.
    Concurrent drainers must open with ``takeover=False`` -- the default
    ``takeover=True`` demotes every ``running`` row at open, which is right
    for crash recovery in a single-drainer world but would steal a sibling
    process's in-flight runs.  Fleet members instead open with
    ``takeover=False`` and rely on :meth:`sweep_stale` /
    :meth:`reclaim_expired`, which only touch expired or unmonitored leases.

    ``clock`` is the lease clock (defaults to ``time.monotonic``, which all
    processes on one host share); ``instance_id`` names this opener in
    leases it takes (defaults to a fresh :func:`default_instance_id`).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        takeover: bool = True,
        busy_timeout: float = 30.0,
        clock=None,
        instance_id: str | None = None,
    ) -> None:
        self.clock = clock if clock is not None else time.monotonic
        self.instance_id = instance_id or default_instance_id()
        if path is None:
            self.directory = None
            self._db = sqlite3.connect(":memory:")
        else:
            self.directory = Path(path)
            self.directory.mkdir(parents=True, exist_ok=True)
            self._db = sqlite3.connect(
                self.directory / DB_NAME, timeout=busy_timeout
            )
            # WAL lets a reader (status/report) proceed under a writer and
            # makes small commits cheaper; busy_timeout turns lock contention
            # between sibling processes into a bounded wait instead of an
            # immediate "database is locked" error.
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
            self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA_SQL)
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                (str(STORE_SCHEMA),),
            )
            self._db.commit()
        elif int(row[0]) == 1:
            self._migrate_v1()
        elif int(row[0]) != STORE_SCHEMA:
            raise CampaignError(
                f"run store schema {row[0]} != supported {STORE_SCHEMA} "
                f"(delete {self.directory} to rebuild)"
            )
        # Any 'running' rows are stale markers from an interrupted process --
        # unless a sibling process may legitimately be mid-run (takeover=False).
        if takeover:
            self.reset_running()

    def _migrate_v1(self) -> None:
        """Upgrade a v1 store in place (additive columns; rows preserved)."""
        existing = {
            row[1] for row in self._db.execute("PRAGMA table_info(runs)")
        }
        for statement in _MIGRATE_V1_SQL:
            column = statement.split(" ADD COLUMN ", 1)[1].split()[0]
            if column not in existing:
                self._db.execute(statement)
        self._db.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema'", (str(STORE_SCHEMA),)
        )
        self._db.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        self._db.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def ping(self) -> None:
        """Cheap liveness probe; raises ``sqlite3.Error`` when unusable."""
        self._db.execute("SELECT 1").fetchone()

    # -- row access --------------------------------------------------------

    def get(self, run_hash: str) -> StoredRun | None:
        """The stored run under ``run_hash``, or None."""
        row = self._db.execute(
            f"SELECT {_ROW_COLUMNS} FROM runs WHERE hash = ?",
            (run_hash,),
        ).fetchone()
        return self._to_stored(row) if row is not None else None

    def runs(
        self, campaign: str | None = None, status: str | None = None
    ) -> list[StoredRun]:
        """All stored runs (optionally restricted to one campaign/status)."""
        clauses, params = [], []
        if campaign is not None:
            clauses.append("campaign = ?")
            params.append(campaign)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        rows = self._db.execute(
            f"SELECT {_ROW_COLUMNS} FROM runs{where} ORDER BY rowid",
            tuple(params),
        ).fetchall()
        return [self._to_stored(row) for row in rows]

    def quarantined_runs(self, campaign: str | None = None) -> list[StoredRun]:
        """Quarantined rows (the ``repro runs quarantine`` listing)."""
        return self.runs(campaign, status="quarantined")

    @staticmethod
    def _to_stored(row: tuple) -> StoredRun:
        (run_hash, campaign, spec_json, status, payload_json, error,
         attempts, duration_s, owner, lease_deadline, failed_owners) = row
        payload = json.loads(payload_json) if payload_json else None
        if payload is not None and "schema_version" in payload:
            # Pre-versioning rows load as-is; stamped rows must be readable.
            check_schema_version(payload, source=f"stored run {run_hash}")
        return StoredRun(
            hash=run_hash,
            campaign=campaign,
            spec=json.loads(spec_json),
            status=status,
            payload=payload,
            error=error,
            attempts=int(attempts),
            duration_s=duration_s,
            owner=owner,
            lease_deadline=lease_deadline,
            failed_owners=tuple(json.loads(failed_owners or "[]")),
        )

    # -- registration ------------------------------------------------------

    def register(self, spec: RunSpec, campaign: str, run_hash: str | None = None) -> str:
        """Ensure a row exists for ``spec``; returns its hash.

        Existing rows keep their status and payload (exactly-once: a ``done``
        run stays done no matter how many campaigns resubmit it).
        """
        run_hash = run_hash if run_hash is not None else spec.spec_hash()
        now = time.time()
        self._db.execute(
            "INSERT INTO runs (hash, campaign, spec_json, status, attempts, "
            "created_at, updated_at) VALUES (?, ?, ?, 'pending', 0, ?, ?) "
            "ON CONFLICT(hash) DO NOTHING",
            (run_hash, campaign, canonical_payload(spec.to_dict()), now, now),
        )
        self._db.commit()
        return run_hash

    # -- the lease API -----------------------------------------------------

    def acquire_lease(
        self,
        run_hash: str,
        owner: str | None = None,
        ttl: float | None = None,
    ) -> Lease | None:
        """Atomically claim a runnable row; the exactly-once primitive.

        Flips ``pending``/``failed`` to ``running`` (counting the attempt)
        in one compare-and-set UPDATE, so of any number of processes racing
        on the same hash exactly one gets a :class:`Lease`; the rest get
        ``None`` (the row is running, done or quarantined elsewhere) and
        must skip the run.  ``ttl`` of ``None`` takes an unmonitored claim
        that never expires (the legacy single-drainer mode); a real ``ttl``
        arms the deadline siblings reclaim through :meth:`reclaim_expired`,
        so the holder must keep it fresh via :meth:`renew_lease`.
        """
        owner = owner or self.instance_id
        deadline = self.clock() + ttl if ttl is not None else None
        placeholders = ", ".join("?" for _ in _CLAIMABLE)
        cursor = self._db.execute(
            "UPDATE runs SET status = 'running', owner = ?, "
            "lease_deadline = ?, attempts = attempts + 1, updated_at = ? "
            f"WHERE hash = ? AND status IN ({placeholders})",
            (owner, deadline, time.time(), run_hash, *_CLAIMABLE),
        )
        if cursor.rowcount != 1:
            self._db.commit()
            return None
        # Still inside the implicit transaction: the attempt counter we read
        # is exactly the one our UPDATE wrote.
        attempt = self._db.execute(
            "SELECT attempts FROM runs WHERE hash = ?", (run_hash,)
        ).fetchone()[0]
        self._db.commit()
        return Lease(run_hash, owner, int(attempt), deadline, ttl)

    def renew_lease(self, lease: Lease, extend: float | None = None) -> Lease | None:
        """Heartbeat a monitored lease; ``None`` means ownership was lost.

        The renewal is a compare-and-swap on ``(hash, running, owner,
        attempt)``: once a sibling has reclaimed the run (bumping the
        attempt counter), every renewal by the old holder fails — a paused-
        then-resumed instance discovers the loss instead of silently
        extending a lease it no longer holds.
        """
        ttl = extend if extend is not None else lease.ttl
        if ttl is None:
            return lease  # unmonitored claims don't expire, nothing to renew
        deadline = self.clock() + ttl
        cursor = self._db.execute(
            "UPDATE runs SET lease_deadline = ?, updated_at = ? "
            "WHERE hash = ? AND status = 'running' AND owner = ? "
            "AND attempts = ?",
            (deadline, time.time(), lease.run_hash, lease.owner, lease.attempt),
        )
        self._db.commit()
        if cursor.rowcount != 1:
            return None
        return replace(lease, deadline=deadline, ttl=ttl)

    def retry_lease(self, lease: Lease) -> Lease | None:
        """Start another attempt under the same owner (retry-with-backoff).

        Bumps the attempt counter and refreshes the deadline in one CAS;
        ``None`` means the lease was lost and the retry must not run.
        """
        deadline = self.clock() + lease.ttl if lease.ttl is not None else None
        cursor = self._db.execute(
            "UPDATE runs SET attempts = attempts + 1, lease_deadline = ?, "
            "updated_at = ? WHERE hash = ? AND status = 'running' "
            "AND owner = ? AND attempts = ?",
            (deadline, time.time(), lease.run_hash, lease.owner, lease.attempt),
        )
        self._db.commit()
        if cursor.rowcount != 1:
            return None
        return replace(lease, attempt=lease.attempt + 1, deadline=deadline)

    def release_lease(self, lease: Lease) -> bool:
        """Demote one *owned* in-flight run back to ``pending`` (resumable).

        The clean-interruption counterpart of :meth:`acquire_lease`: an
        instance that caught SIGTERM releases exactly the runs *it* holds.
        A lost lease releases nothing (the reclaimer owns the row now).
        """
        cursor = self._db.execute(
            "UPDATE runs SET status = 'pending', owner = NULL, "
            "lease_deadline = NULL, updated_at = ? "
            "WHERE hash = ? AND status = 'running' AND owner = ? "
            "AND attempts = ?",
            (time.time(), lease.run_hash, lease.owner, lease.attempt),
        )
        self._db.commit()
        return cursor.rowcount == 1

    def reclaim_expired(
        self,
        owner: str | None = None,
        ttl: float | None = None,
        quarantine_after: int | None = None,
    ) -> tuple[list[Lease], list[StoredRun]]:
        """Take over every run whose monitored lease has expired.

        For each expired ``running`` row, the dead owner is recorded as a
        failed instance and the row is either re-leased to ``owner`` (with
        the attempt counter bumped, so stale leases die) or — once
        ``quarantine_after`` *distinct* instances have failed it — moved to
        the terminal ``quarantined`` status with a structured error payload
        instead of being re-enqueued forever.  Returns
        ``(new leases, newly quarantined rows)``.

        Runs under an unmonitored claim (``lease_deadline`` NULL) are never
        reclaimed here; they belong to a legacy drainer and only a takeover
        sweep may demote them.
        """
        owner = owner or self.instance_id
        now = self.clock()
        leases: list[Lease] = []
        quarantined: list[StoredRun] = []
        self._db.execute("BEGIN IMMEDIATE")
        try:
            rows = self._db.execute(
                "SELECT hash, owner, attempts, failed_owners, error FROM runs "
                "WHERE status = 'running' AND lease_deadline IS NOT NULL "
                "AND lease_deadline < ?",
                (now,),
            ).fetchall()
            for run_hash, dead_owner, attempts, failed_owners, last_error in rows:
                owners = set(json.loads(failed_owners or "[]"))
                if dead_owner is not None:
                    owners.add(dead_owner)
                owners_json = json.dumps(sorted(owners))
                if quarantine_after is not None and len(owners) >= quarantine_after:
                    error = json.dumps(quarantine_payload(
                        f"lease expired on {len(owners)} distinct instance(s)",
                        sorted(owners), int(attempts), last_error,
                    ), sort_keys=True)
                    self._db.execute(
                        "UPDATE runs SET status = 'quarantined', owner = NULL, "
                        "lease_deadline = NULL, failed_owners = ?, error = ?, "
                        "updated_at = ? WHERE hash = ? AND attempts = ?",
                        (owners_json, error, time.time(), run_hash, attempts),
                    )
                else:
                    deadline = now + ttl if ttl is not None else None
                    self._db.execute(
                        "UPDATE runs SET owner = ?, attempts = attempts + 1, "
                        "lease_deadline = ?, failed_owners = ?, updated_at = ? "
                        "WHERE hash = ? AND attempts = ?",
                        (owner, deadline, owners_json, time.time(),
                         run_hash, attempts),
                    )
                    leases.append(
                        Lease(run_hash, owner, int(attempts) + 1, deadline, ttl)
                    )
            self._db.commit()
        except BaseException:
            self._db.rollback()
            raise
        for run_hash, *_rest in rows:
            stored = self.get(run_hash)
            if stored is not None and stored.status == "quarantined":
                quarantined.append(stored)
        return leases, quarantined

    # -- legacy claim wrappers ---------------------------------------------

    def claim(self, run_hash: str) -> bool:
        """Legacy boolean claim: an unmonitored lease under this store's id."""
        return self.acquire_lease(run_hash, ttl=None) is not None

    def release(self, run_hash: str) -> bool:
        """Legacy owner-agnostic demotion of one in-flight run."""
        cursor = self._db.execute(
            "UPDATE runs SET status = 'pending', owner = NULL, "
            "lease_deadline = NULL, updated_at = ? "
            "WHERE hash = ? AND status = 'running'",
            (time.time(), run_hash),
        )
        self._db.commit()
        return cursor.rowcount == 1

    def start(self, run_hash: str) -> None:
        """Mark a run as in flight and count the attempt (legacy retries)."""
        self._set_status(run_hash, "running", attempt=True)

    # -- result transitions ------------------------------------------------

    def complete(
        self,
        run_hash: str,
        payload: dict,
        duration_s: float,
        lease: Lease | None = None,
    ) -> bool:
        """Record a successful payload; returns whether the write landed.

        With a ``lease``, the commit is guarded by the ownership CAS: an
        instance that lost its lease (reclaimed after a pause, drained, or
        requeued) gets ``False`` and **must** discard the result — this is
        what makes "exactly one stored payload" hold under failover.
        Payloads are stamped with the result schema version on the way in.
        """
        payload = attach_schema_version(payload)
        guard, params = "", ()
        if lease is not None:
            guard = " AND status = 'running' AND owner = ? AND attempts = ?"
            params = (lease.owner, lease.attempt)
        cursor = self._db.execute(
            "UPDATE runs SET status = 'done', payload_json = ?, error = NULL, "
            "lease_deadline = NULL, duration_s = ?, updated_at = ? "
            f"WHERE hash = ?{guard}",
            (canonical_payload(payload), float(duration_s), time.time(),
             run_hash, *params),
        )
        self._db.commit()
        return cursor.rowcount == 1

    def fail(
        self,
        run_hash: str,
        error: str,
        duration_s: float | None = None,
        lease: Lease | None = None,
        quarantine_after: int | None = None,
    ) -> str | None:
        """Record a failure; returns the resulting status.

        Without a lease this is the legacy unguarded write (always
        ``"failed"``).  With one, the write is ownership-CAS-guarded
        (``None`` = lease lost, nothing recorded) and the failing owner is
        added to the run's distinct-instance failure set; once that set
        reaches ``quarantine_after`` the run lands in the terminal
        ``quarantined`` status with a structured error payload instead of
        staying eligible for another claim.
        """
        if lease is None:
            self._db.execute(
                "UPDATE runs SET status = 'failed', error = ?, duration_s = ?, "
                "lease_deadline = NULL, updated_at = ? WHERE hash = ?",
                (error, duration_s, time.time(), run_hash),
            )
            self._db.commit()
            return "failed"
        self._db.execute("BEGIN IMMEDIATE")
        try:
            row = self._db.execute(
                "SELECT failed_owners FROM runs WHERE hash = ? "
                "AND status = 'running' AND owner = ? AND attempts = ?",
                (run_hash, lease.owner, lease.attempt),
            ).fetchone()
            if row is None:
                self._db.commit()
                return None
            owners = sorted(set(json.loads(row[0] or "[]")) | {lease.owner})
            status = "failed"
            stored_error = error
            if quarantine_after is not None and len(owners) >= quarantine_after:
                status = "quarantined"
                stored_error = json.dumps(quarantine_payload(
                    f"failed on {len(owners)} distinct instance(s)",
                    owners, lease.attempt, error,
                ), sort_keys=True)
            self._db.execute(
                "UPDATE runs SET status = ?, error = ?, duration_s = ?, "
                "owner = NULL, lease_deadline = NULL, failed_owners = ?, "
                "updated_at = ? WHERE hash = ? AND status = 'running' "
                "AND owner = ? AND attempts = ?",
                (status, stored_error, duration_s, json.dumps(owners),
                 time.time(), run_hash, lease.owner, lease.attempt),
            )
            self._db.commit()
            return status
        except BaseException:
            self._db.rollback()
            raise

    # -- quarantine operations ---------------------------------------------

    def quarantine(self, run_hash: str, reason: str) -> bool:
        """Force a run into the terminal quarantine (operator action)."""
        stored = self.get(run_hash)
        if stored is None or stored.status in ("done", "quarantined"):
            return False
        error = json.dumps(quarantine_payload(
            reason, sorted(set(stored.failed_owners)), stored.attempts,
            stored.error,
        ), sort_keys=True)
        cursor = self._db.execute(
            "UPDATE runs SET status = 'quarantined', owner = NULL, "
            "lease_deadline = NULL, error = ?, updated_at = ? "
            "WHERE hash = ? AND status NOT IN ('done', 'quarantined')",
            (error, time.time(), run_hash),
        )
        self._db.commit()
        return cursor.rowcount == 1

    def requeue_quarantined(self, run_hash: str) -> bool:
        """Lift a quarantine: back to ``pending`` with a clean failure slate."""
        cursor = self._db.execute(
            "UPDATE runs SET status = 'pending', owner = NULL, "
            "lease_deadline = NULL, error = NULL, failed_owners = '[]', "
            "updated_at = ? WHERE hash = ? AND status = 'quarantined'",
            (time.time(), run_hash),
        )
        self._db.commit()
        return cursor.rowcount == 1

    # -- sweeps ------------------------------------------------------------

    def reset_running(self) -> int:
        """Demote every ``running`` row to ``pending`` (takeover sweep).

        Single-drainer crash recovery only: in a fleet this would steal
        siblings' live leases — use :meth:`sweep_stale` there.
        """
        cursor = self._db.execute(
            "UPDATE runs SET status = 'pending', owner = NULL, "
            "lease_deadline = NULL, updated_at = ? WHERE status = 'running'",
            (time.time(),),
        )
        self._db.commit()
        return cursor.rowcount

    def sweep_stale(self) -> int:
        """Demote unmonitored or expired ``running`` rows; returns the count.

        The fleet-safe startup sweep: rows under a live monitored lease (a
        sibling instance heartbeating its deadline) are left alone; rows
        with no deadline (a crashed legacy drainer or pre-lease store) or an
        expired one are stale markers and go back to ``pending``.
        """
        cursor = self._db.execute(
            "UPDATE runs SET status = 'pending', owner = NULL, "
            "lease_deadline = NULL, updated_at = ? WHERE status = 'running' "
            "AND (lease_deadline IS NULL OR lease_deadline < ?)",
            (time.time(), self.clock()),
        )
        self._db.commit()
        return cursor.rowcount

    # -- eviction (result TTL) ---------------------------------------------

    def evict_older_than(
        self,
        age_s: float,
        statuses: tuple[str, ...] = ("done",),
        campaign: str | None = None,
        now: float | None = None,
    ) -> list[str]:
        """Delete terminal rows not updated for ``age_s`` seconds.

        Returns the evicted hashes so callers can clean per-run artifacts
        (event logs, checkpoint directories).  An evicted run re-registers
        as ``pending`` on resubmission and re-executes cleanly — eviction
        trades storage for recomputation, never correctness.
        """
        for status in statuses:
            if status in ("pending", "running"):
                raise CampaignError(
                    f"cannot evict {status!r} rows (not terminal)"
                )
            if status not in _STATUSES:
                raise CampaignError(f"unknown status {status!r}")
        if age_s < 0:
            raise CampaignError(f"eviction age must be >= 0, got {age_s}")
        cutoff = (now if now is not None else time.time()) - float(age_s)
        placeholders = ", ".join("?" for _ in statuses)
        clause = f"status IN ({placeholders}) AND updated_at < ?"
        params: list = [*statuses, cutoff]
        if campaign is not None:
            clause += " AND campaign = ?"
            params.append(campaign)
        rows = self._db.execute(
            f"SELECT hash FROM runs WHERE {clause}", tuple(params)
        ).fetchall()
        self._db.execute(f"DELETE FROM runs WHERE {clause}", tuple(params))
        self._db.commit()
        return [row[0] for row in rows]

    # -- instance heartbeats -----------------------------------------------

    def heartbeat_instance(
        self, instance_id: str | None = None, ttl: float = 30.0
    ) -> None:
        """Record this instance as live until ``ttl`` seconds from now."""
        instance_id = instance_id or self.instance_id
        now = self.clock()
        self._db.execute(
            "INSERT INTO instances (id, started_at, last_seen, deadline) "
            "VALUES (?, ?, ?, ?) ON CONFLICT(id) DO UPDATE SET "
            "last_seen = excluded.last_seen, deadline = excluded.deadline",
            (instance_id, time.time(), now, now + float(ttl)),
        )
        self._db.commit()

    def live_instances(self) -> list[str]:
        """Instance ids whose heartbeat deadline has not passed."""
        rows = self._db.execute(
            "SELECT id FROM instances WHERE deadline >= ? ORDER BY id",
            (self.clock(),),
        ).fetchall()
        return [row[0] for row in rows]

    def prune_instances(self, older_than: float = 3600.0) -> int:
        """Drop instance rows dead for more than ``older_than`` seconds."""
        cursor = self._db.execute(
            "DELETE FROM instances WHERE deadline < ?",
            (self.clock() - float(older_than),),
        )
        self._db.commit()
        return cursor.rowcount

    # -- internals ---------------------------------------------------------

    def _set_status(self, run_hash: str, status: str, attempt: bool = False) -> None:
        if status not in _STATUSES:
            raise CampaignError(f"unknown status {status!r}")
        bump = ", attempts = attempts + 1" if attempt else ""
        cursor = self._db.execute(
            f"UPDATE runs SET status = ?{bump}, updated_at = ? WHERE hash = ?",
            (status, time.time(), run_hash),
        )
        if cursor.rowcount == 0:
            raise CampaignError(f"run {run_hash} is not registered")
        self._db.commit()

    # -- summaries ---------------------------------------------------------

    def status_counts(self, campaign: str | None = None) -> dict[str, int]:
        """Row counts per status (all statuses present, zero-filled)."""
        if campaign is None:
            rows = self._db.execute(
                "SELECT status, COUNT(*) FROM runs GROUP BY status"
            ).fetchall()
        else:
            rows = self._db.execute(
                "SELECT status, COUNT(*) FROM runs WHERE campaign = ? GROUP BY status",
                (campaign,),
            ).fetchall()
        counts = {status: 0 for status in _STATUSES}
        counts.update({status: int(count) for status, count in rows})
        return counts

    def campaigns(self) -> list[str]:
        """Distinct campaign names present in the store."""
        rows = self._db.execute(
            "SELECT DISTINCT campaign FROM runs ORDER BY campaign"
        ).fetchall()
        return [row[0] for row in rows]
