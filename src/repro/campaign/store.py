"""Persistent run store: cross-invocation caching and exactly-once execution.

One SQLite file per campaign directory holds every run the engine has ever
seen, keyed by the spec's content hash.  A run moves through the statuses

    pending -> running -> done | failed

and a ``done`` run is *never* re-executed: re-submitting the same campaign
(or a different campaign sharing grid points) serves the stored payload as a
cache hit.  ``running`` rows are an in-flight marker only -- on (re)open they
are demoted back to ``pending``, which is what makes an interrupted campaign
resumable with zero recomputation of its completed runs.

Payloads are stored as canonical JSON (sorted keys, compact separators), so
"same spec hash => same payload" is checkable byte-for-byte across serial
and parallel executions.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.results import attach_schema_version, check_schema_version
from ..errors import CampaignError
from .spec import RunSpec

#: Store schema version (bump on layout change).
STORE_SCHEMA = 1

#: Database filename inside a campaign directory.
DB_NAME = "campaign.sqlite"

_STATUSES = ("pending", "running", "done", "failed")

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS runs (
    hash TEXT PRIMARY KEY,
    campaign TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    status TEXT NOT NULL,
    payload_json TEXT,
    error TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    duration_s REAL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_by_campaign ON runs (campaign, status);
"""


def canonical_payload(payload: dict) -> str:
    """The canonical JSON form payloads are stored (and compared) in."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class StoredRun:
    """One row of the run store."""

    hash: str
    campaign: str
    spec: dict
    status: str
    payload: dict | None
    error: str | None
    attempts: int
    duration_s: float | None

    @property
    def payload_json(self) -> str | None:
        """Canonical JSON of the payload (byte-comparable across stores)."""
        return canonical_payload(self.payload) if self.payload is not None else None

    def run_spec(self) -> RunSpec:
        """The stored spec, rebuilt as a :class:`RunSpec`."""
        return RunSpec.from_dict(self.spec)


class RunStore:
    """SQLite-backed store of campaign runs.

    ``path`` is a campaign directory (created on demand); ``None`` opens an
    in-memory store for ephemeral executions (the CLI ``sweep`` alias).
    Within one scheduling process, the store is written only by that process
    -- workers return results over the pool, they never touch the database.

    *Across* processes the store is safe to share: file-backed stores run in
    WAL journal mode with a busy timeout, and :meth:`claim` performs an
    atomic compare-and-set so two processes draining the same campaign never
    double-execute a run. Concurrent drainers must open with
    ``takeover=False`` -- the default ``takeover=True`` demotes every
    ``running`` row at open, which is right for crash recovery but would
    steal a sibling process's in-flight runs.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        takeover: bool = True,
        busy_timeout: float = 30.0,
    ) -> None:
        if path is None:
            self.directory = None
            self._db = sqlite3.connect(":memory:")
        else:
            self.directory = Path(path)
            self.directory.mkdir(parents=True, exist_ok=True)
            self._db = sqlite3.connect(
                self.directory / DB_NAME, timeout=busy_timeout
            )
            # WAL lets a reader (status/report) proceed under a writer and
            # makes small commits cheaper; busy_timeout turns lock contention
            # between sibling processes into a bounded wait instead of an
            # immediate "database is locked" error.
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
            self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA_SQL)
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                (str(STORE_SCHEMA),),
            )
            self._db.commit()
        elif int(row[0]) != STORE_SCHEMA:
            raise CampaignError(
                f"run store schema {row[0]} != supported {STORE_SCHEMA} "
                f"(delete {self.directory} to rebuild)"
            )
        # Any 'running' rows are stale markers from an interrupted process --
        # unless a sibling process may legitimately be mid-run (takeover=False).
        if takeover:
            self.reset_running()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        self._db.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- row access --------------------------------------------------------

    def get(self, run_hash: str) -> StoredRun | None:
        """The stored run under ``run_hash``, or None."""
        row = self._db.execute(
            "SELECT hash, campaign, spec_json, status, payload_json, error, "
            "attempts, duration_s FROM runs WHERE hash = ?",
            (run_hash,),
        ).fetchone()
        return self._to_stored(row) if row is not None else None

    def runs(self, campaign: str | None = None) -> list[StoredRun]:
        """All stored runs (optionally restricted to one campaign)."""
        if campaign is None:
            rows = self._db.execute(
                "SELECT hash, campaign, spec_json, status, payload_json, error, "
                "attempts, duration_s FROM runs ORDER BY rowid"
            ).fetchall()
        else:
            rows = self._db.execute(
                "SELECT hash, campaign, spec_json, status, payload_json, error, "
                "attempts, duration_s FROM runs WHERE campaign = ? "
                "ORDER BY rowid",
                (campaign,),
            ).fetchall()
        return [self._to_stored(row) for row in rows]

    @staticmethod
    def _to_stored(row: tuple) -> StoredRun:
        (run_hash, campaign, spec_json, status, payload_json, error,
         attempts, duration_s) = row
        payload = json.loads(payload_json) if payload_json else None
        if payload is not None and "schema_version" in payload:
            # Pre-versioning rows load as-is; stamped rows must be readable.
            check_schema_version(payload, source=f"stored run {run_hash}")
        return StoredRun(
            hash=run_hash,
            campaign=campaign,
            spec=json.loads(spec_json),
            status=status,
            payload=payload,
            error=error,
            attempts=int(attempts),
            duration_s=duration_s,
        )

    # -- state transitions -------------------------------------------------

    def register(self, spec: RunSpec, campaign: str, run_hash: str | None = None) -> str:
        """Ensure a row exists for ``spec``; returns its hash.

        Existing rows keep their status and payload (exactly-once: a ``done``
        run stays done no matter how many campaigns resubmit it).
        """
        run_hash = run_hash if run_hash is not None else spec.spec_hash()
        now = time.time()
        self._db.execute(
            "INSERT INTO runs (hash, campaign, spec_json, status, attempts, "
            "created_at, updated_at) VALUES (?, ?, ?, 'pending', 0, ?, ?) "
            "ON CONFLICT(hash) DO NOTHING",
            (run_hash, campaign, canonical_payload(spec.to_dict()), now, now),
        )
        self._db.commit()
        return run_hash

    def start(self, run_hash: str) -> None:
        """Mark a run as in flight and count the attempt."""
        self._set_status(run_hash, "running", attempt=True)

    def claim(self, run_hash: str) -> bool:
        """Atomically claim a runnable row; the exactly-once primitive.

        Flips ``pending``/``failed`` to ``running`` (counting the attempt)
        in one compare-and-set UPDATE, so of any number of processes racing
        on the same hash exactly one sees True; the rest see False (the row
        is already running or done elsewhere) and must skip the run.
        """
        cursor = self._db.execute(
            "UPDATE runs SET status = 'running', attempts = attempts + 1, "
            "updated_at = ? WHERE hash = ? AND status IN ('pending', 'failed')",
            (time.time(), run_hash),
        )
        self._db.commit()
        return cursor.rowcount == 1

    def release(self, run_hash: str) -> bool:
        """Demote one in-flight run back to ``pending`` (resumable).

        The clean-interruption counterpart of :meth:`claim`: an executor that
        caught SIGTERM/KeyboardInterrupt releases exactly the runs *it*
        claimed, leaving sibling processes' in-flight rows alone.
        """
        cursor = self._db.execute(
            "UPDATE runs SET status = 'pending', updated_at = ? "
            "WHERE hash = ? AND status = 'running'",
            (time.time(), run_hash),
        )
        self._db.commit()
        return cursor.rowcount == 1

    def complete(self, run_hash: str, payload: dict, duration_s: float) -> None:
        """Record a successful payload (clears any previous error).

        Payloads are stamped with the result schema version on the way in,
        so every stored payload declares the layout it was written under.
        """
        payload = attach_schema_version(payload)
        self._db.execute(
            "UPDATE runs SET status = 'done', payload_json = ?, error = NULL, "
            "duration_s = ?, updated_at = ? WHERE hash = ?",
            (canonical_payload(payload), float(duration_s), time.time(), run_hash),
        )
        self._db.commit()

    def fail(self, run_hash: str, error: str, duration_s: float | None = None) -> None:
        """Record a failure with its traceback text."""
        self._db.execute(
            "UPDATE runs SET status = 'failed', error = ?, duration_s = ?, "
            "updated_at = ? WHERE hash = ?",
            (error, duration_s, time.time(), run_hash),
        )
        self._db.commit()

    def reset_running(self) -> int:
        """Demote stale ``running`` rows to ``pending``; returns the count."""
        cursor = self._db.execute(
            "UPDATE runs SET status = 'pending', updated_at = ? "
            "WHERE status = 'running'",
            (time.time(),),
        )
        self._db.commit()
        return cursor.rowcount

    def _set_status(self, run_hash: str, status: str, attempt: bool = False) -> None:
        if status not in _STATUSES:
            raise CampaignError(f"unknown status {status!r}")
        bump = ", attempts = attempts + 1" if attempt else ""
        cursor = self._db.execute(
            f"UPDATE runs SET status = ?{bump}, updated_at = ? WHERE hash = ?",
            (status, time.time(), run_hash),
        )
        if cursor.rowcount == 0:
            raise CampaignError(f"run {run_hash} is not registered")
        self._db.commit()

    # -- summaries ---------------------------------------------------------

    def status_counts(self, campaign: str | None = None) -> dict[str, int]:
        """Row counts per status (all statuses present, zero-filled)."""
        if campaign is None:
            rows = self._db.execute(
                "SELECT status, COUNT(*) FROM runs GROUP BY status"
            ).fetchall()
        else:
            rows = self._db.execute(
                "SELECT status, COUNT(*) FROM runs WHERE campaign = ? GROUP BY status",
                (campaign,),
            ).fetchall()
        counts = {status: 0 for status in _STATUSES}
        counts.update({status: int(count) for status, count in rows})
        return counts

    def campaigns(self) -> list[str]:
        """Distinct campaign names present in the store."""
        rows = self._db.execute(
            "SELECT DISTINCT campaign FROM runs ORDER BY campaign"
        ).fetchall()
        return [row[0] for row in rows]
