"""Campaign scheduler: process-pool execution with retry, timeout and resume.

:func:`run_campaign` drains a :class:`~repro.campaign.spec.CampaignSpec`
through a :class:`~repro.campaign.store.RunStore`:

* runs whose content hash is already ``done`` in the store are served as
  cache hits (never re-executed);
* the rest execute on a ``ProcessPoolExecutor`` (``workers > 1``) or inline
  (``workers <= 1`` -- the serial path shares the exact same run functions,
  so payloads are byte-identical either way);
* transient failures retry with exponential backoff up to ``retries`` times;
* a per-run ``timeout`` is enforced with ``SIGALRM`` inside the executing
  process (Unix), so a hung run fails instead of wedging the campaign;
* ``KeyboardInterrupt`` (or an injected ``stop_after``) cancels gracefully:
  pending work is dropped, in-flight rows are demoted to ``pending``, and a
  later invocation resumes with zero recomputation of completed runs.

Progress is reported through an optional callback and, when a
:class:`~repro.obs.MetricsRegistry` is supplied, through the
``repro_campaign_*`` counter/histogram families.
"""

from __future__ import annotations

import signal
import time
import traceback
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from ..config import RunConfig
from ..engine import effective_engine_workers
from ..errors import CampaignError
from ..experiments.fig10 import run_boundary_repetition
from ..theory.boundary import moving_average
from ..theory.bounds import upper_bound
from .spec import CampaignSpec, RunSpec
from .store import RunStore

#: progress callback signature: (event, run_hash, spec) with event in
#: {"cached", "start", "done", "failed", "retry", "cancelled", "skipped"}
#: ("skipped": another process already claimed or completed the run).
ProgressCallback = Callable[[str, str, RunSpec], None]


# -- run functions (execute in the worker process) --------------------------


def _build_events(events_path: str | None):
    """A fresh flight recorder when the campaign asked for one (else None)."""
    if events_path is None:
        return None
    from ..obs import EventLog, Observability

    return Observability(events=EventLog())


def _write_events(observability, events_path: str | None) -> None:
    """Write a run's recorded channels next to the campaign store."""
    if observability is None or observability.events is None:
        return
    from pathlib import Path

    path = Path(events_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    observability.events.write(path, channel="sim")
    observability.events.write(
        path.with_name(path.stem + ".host" + (path.suffix or ".jsonl")),
        channel="host",
    )


def _execute_boundary(
    spec: RunSpec,
    events_path: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
) -> dict:
    # Boundary repetitions run many internal simulations per repetition;
    # there is no single canonical event stream to record (and no single
    # runner state to snapshot), so the flight recorder and mid-run
    # checkpointing are documented no-ops for this run kind.
    outcome = run_boundary_repetition(
        spec.m,
        spec.n_pes,
        spec.density,
        schedule_seed=spec.seed,
        n_steps=spec.n_steps,
        rounds_per_config=spec.rounds_per_config,
        detector_kwargs={"factor": spec.detector_factor, "sustain": spec.detector_sustain},
    )
    payload = {
        "kind": "boundary",
        "m": spec.m,
        "n_pes": spec.n_pes,
        "density": spec.density,
        "seed": spec.seed,
        "diverged": outcome.diverged,
        "step": None,
        "n": None,
        "c0_ratio": None,
        "theory": None,
        "et_ratio": None,
    }
    if outcome.point is not None:
        theory = float(upper_bound(spec.m, outcome.point.n))
        payload.update(
            step=int(outcome.point.step),
            n=float(outcome.point.n),
            c0_ratio=float(outcome.point.c0_ratio),
            theory=theory,
            et_ratio=float(outcome.point.c0_ratio / theory) if theory > 0 else None,
        )
    return payload


def _probe_configurations(schedule, index: int, hold: int):
    """The probe's driven sequence: schedule prefix, then hold the level."""
    last = None
    for i, configuration in enumerate(schedule.configurations()):
        if i > index:
            break
        last = configuration
        yield configuration
    for _ in range(hold):
        yield last


def _execute_probe(
    spec: RunSpec,
    events_path: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
) -> dict:
    # Probes drive many short configuration holds; like boundary runs they
    # have no single resumable runner state, so checkpointing is a no-op.
    from .. import api
    from ..experiments.common import droplets_for, geometry_for, simulation_config_for
    from ..experiments.fig10 import auto_rounds
    from ..workloads.concentration import ConcentrationSchedule

    geometry = geometry_for(spec.m, spec.n_pes, spec.density)
    config = simulation_config_for(geometry, dlb_enabled=True)
    rounds = spec.rounds_per_config
    if rounds is None:
        rounds = auto_rounds(geometry)
    schedule = ConcentrationSchedule(
        n_particles=geometry.n_particles,
        box_length=geometry.box_length,
        n_steps=spec.n_steps,
        n_droplets=droplets_for(geometry),
        seed=spec.seed,
    )
    index, hold = int(spec.probe_index), int(spec.probe_hold)
    observability = _build_events(events_path)
    # Like boundary runs, probes interrogate the permanent-cell protocol's
    # DLB limit: the strategy is part of the experiment, not an env knob.
    result = api.simulate_driven(
        config,
        _probe_configurations(schedule, index, hold),
        rounds_per_config=rounds,
        balancer="permanent",
        observability=observability,
    )
    _write_events(observability, events_path)
    # Divergence oracle: after holding the level, is the (smoothed) spread
    # still pinned above the balanced-prefix baseline?  Thresholds mirror
    # the boundary detector's (factor 2.5 over the baseline median, 5%
    # over the baseline peak).
    smooth = moving_average(result.spread, 5)
    n_prefix = index + 1
    n_base = min(max(3, int(0.2 * n_prefix)), n_prefix)
    baseline = float(np.median(smooth[:n_base]))
    threshold = max(
        2.5 * baseline, baseline + 1e-12, float(np.max(smooth[:n_base])) * 1.05
    )
    tail = smooth[-max(1, hold // 2):]
    trajectory = result.trajectory
    return {
        "kind": "probe",
        "m": spec.m,
        "n_pes": spec.n_pes,
        "density": spec.density,
        "seed": spec.seed,
        "index": index,
        "diverged": bool(np.median(tail) > threshold),
        "n": float(trajectory.n[-1]),
        "c0_ratio": float(trajectory.c0_ratio[-1]),
    }


def _checkpoint_policy(checkpoint_dir: str | None, checkpoint_every: int):
    """A resume-aware checkpoint policy, or None when checkpointing is off.

    ``resume`` is computed from the directory: snapshots present means a
    previous attempt of this exact run hash died mid-flight, and PR 4's
    bit-identical restore guarantees the resumed run's digest matches an
    uninterrupted one.
    """
    if checkpoint_dir is None or checkpoint_every <= 0:
        return None
    from ..api import CheckpointPolicy
    from ..core.checkpoint import CheckpointManager

    manager = CheckpointManager(checkpoint_dir, every=checkpoint_every)
    return CheckpointPolicy(
        directory=checkpoint_dir,
        every=checkpoint_every,
        resume=bool(manager.snapshots()),
    )


def _execute_preset(
    spec: RunSpec,
    events_path: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
) -> dict:
    from .. import api

    observability = _build_events(events_path)
    result = api.simulate(
        spec.preset,
        run=RunConfig(
            steps=spec.n_steps,
            seed=spec.seed,
            record_interval=max(1, spec.n_steps // 50),
            force_backend=spec.backend,
            balancer=spec.balancer,
        ),
        dlb=spec.mode == "dlb",
        engine=spec.engine,
        engine_workers=spec.engine_workers,
        observability=observability,
        checkpoints=_checkpoint_policy(checkpoint_dir, checkpoint_every),
    )
    _write_events(observability, events_path)
    payload = {
        "kind": "preset",
        "preset": spec.preset,
        "mode": spec.mode,
        "backend": spec.backend,
        # The *resolved* strategy name (the spec's may be None = default).
        "balancer": result.meta.get("balancer", "permanent"),
        "seed": spec.seed,
        # Bit-exact provenance: the stored payload carries the run's SHA-256
        # digest, so a cached service/campaign hit is checkable against a
        # direct api.simulate of the same spec down to the last IEEE bit.
        "digest": result.digest(),
        "steps_run": len(result.records),
    }
    payload.update({key: float(value) for key, value in result.summary().items()})
    return payload


_KIND_EXECUTORS: dict[str, Callable[..., dict]] = {
    "boundary": _execute_boundary,
    "probe": _execute_probe,
    "preset": _execute_preset,
}


def execute_run(
    spec: RunSpec,
    events_path: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
) -> dict:
    """Execute one run synchronously and return its JSON payload.

    ``events_path`` (when given) records the run's flight-recorder sim
    channel there, with host events in a ``.host`` sidecar; boundary runs
    ignore it (no single canonical event stream).  ``checkpoint_dir`` +
    ``checkpoint_every`` arm crash-safe mid-run snapshots for preset runs
    (the service fleet's failover-resume path); existing snapshots in the
    directory make the run resume from the latest one, bit-identically.
    """
    try:
        run = _KIND_EXECUTORS[spec.kind]
    except KeyError:
        raise CampaignError(f"no executor for run kind {spec.kind!r}") from None
    return run(spec, events_path, checkpoint_dir, checkpoint_every)


def _raise_timeout(signum, frame):  # pragma: no cover - exercised via alarm
    raise CampaignError("run exceeded its time budget")


def _execute_with_timeout(
    spec: RunSpec,
    timeout: float | None,
    events_path: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
) -> dict:
    """Execute a run under a ``SIGALRM`` deadline (no-op without one)."""
    if timeout is None or not hasattr(signal, "SIGALRM"):
        return execute_run(spec, events_path, checkpoint_dir, checkpoint_every)
    previous = signal.signal(signal.SIGALRM, _raise_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute_run(spec, events_path, checkpoint_dir, checkpoint_every)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _pool_worker(
    spec_dict: dict,
    timeout: float | None,
    events_path: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
) -> dict:
    """Top-level (picklable) worker entry: never raises across the pool."""
    spec = RunSpec.from_dict(spec_dict)
    started = time.perf_counter()
    try:
        payload = _execute_with_timeout(
            spec, timeout, events_path, checkpoint_dir, checkpoint_every
        )
        return {"ok": True, "payload": payload,
                "duration_s": time.perf_counter() - started}
    except Exception:
        return {"ok": False, "error": traceback.format_exc(),
                "duration_s": time.perf_counter() - started}


# -- the scheduler ----------------------------------------------------------


@dataclass
class CampaignSummary:
    """What one :func:`run_campaign` invocation did.

    ``completed`` counts runs newly executed to success *this* invocation;
    ``cached`` counts runs served from the store without execution.  A fully
    resumed campaign therefore reports ``completed == 0`` and
    ``cached == len(campaign)``.
    """

    campaign: str
    total: int = 0
    completed: int = 0
    failed: int = 0
    cached: int = 0
    cancelled: int = 0
    skipped: int = 0
    interrupted: bool = False
    wall_s: float = 0.0
    retries: int = 0
    failures: dict[str, str] = field(default_factory=dict)

    @property
    def done(self) -> int:
        """Runs with a payload available after this invocation."""
        return self.completed + self.cached

    def to_dict(self) -> dict:
        """JSON-serialisable form (the CLI's ``--json`` output)."""
        return {
            "campaign": self.campaign,
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "cached": self.cached,
            "cancelled": self.cancelled,
            "skipped": self.skipped,
            "interrupted": self.interrupted,
            "retries": self.retries,
            "wall_s": self.wall_s,
        }


class _MetricsHook:
    """Optional metrics fan-out (all methods no-ops without a registry)."""

    def __init__(self, registry, campaign: str) -> None:
        self.registry = registry
        self.campaign = campaign

    def count(self, status: str, amount: int = 1) -> None:
        if self.registry is None or amount <= 0:
            return
        self.registry.counter(
            "repro_campaign_runs_total", "campaign runs by outcome"
        ).inc(amount, campaign=self.campaign, status=status)

    def duration(self, seconds: float) -> None:
        if self.registry is None:
            return
        self.registry.histogram(
            "repro_campaign_run_duration_seconds", "wall-clock per campaign run"
        ).observe(float(seconds), campaign=self.campaign)


def run_campaign(
    campaign: CampaignSpec,
    store: RunStore,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.5,
    progress: ProgressCallback | None = None,
    metrics=None,
    stop_after: int | None = None,
    events_dir: str | None = None,
) -> CampaignSummary:
    """Execute a campaign through the store; returns the invocation summary.

    Parameters
    ----------
    workers:
        Pool size; ``<= 1`` runs inline in this process.
    timeout:
        Per-run wall-clock budget in seconds (None = unbounded).
    retries:
        Extra attempts per run after its first failure.
    backoff:
        Base of the exponential retry delay (``backoff * 2**attempt`` s).
    progress:
        Optional ``(event, run_hash, spec)`` callback.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.
    stop_after:
        Stop scheduling after this many *newly completed* runs (the
        interruption hook the resume tests and the CI smoke job use).
    events_dir:
        Directory for per-run flight-recorder logs; each executed run
        writes ``<run_hash>.events.jsonl`` there (cache hits write
        nothing — their events were recorded when they first ran).
    """
    if retries < 0:
        raise CampaignError(f"retries must be non-negative, got {retries}")
    started = time.perf_counter()
    summary = CampaignSummary(campaign=campaign.name, total=len(campaign))
    hook = _MetricsHook(metrics, campaign.name)

    def pool_args(run_hash: str, spec: RunSpec) -> tuple:
        """``_pool_worker`` arguments; the events path only when recording.

        Kept two-positional without ``events_dir`` so tests (and older
        callers) stubbing ``_pool_worker(spec_dict, timeout)`` still work.
        """
        if events_dir is None:
            return (spec.to_dict(), timeout)
        return (spec.to_dict(), timeout, f"{events_dir}/{run_hash}.events.jsonl")

    def report(event: str, run_hash: str, spec: RunSpec) -> None:
        if progress is not None:
            progress(event, run_hash, spec)

    # Nested-parallelism guard: each pool worker running a multiprocess
    # engine would multiply processes; cap siblings x engine workers to the
    # cpu count. ``engine_workers`` is not part of the content hash (engine
    # results are worker-count independent), so the rewrite never
    # invalidates stored runs.
    from dataclasses import replace

    specs = [
        replace(
            spec,
            engine_workers=effective_engine_workers(
                spec.engine_workers, sibling_processes=max(1, workers)
            ),
        )
        if spec.engine == "multiprocess"
        else spec
        for spec in campaign.runs
    ]

    # Partition into cache hits and work, preserving campaign order.
    work: list[tuple[str, RunSpec]] = []
    for spec in specs:
        run_hash = store.register(spec, campaign.name)
        stored = store.get(run_hash)
        if stored is not None and stored.status == "done":
            summary.cached += 1
            hook.count("cached")
            report("cached", run_hash, spec)
        else:
            work.append((run_hash, spec))

    # Leases this invocation holds but has not yet resolved, keyed by run
    # hash. Campaign drainers take unmonitored leases (no deadline -- there
    # is no heartbeat task here), so a sibling can never steal them; on a
    # clean interrupt (KeyboardInterrupt / SIGTERM) exactly these rows are
    # demoted back to pending -- never a sibling process's in-flight runs.
    leases: dict = {}

    def claim(run_hash: str, spec: RunSpec) -> bool:
        """Lease a run or report why it cannot be executed here."""
        lease = store.acquire_lease(run_hash)
        if lease is not None:
            leases[run_hash] = lease
            return True
        stored = store.get(run_hash)
        if stored is not None and stored.status == "done":
            summary.cached += 1
            hook.count("cached")
            report("cached", run_hash, spec)
        else:
            summary.skipped += 1
            hook.count("skipped")
            report("skipped", run_hash, spec)
        return False

    def retry(run_hash: str) -> bool:
        """Start another attempt under our lease; False when it was lost."""
        lease = store.retry_lease(leases[run_hash])
        if lease is None:
            leases.pop(run_hash, None)
            return False
        leases[run_hash] = lease
        return True

    def record_success(run_hash: str, spec: RunSpec, payload: dict, duration: float):
        committed = store.complete(
            run_hash, payload, duration, lease=leases.pop(run_hash, None)
        )
        if not committed:
            # Our lease was taken over (a sweep demoted us mid-run); the
            # result belongs to whoever owns the row now, not us.
            summary.skipped += 1
            hook.count("skipped")
            report("skipped", run_hash, spec)
            return
        summary.completed += 1
        hook.count("completed")
        hook.duration(duration)
        report("done", run_hash, spec)

    def record_failure(run_hash: str, spec: RunSpec, error: str, duration):
        recorded = store.fail(
            run_hash, error, duration, lease=leases.pop(run_hash, None)
        )
        if recorded is None:
            summary.skipped += 1
            hook.count("skipped")
            report("skipped", run_hash, spec)
            return
        summary.failed += 1
        summary.failures[run_hash] = error
        hook.count("failed")
        report("failed", run_hash, spec)

    def reached_stop() -> bool:
        return stop_after is not None and summary.completed >= stop_after

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    # Treat SIGTERM like Ctrl-C: the except/finally below demotes the
    # in-flight run to pending so a later invocation resumes it. Installing
    # a handler only works on the main thread; elsewhere SIGTERM keeps its
    # default disposition.
    previous_sigterm = None
    if hasattr(signal, "SIGTERM"):
        try:
            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:
            previous_sigterm = None
    try:
        if workers <= 1:
            for run_hash, spec in work:
                if reached_stop():
                    summary.cancelled += 1
                    report("cancelled", run_hash, spec)
                    continue
                if not claim(run_hash, spec):
                    continue
                attempt = 0
                report("start", run_hash, spec)
                while True:
                    outcome = _pool_worker(*pool_args(run_hash, spec))
                    if outcome["ok"]:
                        record_success(run_hash, spec, outcome["payload"],
                                       outcome["duration_s"])
                        break
                    if attempt < retries and retry(run_hash):
                        attempt += 1
                        summary.retries += 1
                        report("retry", run_hash, spec)
                        if backoff > 0:
                            time.sleep(backoff * 2 ** (attempt - 1))
                        continue
                    record_failure(run_hash, spec, outcome["error"],
                                   outcome["duration_s"])
                    break
        else:
            _run_pool(campaign, store, work, workers, timeout, retries, backoff,
                      summary, hook, report, reached_stop, claim, retry,
                      record_success, record_failure, pool_args)
    except KeyboardInterrupt:
        summary.interrupted = True
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        # Exactly the leases this invocation still holds (cancelled futures,
        # the interrupted run) are released back to pending, so a resume
        # re-executes exactly those -- and only rows we still own.
        for lease in leases.values():
            store.release_lease(lease)
        summary.wall_s = time.perf_counter() - started
    if stop_after is not None and summary.cancelled:
        summary.interrupted = True
    return summary


def _run_pool(campaign, store, work, workers, timeout, retries, backoff,
              summary, hook, report, reached_stop, claim, retry,
              record_success, record_failure, pool_args) -> None:
    """The parallel drain loop (extracted for readability)."""
    pending: dict = {}
    retry_at: list[tuple[float, str, RunSpec, int]] = []
    queue = list(work)
    attempts: dict[str, int] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        try:
            while queue or pending or retry_at:
                if reached_stop():
                    summary.cancelled += len(queue) + len(pending) + len(retry_at)
                    for run_hash, spec in queue:
                        report("cancelled", run_hash, spec)
                    queue.clear()
                    retry_at.clear()
                    for future in pending:
                        future.cancel()
                    break
                now = time.monotonic()
                due = [entry for entry in retry_at if entry[0] <= now]
                retry_at[:] = [entry for entry in retry_at if entry[0] > now]
                for _, run_hash, spec, attempt in due:
                    queue.append((run_hash, spec))
                    attempts[run_hash] = attempt
                while queue and len(pending) < workers:
                    run_hash, spec = queue.pop(0)
                    if run_hash in attempts:
                        # Retry of a run this invocation already owns; a
                        # lost lease means the row was swept out from under
                        # us and the retry must not run here.
                        if not retry(run_hash):
                            summary.skipped += 1
                            hook.count("skipped")
                            report("skipped", run_hash, spec)
                            continue
                    elif not claim(run_hash, spec):
                        continue
                    report("start", run_hash, spec)
                    future = pool.submit(_pool_worker, *pool_args(run_hash, spec))
                    pending[future] = (run_hash, spec)
                if not pending:
                    if retry_at:
                        time.sleep(min(0.05, max(0.0, retry_at[0][0] - now)))
                    continue
                finished, _ = wait(pending, timeout=0.1, return_when=FIRST_COMPLETED)
                for future in finished:
                    run_hash, spec = pending.pop(future)
                    outcome = future.result()
                    if outcome["ok"]:
                        record_success(run_hash, spec, outcome["payload"],
                                       outcome["duration_s"])
                        continue
                    attempt = attempts.get(run_hash, 0)
                    if attempt < retries:
                        attempts[run_hash] = attempt + 1
                        summary.retries += 1
                        report("retry", run_hash, spec)
                        delay = backoff * 2 ** attempt if backoff > 0 else 0.0
                        retry_at.append(
                            (time.monotonic() + delay, run_hash, spec, attempt + 1)
                        )
                    else:
                        record_failure(run_hash, spec, outcome["error"],
                                       outcome["duration_s"])
        except KeyboardInterrupt:
            for future in pending:
                future.cancel()
            summary.cancelled += len(queue) + len(pending) + len(retry_at)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
