"""Configuration validation."""

import pytest

from repro.config import (
    DecompositionConfig,
    DLBConfig,
    MachineConfig,
    MDConfig,
    RunConfig,
    SimulationConfig,
)
from repro.errors import ConfigurationError


class TestMDConfig:
    def test_paper_defaults(self):
        config = MDConfig(n_particles=8000)
        assert config.density == 0.256
        assert config.temperature == 0.722
        assert config.cutoff == 2.5
        assert config.dt == 0.001
        assert config.rescale_interval == 50

    def test_box_length(self):
        config = MDConfig(n_particles=8000, density=0.256)
        assert config.box_length == pytest.approx((8000 / 0.256) ** (1 / 3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_particles": 0},
            {"n_particles": 100, "density": 0.0},
            {"n_particles": 1000, "temperature": -1.0},
            {"n_particles": 1000, "cutoff": 0.0},
            {"n_particles": 1000, "dt": 0.0},
            {"n_particles": 1000, "rescale_interval": -1},
            {"n_particles": 1000, "attraction": -0.1},
            {"n_particles": 1000, "n_attractors": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            MDConfig(**kwargs)

    def test_rejects_box_too_small_for_minimum_image(self):
        # Few particles at high density: box under 2 * r_c.
        with pytest.raises(ConfigurationError):
            MDConfig(n_particles=8, density=0.5)


class TestDecompositionConfig:
    def test_pillar_m(self):
        config = DecompositionConfig(cells_per_side=12, n_pes=36)
        assert config.pillar_m == 2
        assert config.pe_side == 6
        assert config.n_cells == 1728

    def test_plane_needs_divisibility(self):
        DecompositionConfig(cells_per_side=12, n_pes=4, shape="plane")
        with pytest.raises(ConfigurationError):
            DecompositionConfig(cells_per_side=12, n_pes=5, shape="plane")

    def test_pillar_needs_square_pes(self):
        with pytest.raises(ConfigurationError):
            DecompositionConfig(cells_per_side=12, n_pes=8, shape="pillar")

    def test_pillar_needs_divisible_grid(self):
        with pytest.raises(ConfigurationError):
            DecompositionConfig(cells_per_side=13, n_pes=9, shape="pillar")

    def test_cube_needs_cubic_pes(self):
        DecompositionConfig(cells_per_side=12, n_pes=27, shape="cube")
        with pytest.raises(ConfigurationError):
            DecompositionConfig(cells_per_side=12, n_pes=36, shape="cube")

    def test_rejects_unknown_shape(self):
        with pytest.raises(ConfigurationError):
            DecompositionConfig(cells_per_side=12, n_pes=4, shape="sphere")


class TestDLBConfig:
    def test_defaults(self):
        config = DLBConfig()
        assert config.enabled and config.interval == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0},
            {"max_sends_per_step": 0},
            {"policy": "oracle"},
            {"threshold": -0.1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            DLBConfig(**kwargs)


class TestMachineConfig:
    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(latency=-1.0)
        with pytest.raises(ConfigurationError):
            MachineConfig(bytes_per_particle=0)


class TestRunConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps": -1},
            {"steps": 1, "record_interval": 0},
            {"steps": 1, "force_backend": "gpu"},
            {"steps": 1, "timing_mode": "exact"},
            {"steps": 1, "skin": 0.0},
            {"steps": 1, "skin": -0.2},
            {"steps": 1, "neighbor_max_reuse": -1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RunConfig(**kwargs)

    def test_verlet_backend_accepted(self):
        config = RunConfig(steps=1, force_backend="verlet", skin=0.3,
                           neighbor_max_reuse=0)
        assert config.force_backend == "verlet"
        assert config.skin == 0.3
        assert config.neighbor_max_reuse == 0


class TestSimulationConfig:
    def test_cell_size_must_cover_cutoff(self):
        md = MDConfig(n_particles=8000, density=0.256)  # L = 31.5
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                md=md, decomposition=DecompositionConfig(cells_per_side=18, n_pes=9)
            )

    def test_valid_combination(self):
        md = MDConfig(n_particles=8000, density=0.256)
        config = SimulationConfig(
            md=md, decomposition=DecompositionConfig(cells_per_side=12, n_pes=9)
        )
        assert config.cell_size == pytest.approx(31.5 / 12, abs=0.01)
