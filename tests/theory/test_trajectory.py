"""(n, C0/C) trajectories."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.theory.concentration import ConcentrationState
from repro.theory.trajectory import Trajectory, TrajectoryRecorder


def state(n: float, c0: float) -> ConcentrationState:
    return ConcentrationState(
        n_cells=100, empty_cells=int(c0 * 100), c0_ratio=c0, n=n, max_domain_cells=50
    )


class TestTrajectory:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            Trajectory(steps=np.arange(3), n=np.ones(2), c0_ratio=np.ones(3))

    def test_point_at_exact_step(self):
        t = Trajectory(
            steps=np.array([10, 20, 30]),
            n=np.array([1.0, 1.5, 2.0]),
            c0_ratio=np.array([0.1, 0.2, 0.3]),
        )
        assert t.point_at_step(20) == (1.5, 0.2)

    def test_point_at_nearest_step(self):
        t = Trajectory(
            steps=np.array([10, 20, 30]),
            n=np.array([1.0, 1.5, 2.0]),
            c0_ratio=np.array([0.1, 0.2, 0.3]),
        )
        assert t.point_at_step(22) == (1.5, 0.2)

    def test_empty_trajectory_raises(self):
        t = Trajectory(steps=np.array([], dtype=int), n=np.array([]), c0_ratio=np.array([]))
        with pytest.raises(AnalysisError):
            t.point_at_step(5)

    def test_len(self):
        t = Trajectory(steps=np.arange(4), n=np.ones(4), c0_ratio=np.ones(4))
        assert len(t) == 4


class TestTrajectoryRecorder:
    def test_records_and_freezes(self):
        recorder = TrajectoryRecorder()
        recorder.record(1, state(1.0, 0.0))
        recorder.record(2, state(1.5, 0.1))
        assert len(recorder) == 2
        trajectory = recorder.freeze()
        assert np.array_equal(trajectory.steps, [1, 2])
        assert np.allclose(trajectory.n, [1.0, 1.5])
        assert np.allclose(trajectory.c0_ratio, [0.0, 0.1])

    def test_freeze_snapshot_is_stable(self):
        recorder = TrajectoryRecorder()
        recorder.record(1, state(1.0, 0.0))
        frozen = recorder.freeze()
        recorder.record(2, state(2.0, 0.5))
        assert len(frozen) == 1
