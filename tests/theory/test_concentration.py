"""Concentration parameter measurement."""

import numpy as np
import pytest

from repro.decomp.assignment import CellAssignment
from repro.errors import AnalysisError
from repro.theory.concentration import (
    exact_concentration_factor,
    measure_concentration,
)


@pytest.fixture
def assignment():
    return CellAssignment(cells_per_side=9, n_pes=9)  # m = 3


class TestMeasureConcentration:
    def test_uniform_gas_has_n_one(self, assignment):
        counts = np.full((9, 9, 9), 4)
        state = measure_concentration(counts, assignment)
        assert state.empty_cells == 0
        assert state.c0_ratio == 0.0
        assert state.n == 1.0

    def test_counts_totals(self, assignment):
        counts = np.zeros((9, 9, 9), dtype=int)
        counts[:3] = 2
        state = measure_concentration(counts, assignment)
        assert state.n_cells == 729
        assert state.empty_cells == 6 * 81
        assert state.c0_ratio == pytest.approx(6 / 9)

    def test_max_domain_cells_constant(self, assignment):
        counts = np.ones((9, 9, 9), dtype=int)
        state = measure_concentration(counts, assignment)
        # C' = [m^2 + 3(m-1)^2] * nc = 21 * 9.
        assert state.max_domain_cells == 189

    def test_n_grows_with_localised_emptiness(self, assignment):
        # Emptiness concentrated inside one PE's block vs spread uniformly.
        concentrated = np.ones((9, 9, 9), dtype=int)
        concentrated[0:3, 0:3, :] = 0  # PE(0,0)'s whole domain empty
        spread = np.ones((9, 9, 9), dtype=int)
        flat = spread.reshape(-1)
        flat[:: 729 // 81] = 0  # roughly uniform emptiness
        n_conc = measure_concentration(concentrated, assignment).n
        n_spread = measure_concentration(spread, assignment).n
        assert n_conc > n_spread

    def test_n_at_least_one(self, assignment):
        rng = np.random.default_rng(0)
        for _ in range(10):
            counts = rng.integers(0, 3, (9, 9, 9))
            assert measure_concentration(counts, assignment).n >= 1.0

    def test_rejects_wrong_shape(self, assignment):
        with pytest.raises(AnalysisError):
            measure_concentration(np.zeros((3, 3, 3)), assignment)

    def test_respects_current_holder_not_home(self, assignment):
        # Lend a cell: the per-PE stats must follow the holder map.
        counts = np.ones((9, 9, 9), dtype=int)
        cells = assignment.movable_at_home(4)
        flat = counts.reshape(-1)
        flat[cells] = 0  # PE 4's movable cells empty
        before = measure_concentration(counts, assignment)
        for cell in list(cells):
            assignment.transfer(int(cell), assignment.pe_flat(0, 1))
        after = measure_concentration(counts, assignment)
        # Same global ratio, possibly different estimate -- but both valid.
        assert after.c0_ratio == before.c0_ratio
        assert after.n >= 1.0


class TestExactConcentrationFactor:
    def test_uniform_emptiness_is_one(self, assignment):
        counts = np.ones((9, 9, 9), dtype=int)
        assert exact_concentration_factor(counts, assignment) == 1.0

    def test_no_empty_cells_is_one(self, assignment):
        counts = np.full((9, 9, 9), 2)
        assert exact_concentration_factor(counts, assignment) == 1.0

    def test_concentrated_emptiness_exceeds_one(self, assignment):
        counts = np.ones((9, 9, 9), dtype=int)
        counts[0:3, 0:3, :] = 0
        assert exact_concentration_factor(counts, assignment) > 1.5

    def test_rejects_wrong_shape(self, assignment):
        with pytest.raises(AnalysisError):
            exact_concentration_factor(np.zeros((2, 2, 2)), assignment)
