"""Property-based cross-checks of the concentration measurement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp.assignment import CellAssignment
from repro.theory.concentration import (
    exact_concentration_factor,
    measure_concentration,
)


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.floats(min_value=0.05, max_value=0.9))
@settings(max_examples=25, deadline=None)
def test_estimate_and_oracle_stay_in_domain(seed, empty_fraction):
    """Random occupancy grids: both n estimates are >= 1 and finite."""
    rng = np.random.default_rng(seed)
    assignment = CellAssignment(9, 9)
    counts = (rng.random((9, 9, 9)) > empty_fraction).astype(int) * rng.integers(
        1, 5, (9, 9, 9)
    )
    state = measure_concentration(counts, assignment)
    oracle = exact_concentration_factor(counts, assignment)
    assert state.n >= 1.0 and np.isfinite(state.n)
    assert oracle >= 1.0 and np.isfinite(oracle)
    assert 0.0 <= state.c0_ratio <= 1.0


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_c0_ratio_invariant_under_assignment_changes(seed):
    """C0/C is a property of the configuration, not of who holds which cell."""
    rng = np.random.default_rng(seed)
    assignment = CellAssignment(9, 9)
    counts = rng.integers(0, 3, (9, 9, 9))
    before = measure_concentration(counts, assignment).c0_ratio
    for pe in range(9):
        movable = assignment.movable_at_home(pe)
        if len(movable):
            assignment.transfer(int(movable[0]),
                                sorted(assignment.lower_neighbors(pe))[0])
    after = measure_concentration(counts, assignment).c0_ratio
    assert before == after


def test_fig8_style_worked_example():
    """A constructed analogue of Figure 8: known emptiness layout.

    Empty the whole block of PE(0, 0) (81 cells of 729): C0/C = 1/9. The
    maximum domain anchored at that PE contains all 81 of those empty cells
    out of C' = 189, so the oracle n is (81/189) / (1/9) = 3.857...
    """
    assignment = CellAssignment(9, 9)
    counts = np.ones((9, 9, 9), dtype=int)
    counts[0:3, 0:3, :] = 0
    state = measure_concentration(counts, assignment)
    assert state.c0_ratio == pytest.approx(1 / 9)
    oracle = exact_concentration_factor(counts, assignment)
    assert oracle == pytest.approx((81 / 189) / (1 / 9), rel=1e-12)
    # The two-PE estimate is cruder but must point the same way (n >> 1).
    assert state.n > 2.0
