"""Least-squares boundary fitting and E/T."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.theory.boundary import BoundaryPoint
from repro.theory.bounds import upper_bound
from repro.theory.fitting import (
    average_points,
    fit_boundary_scale,
    point_error_ranges,
)


def points_on_scaled_bound(m: int, k: float, n_values) -> list[BoundaryPoint]:
    return [
        BoundaryPoint(step=i, n=float(n), c0_ratio=float(k * upper_bound(m, n)))
        for i, n in enumerate(n_values)
    ]


class TestFitBoundaryScale:
    def test_recovers_exact_scale(self):
        points = points_on_scaled_bound(3, 0.7, [1.2, 1.5, 2.0, 3.0])
        fit = fit_boundary_scale(points, 3)
        assert fit.ratio == pytest.approx(0.7, rel=1e-12)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-12)
        assert fit.n_points == 4

    def test_recovers_scale_under_noise(self):
        rng = np.random.default_rng(0)
        points = [
            BoundaryPoint(
                step=i,
                n=float(n),
                c0_ratio=float(0.6 * upper_bound(2, n) + rng.normal(0, 0.01)),
            )
            for i, n in enumerate([1.1, 1.4, 1.9, 2.6])
        ]
        fit = fit_boundary_scale(points, 2)
        assert fit.ratio == pytest.approx(0.6, abs=0.05)
        assert fit.residual_rms < 0.03

    def test_boundary_callable(self):
        points = points_on_scaled_bound(4, 0.5, [1.5, 2.0])
        fit = fit_boundary_scale(points, 4)
        assert fit.boundary(2.0) == pytest.approx(0.5 * upper_bound(4, 2.0))

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            fit_boundary_scale([], 3)


class TestAveraging:
    def test_average_points(self):
        group = [
            BoundaryPoint(step=10, n=1.0, c0_ratio=0.2),
            BoundaryPoint(step=20, n=2.0, c0_ratio=0.4),
        ]
        (mean,) = average_points([group])
        assert mean.step == 15
        assert mean.n == pytest.approx(1.5)
        assert mean.c0_ratio == pytest.approx(0.3)

    def test_rejects_empty_group(self):
        with pytest.raises(AnalysisError):
            average_points([[]])

    def test_error_ranges(self):
        group = [
            BoundaryPoint(step=10, n=1.0, c0_ratio=0.2),
            BoundaryPoint(step=20, n=3.0, c0_ratio=0.2),
        ]
        ((n_std, c0_std),) = point_error_ranges([group])
        assert n_std == pytest.approx(1.0)
        assert c0_std == pytest.approx(0.0)
