"""Theoretical upper bounds f(m, n)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.theory.bounds import f2, f3, f4, ordering_gap, upper_bound

n_values = st.floats(min_value=1.0, max_value=50.0, allow_nan=False)


class TestClosedForms:
    @given(n_values)
    @settings(max_examples=100, deadline=None)
    def test_f2_matches_general_formula(self, n):
        # Equation (9): f(2, n) = 3 / (7n - 4).
        assert f2(n) == pytest.approx(upper_bound(2, n), rel=1e-12)

    @given(n_values)
    @settings(max_examples=100, deadline=None)
    def test_f3_matches_general_formula(self, n):
        # Equation (10): f(3, n) = 4 / (7n - 3). The paper divides both
        # numerator 3*4=12 and denominator by 3.
        assert f3(n) == pytest.approx(upper_bound(3, n), rel=1e-12)

    @given(n_values)
    @settings(max_examples=100, deadline=None)
    def test_f4_matches_general_formula(self, n):
        # Equation (11): f(4, n) = 27 / (43n - 16).
        assert f4(n) == pytest.approx(upper_bound(4, n), rel=1e-12)

    def test_specific_values(self):
        assert f2(1.0) == pytest.approx(1.0)
        assert f3(1.0) == pytest.approx(1.0)
        assert f4(1.0) == pytest.approx(1.0)
        assert f2(2.0) == pytest.approx(0.3)
        assert f3(2.0) == pytest.approx(4 / 11)
        assert f4(2.0) == pytest.approx(27 / 70)


class TestOrdering:
    @given(n_values)
    @settings(max_examples=100, deadline=None)
    def test_equation_12_ordering(self, n):
        # f(2, n) <= f(3, n) <= f(4, n) for n >= 1.
        assert ordering_gap(n) >= -1e-12

    @given(n_values)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_m_generally(self, n):
        values = [upper_bound(m, n) for m in range(2, 8)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestGeneralBound:
    def test_at_n_equal_one_is_one(self):
        # n = 1 (uniform emptiness): the bound allows any C0/C up to 1.
        for m in range(2, 6):
            assert upper_bound(m, 1.0) == pytest.approx(1.0)

    @given(st.integers(min_value=2, max_value=10), n_values)
    @settings(max_examples=100, deadline=None)
    def test_bounded_in_unit_interval(self, m, n):
        value = upper_bound(m, n)
        assert 0.0 < value <= 1.0 + 1e-12

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_decreasing_in_n(self, m):
        n = np.linspace(1.0, 20.0, 50)
        values = np.asarray(upper_bound(m, n))
        assert np.all(np.diff(values) < 0)

    def test_vector_input(self):
        out = upper_bound(3, np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3,)

    def test_rejects_m_below_two(self):
        with pytest.raises(AnalysisError):
            upper_bound(1, 2.0)

    def test_rejects_n_below_one(self):
        with pytest.raises(AnalysisError):
            upper_bound(3, 0.5)
