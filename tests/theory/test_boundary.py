"""Boundary-point detection."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.theory.boundary import (
    BoundaryPoint,
    boundary_point,
    detect_divergence_step,
    moving_average,
)
from repro.theory.trajectory import Trajectory


def synthetic_spread(n_flat: int, n_rise: int, noise: float = 0.0, seed: int = 0):
    """Flat baseline then linear rise, with optional noise."""
    rng = np.random.default_rng(seed)
    flat = np.full(n_flat, 1.0)
    rise = 1.0 + np.arange(1, n_rise + 1) * 0.5
    series = np.concatenate([flat, rise])
    if noise:
        series = series + rng.normal(0, noise, len(series))
    return series


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.array([1.0, 5.0, 2.0])
        assert np.allclose(moving_average(x, 1), x)

    def test_preserves_length(self):
        x = np.arange(20.0)
        assert len(moving_average(x, 5)) == 20

    def test_smooths_constant_exactly(self):
        x = np.full(30, 3.0)
        assert np.allclose(moving_average(x, 7), 3.0)

    def test_rejects_bad_window(self):
        with pytest.raises(AnalysisError):
            moving_average(np.arange(5.0), 0)


class TestDetectDivergence:
    def test_clean_divergence_found_near_rise(self):
        series = synthetic_spread(100, 60)
        step = detect_divergence_step(series, window=5, sustain=5)
        assert 95 <= step <= 120

    def test_noisy_divergence_found(self):
        series = synthetic_spread(100, 60, noise=0.2)
        step = detect_divergence_step(series, window=11, sustain=10)
        assert 90 <= step <= 130

    def test_flat_series_raises(self):
        with pytest.raises(AnalysisError):
            detect_divergence_step(np.full(200, 1.0))

    def test_noise_only_series_raises(self):
        rng = np.random.default_rng(3)
        series = 1.0 + rng.normal(0, 0.05, 200)
        with pytest.raises(AnalysisError):
            detect_divergence_step(series, factor=2.0, sustain=10)

    def test_short_series_raises(self):
        with pytest.raises(AnalysisError):
            detect_divergence_step(np.array([1.0, 2.0]))

    def test_transient_spike_not_flagged(self):
        series = np.full(200, 1.0)
        series[80:84] = 10.0  # short spike, shorter than sustain
        with pytest.raises(AnalysisError):
            detect_divergence_step(series, window=1, sustain=10)

    def test_steps_labels_are_used(self):
        series = synthetic_spread(100, 60)
        steps = np.arange(len(series)) * 10
        step = detect_divergence_step(series, steps=steps, window=5, sustain=5)
        assert step % 10 == 0
        assert 900 <= step <= 1300

    def test_rejects_bad_baseline_fraction(self):
        with pytest.raises(AnalysisError):
            detect_divergence_step(synthetic_spread(50, 50), baseline_fraction=1.5)

    def test_sensitivity_to_factor(self):
        series = synthetic_spread(100, 100)
        early = detect_divergence_step(series, factor=1.5, window=5, sustain=5)
        late = detect_divergence_step(series, factor=5.0, window=5, sustain=5)
        assert late >= early


class TestDetectDivergenceEdgeCases:
    """Series shapes the campaign engine must classify as "never diverged"."""

    def test_decreasing_series_never_diverges(self):
        # DLB better than the start for the whole sweep: no boundary.
        series = np.linspace(5.0, 1.0, 200)
        with pytest.raises(AnalysisError):
            detect_divergence_step(series, window=5, sustain=10)

    def test_rise_shorter_than_sustain_window_not_flagged(self):
        # The exceedance must be *sustained*; a rise that starts but has
        # fewer than `sustain` samples left in the series cannot qualify.
        series = np.full(120, 1.0)
        series[-6:] = 50.0  # only 6 samples above threshold, sustain=10
        with pytest.raises(AnalysisError):
            detect_divergence_step(series, window=1, sustain=10)

    def test_transient_bump_that_dips_back_below_baseline(self):
        # The spread exceeds the threshold for a while but recovers to the
        # baseline -- DLB caught up, so this is not a divergence.
        series = np.full(300, 1.0)
        series[100:108] = 8.0   # sustained-looking bump ...
        series[108:] = 1.0      # ... but the spread settles back down
        with pytest.raises(AnalysisError):
            detect_divergence_step(series, window=1, factor=2.0, sustain=10)

    def test_bump_then_true_divergence_is_found_after_the_bump(self):
        # Same transient bump, but a genuine sustained rise later on: the
        # detector must skip the bump and report the real divergence.
        series = np.full(300, 1.0)
        series[100:108] = 8.0
        series[200:] = 1.0 + np.arange(100) * 0.5
        step = detect_divergence_step(series, window=1, factor=2.0, sustain=10)
        assert step >= 200

    def test_whole_series_at_threshold_is_not_a_boundary(self):
        # Constant series: the baseline equals the signal, no increase ever
        # "begins", so no boundary exists even though nothing is below it.
        series = np.full(150, 2.0)
        with pytest.raises(AnalysisError):
            detect_divergence_step(series, window=5, sustain=10)


class TestBoundaryPoint:
    def test_reads_trajectory_at_detected_step(self):
        series = synthetic_spread(100, 60)
        n_records = len(series)
        trajectory = Trajectory(
            steps=np.arange(n_records),
            n=np.linspace(1.0, 3.0, n_records),
            c0_ratio=np.linspace(0.0, 0.8, n_records),
        )
        point = boundary_point(series, trajectory, window=5, sustain=5)
        assert isinstance(point, BoundaryPoint)
        assert 1.0 <= point.n <= 3.0
        assert 0.0 <= point.c0_ratio <= 0.8
        # The point must correspond to the detected step's trajectory entry.
        idx = point.step
        assert point.n == pytest.approx(trajectory.n[idx])
