"""The ``repro.api`` facade: shims, persisted artifacts, validation."""

import warnings

import numpy as np
import pytest

import repro
from repro import api
from repro.config import (
    DecompositionConfig,
    DLBConfig,
    MDConfig,
    RunConfig,
    SimulationConfig,
)
from repro.errors import ConfigurationError, SchemaError


def small_config(dlb_enabled: bool = True) -> SimulationConfig:
    return SimulationConfig(
        md=MDConfig(n_particles=1000, density=0.256),
        decomposition=DecompositionConfig(cells_per_side=6, n_pes=9),
        dlb=DLBConfig(enabled=dlb_enabled),
    )


class TestDeprecatedShims:
    """Old top-level entry points still work but say so loudly."""

    def test_parallel_runner_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api.simulate"):
            cls = repro.ParallelMDRunner

        from repro.core.runner import ParallelMDRunner

        assert cls is ParallelMDRunner

    def test_driven_runner_warns(self):
        with pytest.warns(DeprecationWarning, match="simulate_driven"):
            cls = repro.DrivenLoadRunner

        from repro.core.runner import DrivenLoadRunner

        assert cls is DrivenLoadRunner

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing

    def test_shim_and_api_are_equivalent(self):
        """The deprecated class path computes the same physics as simulate()."""
        with pytest.warns(DeprecationWarning):
            runner_cls = repro.ParallelMDRunner
        old = runner_cls(small_config(), RunConfig(steps=3, seed=5)).run()
        new = api.simulate(small_config(), run=RunConfig(steps=3, seed=5))
        assert old.digest() == new.digest()

    def test_direct_module_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core.runner import ParallelMDRunner  # noqa: F401


class TestSimulateValidation:
    def test_rejects_non_config(self):
        with pytest.raises(ConfigurationError):
            api.simulate(42, run=RunConfig(steps=1))

    def test_rejects_unknown_preset(self):
        with pytest.raises(Exception):
            api.simulate("no-such-preset", run=RunConfig(steps=1))

    def test_rejects_bad_faults_type(self):
        with pytest.raises(ConfigurationError):
            api.simulate(small_config(), run=RunConfig(steps=1), faults="plan.json")

    def test_rejects_negative_stop_after(self):
        with pytest.raises(ConfigurationError):
            api.simulate(small_config(), run=RunConfig(steps=1), stop_after=-1)

    def test_dlb_override_flips_mode(self):
        result = api.simulate(small_config(True), run=RunConfig(steps=2, seed=1), dlb=False)
        assert result.meta["mode"] == "ddm"
        assert not result.dlb_enabled


class TestSimulateDriven:
    def test_runs_configuration_sequence(self):
        rng = np.random.default_rng(0)
        box = small_config().md.box_length
        configs = [rng.uniform(0, box, (500, 3)) for _ in range(3)]
        result = api.simulate_driven(small_config(), configs)
        assert result.meta["mode"] == "dlb"
        assert result.meta["engine"] == "inproc"


class TestPersistedArtifacts:
    def test_config_round_trip(self, tmp_path):
        path = tmp_path / "config.json"
        run = RunConfig(steps=7, seed=9)
        api.save_config(path, small_config(), run)
        loaded = api.load_config(path)
        assert loaded.simulation == small_config()
        assert loaded.run == run

    def test_config_without_run_section(self, tmp_path):
        path = tmp_path / "config.json"
        api.save_config(path, small_config())
        assert api.load_config(path).run is None

    def test_load_config_rejects_missing_simulation(self, tmp_path):
        path = tmp_path / "broken.json"
        from repro.core.results import write_result_json

        write_result_json(path, {"not_simulation": {}})
        with pytest.raises(SchemaError):
            api.load_config(path)

    def test_result_payload_is_schema_versioned(self):
        result = api.simulate(small_config(), run=RunConfig(steps=2, seed=1))
        payload = api.result_payload(result)
        from repro.core.results import RESULT_SCHEMA_VERSION

        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        assert payload["digest"] == result.digest()
        assert payload["steps_run"] == 2

    def test_load_result_round_trip(self, tmp_path):
        from repro.core.results import write_result_json

        result = api.simulate(small_config(), run=RunConfig(steps=2, seed=1))
        path = tmp_path / "result.json"
        write_result_json(path, api.result_payload(result))
        loaded = api.load_result(path)
        assert loaded["digest"] == result.digest()

    def test_load_faults(self, tmp_path):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 3, "jitter": 0.1}))
        plan = api.load_faults(path)
        assert plan.seed == 3
        assert plan.jitter == 0.1
