"""Run result containers."""

import numpy as np
import pytest

from repro.core.results import RunResult, StepRecord
from repro.errors import AnalysisError
from repro.parallel.instrumentation import StepTiming
from repro.theory.concentration import ConcentrationState


def record(step: int, tt: float, n_moves: int = 0) -> StepRecord:
    return StepRecord(
        step=step,
        timing=StepTiming(step=step, tt=tt, fmax=tt * 0.8, fave=tt * 0.5, fmin=tt * 0.3),
        concentration=ConcentrationState(
            n_cells=100, empty_cells=step, c0_ratio=step / 100, n=1.0 + step / 10,
            max_domain_cells=50,
        ),
        n_moves=n_moves,
    )


class TestRunResult:
    def test_append_builds_all_views(self):
        result = RunResult(dlb_enabled=True)
        for s in range(1, 6):
            result.append(record(s, float(s), n_moves=2))
        assert np.array_equal(result.steps, np.arange(1, 6))
        assert np.allclose(result.tt, np.arange(1.0, 6.0))
        assert len(result.trajectory) == 5
        assert result.total_moves == 10

    def test_spread_series(self):
        result = RunResult(dlb_enabled=False)
        result.append(record(1, 2.0))
        assert result.spread[0] == pytest.approx(2.0 * 0.8 - 2.0 * 0.3)

    def test_mean_tt_tail(self):
        result = RunResult(dlb_enabled=False)
        for s in range(1, 11):
            result.append(record(s, float(s)))
        assert result.mean_tt() == pytest.approx(5.5)
        assert result.mean_tt(tail_fraction=0.2) == pytest.approx(9.5)

    def test_mean_tt_rejects_bad_fraction(self):
        result = RunResult(dlb_enabled=False)
        result.append(record(1, 1.0))
        with pytest.raises(AnalysisError):
            result.mean_tt(tail_fraction=0.0)

    def test_summary_keys(self):
        result = RunResult(dlb_enabled=True)
        for s in range(1, 4):
            result.append(record(s, float(s), n_moves=1))
        summary = result.summary()
        assert summary["steps"] == 3
        assert summary["tt_first"] == 1.0
        assert summary["tt_last"] == 3.0
        assert summary["total_moves"] == 3.0

    def test_trajectory_matches_records(self):
        result = RunResult(dlb_enabled=True)
        result.append(record(4, 1.0))
        trajectory = result.trajectory
        assert trajectory.point_at_step(4) == (1.4, 0.04)
