"""Run result containers."""

import numpy as np
import pytest

from repro.core.results import RunResult, StepRecord
from repro.errors import AnalysisError
from repro.parallel.instrumentation import StepTiming
from repro.theory.concentration import ConcentrationState


def record(step: int, tt: float, n_moves: int = 0) -> StepRecord:
    return StepRecord(
        step=step,
        timing=StepTiming(step=step, tt=tt, fmax=tt * 0.8, fave=tt * 0.5, fmin=tt * 0.3),
        concentration=ConcentrationState(
            n_cells=100, empty_cells=step, c0_ratio=step / 100, n=1.0 + step / 10,
            max_domain_cells=50,
        ),
        n_moves=n_moves,
    )


class TestRunResult:
    def test_append_builds_all_views(self):
        result = RunResult(dlb_enabled=True)
        for s in range(1, 6):
            result.append(record(s, float(s), n_moves=2))
        assert np.array_equal(result.steps, np.arange(1, 6))
        assert np.allclose(result.tt, np.arange(1.0, 6.0))
        assert len(result.trajectory) == 5
        assert result.total_moves == 10

    def test_spread_series(self):
        result = RunResult(dlb_enabled=False)
        result.append(record(1, 2.0))
        assert result.spread[0] == pytest.approx(2.0 * 0.8 - 2.0 * 0.3)

    def test_mean_tt_tail(self):
        result = RunResult(dlb_enabled=False)
        for s in range(1, 11):
            result.append(record(s, float(s)))
        assert result.mean_tt() == pytest.approx(5.5)
        assert result.mean_tt(tail_fraction=0.2) == pytest.approx(9.5)

    def test_mean_tt_rejects_bad_fraction(self):
        result = RunResult(dlb_enabled=False)
        result.append(record(1, 1.0))
        with pytest.raises(AnalysisError):
            result.mean_tt(tail_fraction=0.0)

    def test_summary_keys(self):
        result = RunResult(dlb_enabled=True)
        for s in range(1, 4):
            result.append(record(s, float(s), n_moves=1))
        summary = result.summary()
        assert summary["steps"] == 3
        assert summary["tt_first"] == 1.0
        assert summary["tt_last"] == 3.0
        assert summary["total_moves"] == 3.0

    def test_trajectory_matches_records(self):
        result = RunResult(dlb_enabled=True)
        result.append(record(4, 1.0))
        trajectory = result.trajectory
        assert trajectory.point_at_step(4) == (1.4, 0.04)


class TestResultSchema:
    """The versioned result schema: one writer/reader pair for every artifact."""

    def test_round_trip(self, tmp_path):
        from repro.core.results import (
            RESULT_SCHEMA_VERSION,
            read_result_json,
            write_result_json,
        )

        path = tmp_path / "result.json"
        write_result_json(path, {"summary": {"tt_mean": 1.5}, "digest": "ab"})
        payload = read_result_json(path)
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        assert payload["summary"] == {"tt_mean": 1.5}
        assert payload["digest"] == "ab"

    def test_existing_version_is_preserved(self):
        from repro.core.results import attach_schema_version

        stamped = attach_schema_version({"schema_version": "1.9", "x": 1})
        assert stamped["schema_version"] == "1.9"

    def test_unknown_major_rejected(self, tmp_path):
        import json

        from repro.core.results import read_result_json
        from repro.errors import SchemaError

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema_version": "2.0", "x": 1}))
        with pytest.raises(SchemaError):
            read_result_json(path)

    def test_newer_minor_accepted(self, tmp_path):
        import json

        from repro.core.results import read_result_json

        path = tmp_path / "minor.json"
        path.write_text(json.dumps({"schema_version": "1.99", "x": 1}))
        assert read_result_json(path)["x"] == 1

    def test_missing_declaration_rejected(self, tmp_path):
        import json

        from repro.core.results import read_result_json
        from repro.errors import SchemaError

        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"x": 1}))
        with pytest.raises(SchemaError):
            read_result_json(path)

    def test_malformed_version_rejected(self):
        from repro.core.results import parse_schema_version
        from repro.errors import SchemaError

        for bad in ("1", "a.b", "1.2.3", "-1.0"):
            with pytest.raises(SchemaError):
                parse_schema_version(bad)

    def test_non_object_payload_rejected(self, tmp_path):
        from repro.core.results import read_result_json
        from repro.errors import SchemaError

        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(SchemaError):
            read_result_json(path)
