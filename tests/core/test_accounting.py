"""Step accounting on the virtual machine."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.core.accounting import StepAccountant
from repro.decomp.assignment import CellAssignment
from repro.dlb.protocol import Case, Move
from repro.md.celllist import CellList


@pytest.fixture
def setup():
    nc, n_pes = 6, 9
    machine = MachineConfig()
    cell_list = CellList(float(nc), nc)
    assignment = CellAssignment(nc, n_pes)
    accountant = StepAccountant(machine, cell_list, n_pes)
    return machine, cell_list, assignment, accountant


class TestAccountStep:
    def test_uniform_gas_is_balanced(self, setup):
        _, _, assignment, accountant = setup
        counts = np.full((6, 6, 6), 3)
        timing, totals = accountant.account_step(1, counts, assignment, dlb_enabled=False)
        assert timing.spread == pytest.approx(0.0, abs=1e-15)
        assert np.allclose(totals, totals[0])

    def test_hotspot_creates_spread(self, setup):
        _, _, assignment, accountant = setup
        counts = np.ones((6, 6, 6), dtype=int)
        counts[0, 0, 0] = 50
        timing, _ = accountant.account_step(1, counts, assignment, dlb_enabled=False)
        assert timing.spread > 0
        assert timing.fmax > timing.fave > timing.fmin

    def test_tt_includes_all_components(self, setup):
        _, _, assignment, accountant = setup
        counts = np.full((6, 6, 6), 2)
        timing, totals = accountant.account_step(1, counts, assignment, dlb_enabled=False)
        assert timing.tt == pytest.approx(totals.max())
        assert timing.tt > timing.fmax  # comm and integration add on top

    def test_dlb_overhead_charged_when_enabled(self, setup):
        machine, _, assignment, accountant = setup
        counts = np.full((6, 6, 6), 2)
        t_off, _ = accountant.account_step(1, counts, assignment, dlb_enabled=False)
        t_on, _ = accountant.account_step(2, counts, assignment, dlb_enabled=True)
        assert t_on.tt == pytest.approx(t_off.tt + machine.dlb_overhead)
        assert t_on.dlb_time == machine.dlb_overhead


class TestChargeMoves:
    def test_migration_lands_on_next_step(self, setup):
        _, _, assignment, accountant = setup
        counts = np.full((6, 6, 6), 3)
        base, _ = accountant.account_step(1, counts, assignment, dlb_enabled=True)
        cell = int(assignment.movable_at_home(4)[0])
        move = Move(cell=cell, src=4, dst=assignment.pe_flat(0, 1), kind=Case.SEND_OWN)
        accountant.charge_moves([move], counts, assignment)
        assignment.transfer(cell, move.dst)
        charged, _ = accountant.account_step(2, counts, assignment, dlb_enabled=True)
        assert charged.comm_max > base.comm_max
        # The pending charge is consumed: the following step matches a fresh
        # accounting of the (post-move) state.
        after, _ = accountant.account_step(3, counts, assignment, dlb_enabled=True)
        fresh = StepAccountant(accountant.machine, accountant.cell_list, 9)
        reference, _ = fresh.account_step(3, counts, assignment, dlb_enabled=True)
        assert after.comm_max == pytest.approx(reference.comm_max, rel=1e-9)
        assert after.comm_max < charged.comm_max

    def test_empty_moves_are_free(self, setup):
        _, _, assignment, accountant = setup
        counts = np.full((6, 6, 6), 3)
        accountant.charge_moves([], counts, assignment)
        assert np.all(accountant._pending_migration == 0.0)

    def test_migration_traffic_logged(self, setup):
        _, _, assignment, accountant = setup
        counts = np.full((6, 6, 6), 3)
        cell = int(assignment.movable_at_home(4)[0])
        move = Move(cell=cell, src=4, dst=assignment.pe_flat(0, 1), kind=Case.SEND_OWN)
        accountant.charge_moves([move], counts, assignment)
        assert accountant.traffic.by_tag["migration"].bytes > 0
        assert accountant.traffic.by_tag["dlb-bookkeeping"].bytes > 0


class TestMeasuredOverride:
    def test_override_replaces_force_times(self, setup):
        _, _, assignment, accountant = setup
        counts = np.full((6, 6, 6), 3)
        override = np.arange(9, dtype=float) + 1.0
        timing, _ = accountant.account_step(
            1, counts, assignment, dlb_enabled=False, force_times_override=override
        )
        assert timing.fmax == pytest.approx(9.0)
        assert timing.fmin == pytest.approx(1.0)


class TestExplicitProfiler:
    """Worker-safety: an accountant given its own profiler never touches the
    process-global one (two accountants in different processes stay isolated)."""

    def test_timings_go_to_the_given_profiler(self):
        from repro.obs.profiler import Profiler

        nc, n_pes = 6, 9
        profiler = Profiler()
        accountant = StepAccountant(
            MachineConfig(), CellList(float(nc), nc), n_pes, profiler=profiler
        )
        counts = np.full((nc, nc, nc), 3)
        accountant.account_step(1, counts, CellAssignment(nc, n_pes), dlb_enabled=False)
        assert profiler.stats["accounting.account_step"].count == 1

    def test_merge_state_folds_worker_snapshots(self):
        from repro.obs.profiler import Profiler

        worker = Profiler()
        with worker.timer("engine.worker.force_pass"):
            pass
        driver = Profiler()
        driver.merge_state(worker.state_dict(), prefix="worker0.")
        merged = driver.stats["worker0.engine.worker.force_pass"]
        assert merged.count == 1
