"""Exact decomposed force computation: the parallel-correctness test."""

import numpy as np
import pytest

from repro.core.ddm import decomposed_force_pass, ghost_cell_mask
from repro.decomp.assignment import CellAssignment
from repro.errors import DecompositionError
from repro.md.celllist import CellList
from repro.md.forces import ForceField
from repro.md.potential import LennardJones
from repro.md.system import ParticleSystem


@pytest.fixture
def setup(rng):
    nc, n_pes = 6, 9
    box = nc * 2.62
    positions = rng.uniform(0, box, (500, 3))
    system = ParticleSystem(positions, box_length=box)
    cell_list = CellList(box, nc)
    assignment = CellAssignment(nc, n_pes)
    potential = LennardJones()
    return system, cell_list, assignment, potential


class TestGhostCellMask:
    def test_ghosts_are_adjacent_and_foreign(self, setup):
        _, cell_list, assignment, _ = setup
        owner = assignment.cell_owner_map()
        mask = ghost_cell_mask(owner, cell_list, pe=4)
        assert mask.any()
        assert not (mask & (owner == 4)).any()

    def test_single_pe_has_no_ghosts(self):
        cell_list = CellList(6.0, 3)
        owner = np.zeros(27, dtype=np.int64)
        assert not ghost_cell_mask(owner, cell_list, 0).any()


class TestDecomposedForcePass:
    def test_forces_match_global_kernel(self, setup):
        """THE correctness property of DDM: per-PE computation with ghost
        cells, merged, equals the single-process force evaluation."""
        system, cell_list, assignment, potential = setup
        global_result = ForceField(potential).compute(system.copy())
        decomposed = decomposed_force_pass(
            system, cell_list, assignment.cell_owner_map(), 9, potential
        )
        assert np.allclose(decomposed.forces, global_result.forces, atol=1e-9)

    def test_energy_matches_global_kernel(self, setup):
        system, cell_list, assignment, potential = setup
        global_result = ForceField(potential).compute(system.copy())
        decomposed = decomposed_force_pass(
            system, cell_list, assignment.cell_owner_map(), 9, potential
        )
        assert decomposed.potential_energy == pytest.approx(
            global_result.potential_energy, rel=1e-9
        )

    def test_still_correct_after_cell_migration(self, setup):
        system, cell_list, assignment, potential = setup
        for pe in range(9):
            movable = assignment.movable_at_home(pe)
            if len(movable):
                assignment.transfer(
                    int(movable[0]), sorted(assignment.lower_neighbors(pe))[0]
                )
        global_result = ForceField(potential).compute(system.copy())
        decomposed = decomposed_force_pass(
            system, cell_list, assignment.cell_owner_map(), 9, potential
        )
        assert np.allclose(decomposed.forces, global_result.forces, atol=1e-9)
        assert decomposed.potential_energy == pytest.approx(
            global_result.potential_energy, rel=1e-9
        )

    def test_per_pe_times_positive(self, setup):
        system, cell_list, assignment, potential = setup
        decomposed = decomposed_force_pass(
            system, cell_list, assignment.cell_owner_map(), 9, potential
        )
        assert np.all(decomposed.per_pe_seconds > 0)

    def test_pair_counts_cover_all_pairs(self, setup):
        # Each pair is evaluated once by each endpoint owner (twice if the
        # endpoints have different owners, once... actually exactly: pairs
        # with both endpoints on one PE are counted once; split pairs are
        # counted by both owners.
        system, cell_list, assignment, potential = setup
        ff = ForceField(potential)
        n_global = ff.compute(system.copy()).n_pairs
        decomposed = decomposed_force_pass(
            system, cell_list, assignment.cell_owner_map(), 9, potential
        )
        total = decomposed.per_pe_pairs.sum()
        assert n_global <= total <= 2 * n_global

    def test_rejects_bad_owner_map(self, setup):
        system, cell_list, _, potential = setup
        with pytest.raises(DecompositionError):
            decomposed_force_pass(system, cell_list, np.zeros(5, dtype=int), 9, potential)

    def test_empty_pe_contributes_nothing(self, rng):
        # All particles inside one PE's region: other PEs do nearly no work.
        nc = 6
        box = nc * 2.62
        positions = rng.uniform(0, box / 3, (100, 3))  # inside PE(0, 0)'s block
        system = ParticleSystem(positions, box_length=box)
        cell_list = CellList(box, nc)
        assignment = CellAssignment(nc, 9)
        result = decomposed_force_pass(
            system, cell_list, assignment.cell_owner_map(), 9, LennardJones()
        )
        # Only PE 0 (and neighbours via ghosts of split pairs) hold pairs.
        assert result.per_pe_pairs[0] > 0
        assert result.per_pe_pairs.sum() >= result.per_pe_pairs[0]


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestCandidateDrivenPass:
    """The decomposed pass fed a shared (Verlet-style) candidate list."""

    def test_matches_search_driven_pass(self, setup):
        from repro.md.neighbors import VerletList

        system, cell_list, assignment, potential = setup
        owner = assignment.cell_owner_map()
        verlet = VerletList(system.box_length, potential.cutoff, 0.4)
        candidates = verlet.candidates(system.positions)
        fresh = decomposed_force_pass(system, cell_list, owner, 9, potential)
        cached = decomposed_force_pass(
            system, cell_list, owner, 9, potential, candidate_pairs=candidates
        )
        assert np.allclose(cached.forces, fresh.forces, atol=1e-9)
        assert cached.potential_energy == pytest.approx(
            fresh.potential_energy, rel=1e-9
        )

    def test_matches_global_kernel(self, setup):
        from repro.md.neighbors import pairs_kdtree

        system, cell_list, assignment, potential = setup
        owner = assignment.cell_owner_map()
        pairs = pairs_kdtree(system.positions, system.box_length, potential.cutoff)
        global_result = ForceField(potential).compute(system.copy())
        cached = decomposed_force_pass(
            system, cell_list, owner, 9, potential, candidate_pairs=pairs
        )
        assert np.allclose(cached.forces, global_result.forces, atol=1e-9)
        assert cached.potential_energy == pytest.approx(
            global_result.potential_energy, rel=1e-9
        )

    def test_empty_candidates(self, setup):
        system, cell_list, assignment, potential = setup
        owner = assignment.cell_owner_map()
        result = decomposed_force_pass(
            system, cell_list, owner, 9, potential,
            candidate_pairs=np.empty((0, 2), dtype=np.int64),
        )
        assert np.allclose(result.forces, 0.0)
        assert result.per_pe_pairs.sum() == 0
