"""Top-level runners."""

import numpy as np
import pytest

from repro.config import (
    DecompositionConfig,
    DLBConfig,
    MDConfig,
    RunConfig,
    SimulationConfig,
)
from repro.core.runner import DrivenLoadRunner, ParallelMDRunner
from repro.decomp.validation import check_eight_neighbor_property
from repro.errors import ConfigurationError
from repro.workloads.concentration import ConcentrationSchedule


def small_sim_config(dlb_enabled: bool = True) -> SimulationConfig:
    return SimulationConfig(
        md=MDConfig(n_particles=1000, density=0.256),
        decomposition=DecompositionConfig(cells_per_side=6, n_pes=9),
        dlb=DLBConfig(enabled=dlb_enabled),
    )


class TestParallelMDRunner:
    def test_rejects_non_pillar_shape(self):
        config = SimulationConfig(
            md=MDConfig(n_particles=1000, density=0.256),
            decomposition=DecompositionConfig(cells_per_side=6, n_pes=2, shape="plane"),
        )
        with pytest.raises(ConfigurationError):
            ParallelMDRunner(config, RunConfig(steps=1))

    def test_short_run_produces_records(self):
        runner = ParallelMDRunner(small_sim_config(), RunConfig(steps=5, seed=1))
        result = runner.run()
        assert len(result.records) == 5
        assert result.dlb_enabled

    def test_record_interval(self):
        runner = ParallelMDRunner(
            small_sim_config(), RunConfig(steps=6, seed=1, record_interval=3)
        )
        result = runner.run()
        assert [r.step for r in result.records] == [3, 6]

    def test_ddm_runner_never_moves_cells(self):
        runner = ParallelMDRunner(small_sim_config(False), RunConfig(steps=5, seed=1))
        result = runner.run()
        assert not result.dlb_enabled
        assert result.total_moves == 0
        assert np.array_equal(runner.assignment.holder, runner.assignment.home)

    def test_deterministic(self):
        a = ParallelMDRunner(small_sim_config(), RunConfig(steps=5, seed=3)).run()
        b = ParallelMDRunner(small_sim_config(), RunConfig(steps=5, seed=3)).run()
        assert np.allclose(a.tt, b.tt)

    def test_physics_identical_with_and_without_dlb(self):
        # DLB only changes *where* cells are computed, never the dynamics.
        ra = ParallelMDRunner(small_sim_config(True), RunConfig(steps=5, seed=3))
        rb = ParallelMDRunner(small_sim_config(False), RunConfig(steps=5, seed=3))
        ra.run()
        rb.run()
        assert np.allclose(ra.system.positions, rb.system.positions)
        assert np.allclose(ra.system.velocities, rb.system.velocities)

    def test_eight_neighbor_property_after_run(self):
        # A permanent-cell protocol guarantee: pinned so an unconstrained
        # REPRO_BALANCER matrix leg does not rebind the strategy under test.
        runner = ParallelMDRunner(
            small_sim_config(), RunConfig(steps=10, seed=2, balancer="permanent")
        )
        runner.run()
        check_eight_neighbor_property(runner.assignment)
        runner.assignment.validate()

    def test_measured_mode_runs(self):
        runner = ParallelMDRunner(
            small_sim_config(), RunConfig(steps=2, seed=1, timing_mode="measured")
        )
        result = runner.run()
        assert len(result.records) == 2
        assert result.timing.fmax[0] > 0

    def test_concentration_recorded(self):
        runner = ParallelMDRunner(small_sim_config(), RunConfig(steps=3, seed=1))
        result = runner.run()
        assert all(r.concentration.n >= 1.0 for r in result.records)

    def test_rejects_mismatched_system_box(self):
        from repro.md.system import ParticleSystem

        config = small_sim_config()
        bad = ParticleSystem(np.ones((10, 3)), box_length=5.0)
        with pytest.raises(ConfigurationError):
            ParallelMDRunner(config, RunConfig(steps=1), system=bad)


class TestDrivenLoadRunner:
    def test_processes_schedule(self):
        config = small_sim_config()
        schedule = ConcentrationSchedule(
            n_particles=1000, box_length=config.md.box_length, n_steps=8, seed=1
        )
        result = DrivenLoadRunner(config).run(schedule)
        assert len(result.records) == 8

    def test_rounds_per_config_multiplies_steps(self):
        config = small_sim_config()
        schedule = ConcentrationSchedule(
            n_particles=1000, box_length=config.md.box_length, n_steps=4, seed=1
        )
        runner = DrivenLoadRunner(config, rounds_per_config=3)
        result = runner.run(schedule)
        assert len(result.records) == 4
        assert runner.step_count == 12

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            DrivenLoadRunner(small_sim_config(), rounds_per_config=0)

    def test_dlb_balances_better_than_ddm(self):
        """The headline qualitative claim on a concentrating workload."""
        late_spreads = {}
        for dlb_enabled in (False, True):
            config = small_sim_config(dlb_enabled)
            schedule = ConcentrationSchedule(
                n_particles=1000,
                box_length=config.md.box_length,
                n_steps=40,
                n_droplets=24,
                seed=5,
            )
            # Pinned: the claim is about the paper's balancer, and the
            # `none` matrix leg would turn the DLB arm into DDM.
            result = DrivenLoadRunner(config, rounds_per_config=3,
                                      balancer="permanent").run(schedule)
            late_spreads[dlb_enabled] = float(result.spread[-10:].mean())
        assert late_spreads[True] < late_spreads[False]

    def test_eight_neighbor_property_after_sweep(self):
        config = small_sim_config()
        schedule = ConcentrationSchedule(
            n_particles=1000, box_length=config.md.box_length, n_steps=20, seed=2
        )
        # Pinned to permanent: rivals are not bound by the 8-neighbour
        # protocol this test asserts.
        runner = DrivenLoadRunner(config, rounds_per_config=2,
                                  balancer="permanent")
        runner.run(schedule)
        check_eight_neighbor_property(runner.assignment)
        runner.assignment.validate()


class TestVerletBackendRunner:
    def test_verlet_backend_runs_and_reuses(self):
        runner = ParallelMDRunner(
            small_sim_config(), RunConfig(steps=10, seed=2, force_backend="verlet")
        )
        runner.run()
        stats = runner.neighbor_stats
        assert stats.reuses > 0
        assert stats.rebuilds <= max(1, 10 // 5) + 1
        assert stats.reuse_ratio > 0.5

    def test_verlet_physics_matches_kdtree(self):
        a = ParallelMDRunner(small_sim_config(), RunConfig(steps=8, seed=3))
        b = ParallelMDRunner(
            small_sim_config(), RunConfig(steps=8, seed=3, force_backend="verlet")
        )
        ra, rb = a.run(), b.run()
        pa = np.array([r.potential_energy for r in ra.records])
        pb = np.array([r.potential_energy for r in rb.records])
        assert np.allclose(pa, pb, rtol=1e-8)

    def test_measured_mode_with_verlet_reuses_candidates(self):
        runner = ParallelMDRunner(
            small_sim_config(),
            RunConfig(steps=3, seed=1, force_backend="verlet", timing_mode="measured"),
        )
        result = runner.run()
        assert len(result.records) == 3
        assert result.timing.fmax[0] > 0
        # One rebuild at initialization; the decomposed passes ride the cache.
        assert runner.neighbor_stats.rebuilds <= 2

    def test_shared_cell_list_with_cells_backend(self):
        runner = ParallelMDRunner(
            small_sim_config(), RunConfig(steps=2, seed=1, force_backend="cells")
        )
        runner.run()
        # The force field must adopt the runner's grid, not build its own.
        assert runner.force_field._cell_list is runner.cell_list
