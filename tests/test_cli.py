"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["presets"],
            ["run", "bench-m2", "--mode", "ddm", "--steps", "3"],
            ["sweep", "--m", "2", "--pes", "9"],
            ["bounds", "--n-min", "1", "--n-max", "2"],
            ["calibrate", "--particles", "256"],
            ["campaign", "list"],
            ["campaign", "run", "smoke", "--workers", "2", "--max-runs", "1"],
            ["campaign", "resume", "smoke", "--dir", "d"],
            ["campaign", "status"],
            ["campaign", "report", "smoke", "--json"],
            ["campaign", "search", "--m", "2", "--stride", "5"],
            ["run", "bench-m2", "--mode", "dlb", "--events", "ev.jsonl",
             "--metrics", "m.prom", "--metrics-every", "5"],
            ["events", "tail", "ev.jsonl", "-n", "3"],
            ["events", "summary", "ev.jsonl", "--json"],
            ["explain", "ev.jsonl", "--step", "4"],
            ["campaign", "run", "smoke", "--events-dir", "d"],
            ["campaign", "resume", "smoke", "--dir", "d", "--events-dir", "e"],
            ["campaign", "gc", "--older-than", "7d", "--dir", "d"],
            ["campaign", "gc", "svc", "--older-than", "90s", "--status",
             "done,failed", "--json"],
            ["runs", "quarantine", "--dir", "d", "--json"],
            ["runs", "requeue", "cafebabe", "--dir", "d"],
            ["serve", "--lease-ttl", "5", "--reap-interval", "1",
             "--max-attempts", "2", "--checkpoint-every", "50",
             "--result-ttl", "2h", "--gc-interval", "30"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_campaign_requires_a_verb(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])


class TestCommands:
    def test_presets_lists_registry(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "fig5a-paper" in out
        assert "fig5b-scaled" in out

    def test_bounds_prints_table(self, capsys):
        assert main(["bounds", "--n-min", "1", "--n-max", "2", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "f(2,n)" in out and "f(4,n)" in out
        # f(m, 1) = 1 for every m.
        assert "1.0000" in out

    def test_run_single_mode(self, capsys):
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "5",
                     "--record-interval", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tt" in out

    def test_run_both_modes(self, capsys):
        code = main(["run", "bench-m2", "--steps", "5", "--record-interval", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DDM" in out and "DLB-DDM" in out

    def test_run_unknown_preset_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "nope", "--steps", "1"])

    def test_sweep_tiny(self, capsys):
        code = main(["sweep", "--m", "2", "--pes", "9", "--reps", "1",
                     "--steps", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert ("E/T" in out) or ("no divergence" in out)

    def test_sweep_reports_every_repetition(self, capsys):
        code = main(["sweep", "--m", "2", "--pes", "9", "--reps", "2",
                     "--steps", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-repetition boundary points" in out
        assert "seed" in out
        assert "±" in out  # the spread, not just the mean

    def test_sweep_json(self, capsys):
        code = main(["sweep", "--m", "2", "--pes", "9", "--reps", "2",
                     "--steps", "50", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["m"] == 2
        assert len(payload["repetitions"]) == 2
        seeds = {rep["seed"] for rep in payload["repetitions"]}
        assert len(seeds) == 2  # independent per-repetition seeds
        assert payload["summary"]["completed"] == 2

    def test_sweep_replay_seed_reproduces_repetition(self, capsys):
        # Run two repetitions, take the second one's reported seed ...
        assert main(["sweep", "--m", "2", "--pes", "9", "--reps", "2",
                     "--steps", "50", "--json"]) == 0
        reference = json.loads(capsys.readouterr().out)["repetitions"][1]
        # ... and replay exactly that run from the seed alone.
        assert main(["sweep", "--m", "2", "--pes", "9", "--steps", "50",
                     "--replay-seed", str(reference["seed"]), "--json"]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert len(replayed["repetitions"]) == 1
        assert replayed["repetitions"][0] == reference

    def test_bounds_json(self, capsys):
        code = main(["bounds", "--n-min", "1", "--n-max", "2", "--points", "3",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == [1.0, 1.5, 2.0]
        assert payload["f2"][0] == 1.0
        assert set(payload) == {"n", "f2", "f3", "f4"}

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--particles", "256", "--repeats", "1"]) == 0
        assert "tau_pair" in capsys.readouterr().out


class TestCampaignCommand:
    def test_list_names_builtins(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "fig10-quick" in out

    def test_run_status_resume_report_cycle(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        # Interrupt after 2 completions ...
        assert main(["campaign", "run", "smoke", "--dir", store_dir,
                     "--max-runs", "2", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["completed"] == 2 and first["interrupted"]
        # ... status shows the partial store ...
        assert main(["campaign", "status", "--dir", store_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["smoke"]["done"] == 2
        assert status["smoke"]["pending"] == 4
        # ... resume completes the remainder without recomputation ...
        assert main(["campaign", "resume", "smoke", "--dir", store_dir,
                     "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["cached"] == 2 and resumed["completed"] == 4
        # ... and the report carries every repetition with its seed.
        assert main(["campaign", "report", "smoke", "--dir", store_dir,
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["done"] == 6
        reps = [rep for g in report["boundary"] for rep in g["repetitions"]]
        assert len(reps) == 6
        assert all("seed" in rep for rep in reps)

    def test_report_human_readable(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["campaign", "run", "smoke", "--dir", store_dir,
                     "--max-runs", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "smoke", "--dir", store_dir]) == 0
        assert "seed replays the run" in capsys.readouterr().out

    def test_unknown_campaign_raises(self, tmp_path):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            main(["campaign", "run", "nope", "--dir", str(tmp_path)])


class TestBackendFlag:
    def test_backend_and_skin_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "bench-m2", "--backend", "verlet", "--skin", "0.3"]
        )
        assert args.backend == "verlet"
        assert args.skin == 0.3

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bench-m2", "--backend", "gpu"])

    def test_run_with_verlet_backend(self, capsys):
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "5",
                     "--record-interval", "1", "--backend", "verlet"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Tt" in captured.out
        assert "rebuilds" in captured.err


class TestObservabilityFlags:
    def test_trace_metrics_profile_parse(self):
        args = build_parser().parse_args(
            ["run", "quickstart", "--trace", "t.json", "--metrics", "m.prom",
             "--profile"]
        )
        assert args.trace == "t.json"
        assert args.metrics == "m.prom"
        assert args.profile

    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs import validate_trace

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main([
            "run", "quickstart", "--steps", "6", "--record-interval", "2",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
            "--profile",
        ])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        validate_trace(payload)
        events = payload["traceEvents"]
        # both modes: ddm tracks under pid 0, dlb under pid 1
        assert {e["pid"] for e in events if e["ph"] == "X"} >= {0, 1}
        assert {e["name"] for e in events if e["ph"] == "X"} >= {"force", "halo-comm"}
        text = metrics_path.read_text()
        assert 'repro_steps_total{mode="ddm"} 6' in text
        assert 'repro_steps_total{mode="dlb"} 6' in text
        assert "repro_traffic_bytes_total" in text
        captured = capsys.readouterr()
        assert "per-phase step-time breakdown" in captured.out
        assert "host kernel profile" in captured.out

    def test_run_without_flags_has_no_observability_cost(self, capsys):
        # the plain path still prints the phase table from the timing log
        code = main(["run", "quickstart", "--mode", "ddm", "--steps", "3",
                     "--record-interval", "1"])
        assert code == 0
        assert "per-phase step-time breakdown" in capsys.readouterr().out


class TestChaosFlags:
    """The --faults/--audit-invariants/--checkpoint/--resume surface."""

    @staticmethod
    def write_plan(tmp_path):
        plan = {
            "seed": 11,
            "slowdowns": [{"pe": 4, "factor": 2.0}],
            "jitter": 0.05,
            "messages": [{"tag": "*", "loss": 0.2}],
            "timing": {"drop": 0.3, "max_staleness": 2},
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return path

    def test_chaos_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "bench-m2", "--mode", "dlb", "--steps", "5",
             "--faults", "plan.json", "--audit-invariants", "--audit-every", "2",
             "--audit-policy", "log", "--checkpoint-dir", "ck",
             "--checkpoint-every", "3", "--kill-after", "4",
             "--result-json", "out.json"]
        )
        assert args.faults == "plan.json"
        assert args.audit_invariants
        assert args.checkpoint_every == 3

    def test_stateful_flags_require_single_mode(self, tmp_path, capsys):
        code = main(["run", "bench-m2", "--steps", "4",
                     "--checkpoint-dir", str(tmp_path / "ck")])
        assert code == 2

    def test_faulted_audited_run_passes(self, tmp_path, capsys):
        plan = self.write_plan(tmp_path)
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "6",
                     "--record-interval", "1",
                     "--faults", str(plan), "--audit-invariants"])
        assert code == 0
        err = capsys.readouterr().err
        assert "0 violation(s)" in err

    def test_invalid_fault_plan_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"seed": 1, "slowness": []}')
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "3",
                     "--faults", str(bad)])
        assert code == 2

    def test_kill_resume_digest_matches_uninterrupted(self, tmp_path, capsys):
        """The CI chaos-smoke scenario, in miniature."""
        plan = self.write_plan(tmp_path)
        base = ["run", "bench-m2", "--mode", "dlb", "--steps", "10",
                "--record-interval", "1", "--faults", str(plan),
                "--audit-invariants"]

        full_json = tmp_path / "full.json"
        assert main(base + ["--result-json", str(full_json)]) == 0

        ck = tmp_path / "ck"
        killed_json = tmp_path / "killed.json"
        code = main(base + ["--checkpoint-dir", str(ck), "--checkpoint-every", "3",
                            "--kill-after", "7", "--result-json", str(killed_json)])
        assert code == 3  # simulated crash
        assert json.loads(killed_json.read_text())["killed_at"] == 7

        resumed_json = tmp_path / "resumed.json"
        assert main(base + ["--resume", str(ck),
                            "--result-json", str(resumed_json)]) == 0

        full = json.loads(full_json.read_text())
        resumed = json.loads(resumed_json.read_text())
        assert full["runs"]["dlb"]["digest"] == resumed["runs"]["dlb"]["digest"]
        assert resumed["runs"]["dlb"]["audit"]["violations"] == 0


class TestFlightRecorderFlags:
    """The --events/--metrics-every surface plus the events/explain verbs."""

    def record(self, tmp_path, steps=6):
        events = tmp_path / "ev.jsonl"
        # --balancer permanent: the divergence test needs a logged move,
        # which a REPRO_BALANCER=none matrix leg would never produce.
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", str(steps),
                     "--balancer", "permanent",
                     "--record-interval", "1", "--events", str(events)])
        assert code == 0
        return events

    def test_events_requires_single_mode(self, tmp_path, capsys):
        code = main(["run", "bench-m2", "--steps", "3",
                     "--events", str(tmp_path / "ev.jsonl")])
        assert code == 2
        assert "single mode" in capsys.readouterr().err

    def test_metrics_every_requires_metrics(self, capsys):
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "3",
                     "--metrics-every", "2"])
        assert code == 2
        assert "--metrics" in capsys.readouterr().err

    def test_run_writes_events_and_host_sidecar(self, tmp_path, capsys):
        from repro.obs import read_events, validate_events

        events = self.record(tmp_path)
        records = read_events(events)
        validate_events(records)
        assert records[0]["kind"] == "run.start"
        assert records[-1]["kind"] == "run.end"
        host = tmp_path / "ev.host.jsonl"
        assert host.exists()
        captured = capsys.readouterr()
        assert "wrote" in captured.err and "host" in captured.err
        assert "Flight recorder" in captured.out

    def test_metrics_every_flushes_mid_run(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "4",
                     "--record-interval", "1", "--metrics", str(metrics),
                     "--metrics-every", "2"])
        assert code == 0
        assert 'repro_steps_total{mode="dlb"} 4' in metrics.read_text()

    def test_events_summary_and_tail(self, tmp_path, capsys):
        events = self.record(tmp_path)
        capsys.readouterr()

        assert main(["events", "summary", str(events)]) == 0
        out = capsys.readouterr().out
        assert "run.start" in out and "events over steps" in out

        assert main(["events", "summary", str(events), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kinds"]["run.end"] == 1

        assert main(["events", "tail", str(events), "-n", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["kind"] == "run.end"

    def test_events_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["events", "summary", str(tmp_path / "nope.jsonl")]) == 2

    def test_explain_replays_the_log(self, tmp_path, capsys):
        events = self.record(tmp_path, steps=8)
        capsys.readouterr()
        assert main(["explain", str(events)]) == 0
        assert "replay matches the log" in capsys.readouterr().out

    def test_explain_flags_divergence(self, tmp_path, capsys):
        events = self.record(tmp_path, steps=8)
        records = [json.loads(line) for line in events.read_text().splitlines()]
        tampered = False
        for record in records:
            if record["kind"] == "dlb.decision" and record["moves"]:
                record["moves"][0]["cell"] += 1
                tampered = True
                break
        assert tampered, "expected at least one balancer move to tamper with"
        events.write_text("".join(json.dumps(r) + "\n" for r in records))
        capsys.readouterr()
        assert main(["explain", str(events)]) == 1
        assert "DIVERGES" in capsys.readouterr().out


class TestRunsAndGcVerbs:
    """The fleet-era operator verbs: quarantine inspection, requeue, gc."""

    def _store_with_runs(self, tmp_path):
        from repro.campaign import RunSpec, RunStore

        store = RunStore(tmp_path / "store")
        done = store.register(RunSpec(seed=1), "svc")
        lease = store.acquire_lease(done)
        store.complete(done, {"v": 1}, 0.1, lease=lease)
        poisoned = store.register(RunSpec(seed=2), "svc")
        store.quarantine(poisoned, "crashed everywhere")
        store.close()
        return str(tmp_path / "store"), done, poisoned

    def test_runs_quarantine_lists_and_requeue_lifts(self, tmp_path, capsys):
        store_dir, _, poisoned = self._store_with_runs(tmp_path)
        assert main(["runs", "quarantine", "--dir", store_dir, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["run_id"] for row in rows] == [poisoned]
        assert rows[0]["quarantine"]["reason"] == "crashed everywhere"

        assert main(["runs", "requeue", poisoned, "--dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["runs", "quarantine", "--dir", store_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_requeue_of_non_quarantined_run_is_a_usage_error(
        self, tmp_path, capsys
    ):
        store_dir, done, _ = self._store_with_runs(tmp_path)
        assert main(["runs", "requeue", done, "--dir", store_dir]) == 2
        assert "not quarantined" in capsys.readouterr().err

    def test_campaign_gc_evicts_done_runs_and_artifacts(
        self, tmp_path, capsys
    ):
        from repro.campaign import RunStore

        store_dir, done, poisoned = self._store_with_runs(tmp_path)
        checkpoints = tmp_path / "store" / "checkpoints" / done
        checkpoints.mkdir(parents=True)
        (checkpoints / "ckpt-000000040.pkl").write_bytes(b"snapshot")
        assert main(["campaign", "gc", "--older-than", "0",
                     "--dir", store_dir, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] == [done]
        assert report["artifacts_removed"] == 1
        assert not checkpoints.exists()
        with RunStore(store_dir) as store:
            assert store.get(done) is None
            assert store.get(poisoned).status == "quarantined"

    def test_campaign_gc_refuses_fresh_runs_and_bad_durations(
        self, tmp_path, capsys
    ):
        store_dir, done, _ = self._store_with_runs(tmp_path)
        assert main(["campaign", "gc", "--older-than", "7d",
                     "--dir", store_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["evicted"] == []
        assert main(["campaign", "gc", "--older-than", "soon",
                     "--dir", store_dir]) == 2
        assert "unreadable duration" in capsys.readouterr().err

    def test_parse_duration_units(self):
        from repro.cli import _parse_duration

        assert _parse_duration("90") == 90.0
        assert _parse_duration("90s") == 90.0
        assert _parse_duration("15m") == 900.0
        assert _parse_duration("2h") == 7200.0
        assert _parse_duration("7d") == 604800.0
