"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["presets"],
            ["run", "bench-m2", "--mode", "ddm", "--steps", "3"],
            ["sweep", "--m", "2", "--pes", "9"],
            ["bounds", "--n-min", "1", "--n-max", "2"],
            ["calibrate", "--particles", "256"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_presets_lists_registry(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "fig5a-paper" in out
        assert "fig5b-scaled" in out

    def test_bounds_prints_table(self, capsys):
        assert main(["bounds", "--n-min", "1", "--n-max", "2", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "f(2,n)" in out and "f(4,n)" in out
        # f(m, 1) = 1 for every m.
        assert "1.0000" in out

    def test_run_single_mode(self, capsys):
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "5",
                     "--record-interval", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tt" in out

    def test_run_both_modes(self, capsys):
        code = main(["run", "bench-m2", "--steps", "5", "--record-interval", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DDM" in out and "DLB-DDM" in out

    def test_run_unknown_preset_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "nope", "--steps", "1"])

    def test_sweep_tiny(self, capsys):
        code = main(["sweep", "--m", "2", "--pes", "9", "--reps", "1",
                     "--steps", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert ("E/T" in out) or ("no divergence" in out)

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--particles", "256", "--repeats", "1"]) == 0
        assert "tau_pair" in capsys.readouterr().out


class TestBackendFlag:
    def test_backend_and_skin_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "bench-m2", "--backend", "verlet", "--skin", "0.3"]
        )
        assert args.backend == "verlet"
        assert args.skin == 0.3

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bench-m2", "--backend", "gpu"])

    def test_run_with_verlet_backend(self, capsys):
        code = main(["run", "bench-m2", "--mode", "dlb", "--steps", "5",
                     "--record-interval", "1", "--backend", "verlet"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Tt" in captured.out
        assert "rebuilds" in captured.err


class TestObservabilityFlags:
    def test_trace_metrics_profile_parse(self):
        args = build_parser().parse_args(
            ["run", "quickstart", "--trace", "t.json", "--metrics", "m.prom",
             "--profile"]
        )
        assert args.trace == "t.json"
        assert args.metrics == "m.prom"
        assert args.profile

    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs import validate_trace

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main([
            "run", "quickstart", "--steps", "6", "--record-interval", "2",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
            "--profile",
        ])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        validate_trace(payload)
        events = payload["traceEvents"]
        # both modes: ddm tracks under pid 0, dlb under pid 1
        assert {e["pid"] for e in events if e["ph"] == "X"} >= {0, 1}
        assert {e["name"] for e in events if e["ph"] == "X"} >= {"force", "halo-comm"}
        text = metrics_path.read_text()
        assert 'repro_steps_total{mode="ddm"} 6' in text
        assert 'repro_steps_total{mode="dlb"} 6' in text
        assert "repro_traffic_bytes_total" in text
        captured = capsys.readouterr()
        assert "per-phase step-time breakdown" in captured.out
        assert "host kernel profile" in captured.out

    def test_run_without_flags_has_no_observability_cost(self, capsys):
        # the plain path still prints the phase table from the timing log
        code = main(["run", "quickstart", "--mode", "ddm", "--steps", "3",
                     "--record-interval", "1"])
        assert code == 0
        assert "per-phase step-time breakdown" in capsys.readouterr().out
