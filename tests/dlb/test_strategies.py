"""The balancer strategy seam (PR 10).

Four contract groups:

* **Seam equivalence** -- the ``permanent`` strategy through the registry is
  move-for-move identical to the pre-seam inline decision loop (re-created
  here verbatim), with and without the bounded-staleness timing view, and
  run-digest-identical end to end (sequential, multiprocess, kill→resume,
  under fault injection).
* **Rivals** -- ``diffusion`` and ``sfc`` conserve ownership (every cell has
  exactly one holder), pass the strategy-relaxed
  :class:`~repro.faults.audit.InvariantAuditor`, and actually move cells;
  ``none`` never does.
* **Selection plumbing** -- one resolver: config field > ``REPRO_BALANCER``
  env var > auto; unknown names fail with the registered choices listed;
  direct ``DynamicLoadBalancer`` construction warns and stays permanent
  regardless of the environment.
* **State** -- strategy identity rides checkpoints; resuming under a
  different strategy refuses with an actionable error.
"""

import warnings

import numpy as np
import pytest

from repro import api
from repro.config import DLBConfig, RunConfig
from repro.decomp.assignment import CellAssignment
from repro.dlb.balancer import DynamicLoadBalancer
from repro.dlb.protocol import decide_move
from repro.dlb.strategies import (
    Balancer,
    DecisionView,
    available,
    create_balancer,
    create_strategy,
    register_strategy,
    resolve_balancer_name,
)
from repro.errors import ConfigurationError
from repro.faults.audit import InvariantAuditor
from repro.parallel.topology import Torus2D
from tests.md.test_kernel_equivalence import fig5_config


def _legacy_decide(assignment, topology, times, config, view=None):
    """The pre-seam ``DynamicLoadBalancer.decide`` loop, byte-for-byte.

    This is the reference the seam is measured against: any drift in the
    extracted ``PermanentCellsBalancer`` shows up as a move mismatch here.
    """

    def wants_rebalance(my_time, fast_time):
        if config.policy == "fastest":
            return True
        if fast_time <= 0:
            return my_time > 0
        return (my_time - fast_time) / fast_time > config.threshold

    moves = []
    committed = {}
    for pe in range(assignment.n_pes):
        if view is not None:
            fastest = view.fastest_known(pe, times, topology)
            fast_time = view.effective(pe, fastest)
        else:
            neighborhood = topology.neighborhood(pe)
            fastest = neighborhood[int(np.argmin(times[neighborhood]))]
            fast_time = float(times[fastest])
        if fastest == pe:
            continue
        if not wants_rebalance(float(times[pe]), fast_time):
            continue
        exclude = committed.setdefault(pe, set())
        for _ in range(config.max_sends_per_step):
            move = decide_move(assignment, topology, pe, fastest, exclude)
            if move is None:
                break
            exclude.add(move.cell)
            moves.append(move)
    return moves


def _evolving_snapshots(nc=9, n_pes=9, rounds=25, seed=3, **config_kwargs):
    """Yield (assignment_pair, topology, times, config) over an evolving run.

    Two assignments are kept in lock-step -- one driven by the seam, one by
    the legacy loop -- so equivalence is checked against *evolved* holder
    maps, not just the initial one.
    """
    rng = np.random.default_rng(seed)
    config = DLBConfig(**config_kwargs)
    seam = CellAssignment(nc, n_pes)
    legacy = CellAssignment(nc, n_pes)
    topology = Torus2D(seam.pe_side)
    for _ in range(rounds):
        times = rng.uniform(0.1, 2.0, n_pes)
        yield seam, legacy, topology, times, config


class TestSeamEquivalence:
    @pytest.mark.parametrize(
        "config_kwargs",
        [
            {},
            {"max_sends_per_step": 3},
            {"policy": "threshold", "threshold": 0.25},
        ],
        ids=["default", "burst", "threshold"],
    )
    def test_permanent_matches_legacy_move_for_move(self, config_kwargs):
        for seam_a, legacy_a, topology, times, config in _evolving_snapshots(
            **config_kwargs
        ):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                balancer = DynamicLoadBalancer(seam_a, config)
            seam_moves = balancer.decide(times)
            legacy_moves = _legacy_decide(legacy_a, topology, times, config)
            assert seam_moves == legacy_moves
            balancer.apply(seam_moves)
            for move in legacy_moves:
                legacy_a.transfer(move.cell, move.dst)
            assert np.array_equal(seam_a.holder, legacy_a.holder)

    def test_permanent_matches_legacy_under_timing_view(self):
        """Equivalence holds on the fault path (bounded-staleness beliefs)."""
        from repro.dlb.views import TimingView

        rng = np.random.default_rng(11)
        assignment = CellAssignment(9, 9)
        topology = Torus2D(assignment.pe_side)
        config = DLBConfig()
        view = TimingView(9, max_staleness=2)

        class DropSome:
            def report_delivered(self, step, src, dst):
                return rng.random() > 0.3

        injector = DropSome()
        strategy = create_strategy("permanent")
        for step in range(20):
            times = rng.uniform(0.1, 2.0, 9)
            view.refresh(step, times, topology, injector)
            decision_view = DecisionView(
                times=times,
                assignment=assignment,
                topology=topology,
                config=config,
                timing=view,
            )
            seam_moves = strategy.decide(decision_view, step)
            legacy_moves = _legacy_decide(
                assignment, topology, times, config, view=view
            )
            assert seam_moves == legacy_moves
            for move in seam_moves:
                assignment.transfer(move.cell, move.dst)

    def test_default_run_digest_unchanged_by_explicit_permanent(
        self, monkeypatch
    ):
        """``balancer=None`` and ``balancer='permanent'`` are the same run.

        The *true* default, that is — a REPRO_BALANCER matrix leg rebinds
        what None resolves to, so clear it for this comparison.
        """
        monkeypatch.delenv("REPRO_BALANCER", raising=False)
        run = RunConfig(steps=5, seed=5)
        base = api.simulate(fig5_config(), run=run)
        explicit = api.simulate(fig5_config(), run=run, balancer="permanent")
        assert explicit.digest() == base.digest()
        assert base.meta["balancer"] == "permanent"
        assert explicit.meta["balancer"] == "permanent"

    def test_permanent_digest_matches_across_engines(self, monkeypatch):
        """Engine backends agree with each other, and the explicit balancer
        selection does not perturb either the engine or the classic path
        (engines use a different force pipeline than the classic runner, so
        the two families digest differently by design)."""
        monkeypatch.delenv("REPRO_BALANCER", raising=False)
        run = RunConfig(steps=4, seed=5, balancer="permanent")
        run_default = RunConfig(steps=4, seed=5)
        seq = api.simulate(fig5_config(), run=run, engine="sequential")
        par = api.simulate(
            fig5_config(), run=run, engine="multiprocess", engine_workers=2
        )
        seq_default = api.simulate(fig5_config(), run=run_default,
                                   engine="sequential")
        assert par.digest() == seq.digest()
        assert seq.digest() == seq_default.digest()

    def test_kill_and_resume_lands_on_uninterrupted_digest(self, tmp_path):
        run = RunConfig(steps=6, seed=9, balancer="permanent")
        full = api.simulate(fig5_config(), run=run)
        api.simulate(
            fig5_config(),
            run=run,
            checkpoints=api.CheckpointPolicy(directory=tmp_path, every=2),
            stop_after=2,
        )
        resumed = api.simulate(
            fig5_config(),
            run=run,
            checkpoints=api.CheckpointPolicy(directory=tmp_path, resume=True),
        )
        assert resumed.meta["resumed_at"] == 2
        assert resumed.digest() == full.digest()

    def test_digest_unchanged_under_faults(self, monkeypatch):
        """Fault injection exercises the timing-view branch of the seam."""
        from repro.faults import FaultPlan, TimingFaultRule

        monkeypatch.delenv("REPRO_BALANCER", raising=False)
        plan = FaultPlan(seed=11, timing=TimingFaultRule(drop=0.3, max_staleness=2))
        run = RunConfig(steps=6, seed=7)
        base = api.simulate(fig5_config(), run=run, faults=plan)
        explicit = api.simulate(
            fig5_config(), run=run, balancer="permanent", faults=plan
        )
        assert explicit.digest() == base.digest()


def _run_strategy_rounds(strategy_name, rounds=20, nc=9, n_pes=9, seed=4,
                         **config_kwargs):
    """Drive one strategy over random timing snapshots; returns the balancer."""
    rng = np.random.default_rng(seed)
    assignment = CellAssignment(nc, n_pes)
    balancer = create_balancer(
        assignment, DLBConfig(**config_kwargs), strategy=strategy_name
    )
    total_moves = 0
    counts = rng.poisson(2.0, nc * nc * nc).astype(np.int64)
    for step in range(rounds):
        times = rng.uniform(0.1, 2.0, n_pes)
        moves = balancer.step(times, step=step, counts=counts)
        total_moves += len(moves)
    return assignment, balancer, total_moves


class TestRivalStrategies:
    @pytest.mark.parametrize("strategy", ["diffusion", "sfc"])
    def test_rivals_conserve_ownership_and_move_cells(self, strategy):
        assignment, _, total_moves = _run_strategy_rounds(strategy)
        assert total_moves > 0, f"{strategy} never moved a cell"
        # Ownership conservation: every cell exactly one holder, in range.
        assert assignment.holder.shape == (assignment.n_cells,)
        assert np.all(assignment.holder >= 0)
        assert np.all(assignment.holder < assignment.n_pes)
        counts = assignment.cell_counts_per_pe()
        assert int(counts.sum()) == assignment.n_cells

    @pytest.mark.parametrize("strategy", ["diffusion", "sfc"])
    def test_rivals_pass_relaxed_auditor(self, strategy):
        assignment, _, _ = _run_strategy_rounds(strategy)
        auditor = InvariantAuditor(assignment, strategy=strategy)
        assert auditor.audit(step=0) == []

    def test_rival_assignment_would_fail_strict_auditor(self):
        """The relaxation is real: diffusion's holder map violates the
        permanent-cell invariants a strict (permanent) auditor enforces."""
        assignment, _, _ = _run_strategy_rounds("diffusion", rounds=30)
        strict = InvariantAuditor(assignment, strategy="permanent", policy="log")
        assert strict.audit(step=0) != []

    def test_permanent_keeps_strict_auditor_green(self):
        assignment, _, _ = _run_strategy_rounds("permanent", rounds=30)
        auditor = InvariantAuditor(assignment, strategy="permanent")
        assert auditor.audit(step=0) == []
        # Permanent cells literally never migrated.
        pinned = assignment.permanent
        assert np.array_equal(
            assignment.holder[pinned], assignment.home[pinned]
        )

    def test_none_never_moves(self):
        assignment, balancer, total_moves = _run_strategy_rounds("none")
        assert total_moves == 0
        assert np.array_equal(assignment.holder, assignment.home)
        assert balancer.stats.moves_total == 0

    def test_sfc_degrades_to_uniform_weights_without_counts(self):
        rng = np.random.default_rng(8)
        assignment = CellAssignment(9, 9)
        balancer = create_balancer(assignment, strategy="sfc")
        moves = balancer.decide(rng.uniform(0.1, 2.0, 9))
        assert isinstance(moves, list)  # no counts: geometry-only cut

    def test_sfc_balances_clustered_counts(self):
        """The curve cut reacts to weight: a clustered occupancy ends with
        a flatter per-PE particle distribution than the home assignment."""
        rng = np.random.default_rng(9)
        nc, n_pes = 9, 9
        assignment = CellAssignment(nc, n_pes)
        counts = np.zeros(nc * nc * nc, dtype=np.int64)
        # All particles piled into PE 0's home cells.
        counts[np.flatnonzero(assignment.home == 0)] = 50
        balancer = create_balancer(assignment, DLBConfig(max_sends_per_step=8),
                                   strategy="sfc")
        for step in range(15):
            balancer.step(rng.uniform(0.9, 1.1, n_pes), step=step, counts=counts)
        per_pe = np.zeros(n_pes)
        np.add.at(per_pe, assignment.holder, counts)
        assert per_pe.max() < counts.sum()  # the pile is no longer one PE's


class TestSelectionPlumbing:
    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_BALANCER", "diffusion")
        # Explicit beats env; env beats default; default is permanent.
        assert resolve_balancer_name("sfc") == "sfc"
        assert resolve_balancer_name(None) == "diffusion"
        monkeypatch.delenv("REPRO_BALANCER")
        assert resolve_balancer_name(None) == "permanent"
        assert resolve_balancer_name("auto") == "permanent"

    def test_bad_env_value_is_actionable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BALANCER", "magic")
        with pytest.raises(ConfigurationError, match="REPRO_BALANCER"):
            resolve_balancer_name(None)

    def test_env_selects_strategy_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_BALANCER", "none")
        result = api.simulate(fig5_config(), run=RunConfig(steps=3, seed=5))
        assert result.meta["balancer"] == "none"
        assert result.summary()["total_moves"] == 0

    def test_config_field_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BALANCER", "none")
        result = api.simulate(
            fig5_config(), run=RunConfig(steps=3, seed=5, balancer="permanent")
        )
        assert result.meta["balancer"] == "permanent"

    def test_simulate_keyword_beats_config_default(self):
        result = api.simulate(
            fig5_config(), run=RunConfig(steps=3, seed=5), balancer="none"
        )
        assert result.meta["balancer"] == "none"

    def test_direct_construction_warns_and_stays_permanent(self, monkeypatch):
        monkeypatch.setenv("REPRO_BALANCER", "sfc")
        with pytest.warns(DeprecationWarning, match="create_balancer"):
            balancer = DynamicLoadBalancer(CellAssignment(9, 9))
        assert balancer.strategy_name == "permanent"

    def test_factory_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            balancer = create_balancer(CellAssignment(9, 9))
        # The factory honours the environment (unlike the deprecated direct
        # constructor), so under a REPRO_BALANCER test matrix this resolves
        # to whatever the matrix leg selected.
        assert balancer.strategy_name == resolve_balancer_name(None)

    def test_register_strategy_extends_the_registry(self):
        class Lazy(Balancer):
            name = "lazy"

            def decide(self, view, step=0):
                return []

        register_strategy("lazy", Lazy)
        try:
            assert "lazy" in available()
            # The registry accepts it even though the config-level name
            # validation does not: custom strategies are a library-level
            # extension point, reached via create_balancer(strategy=...).
            balancer = DynamicLoadBalancer(
                CellAssignment(9, 9), strategy=Lazy(), _from_factory=True
            )
            assert balancer.strategy_name == "lazy"
        finally:
            from repro.dlb import strategies as _mod

            _mod._REGISTRY.pop("lazy", None)


class TestStateAndCheckpoints:
    def test_state_dict_carries_strategy_identity(self):
        balancer = create_balancer(CellAssignment(9, 9), strategy="diffusion")
        state = balancer.state_dict()
        assert state["strategy"] == {"name": "diffusion", "state": {}}

    def test_strategy_mismatch_on_restore_is_actionable(self):
        source = create_balancer(CellAssignment(9, 9), strategy="diffusion")
        target = create_balancer(CellAssignment(9, 9), strategy="permanent")
        with pytest.raises(ConfigurationError, match="--balancer diffusion"):
            target.load_state_dict(source.state_dict())

    def test_pre_seam_checkpoint_without_strategy_key_restores(self):
        source = create_balancer(CellAssignment(9, 9), strategy="permanent")
        state = source.state_dict()
        del state["strategy"]  # what a pre-seam snapshot looks like
        target = create_balancer(CellAssignment(9, 9), strategy="permanent")
        target.load_state_dict(state)
        assert target.stats.steps == 0

    def test_resume_under_different_balancer_refuses(self, tmp_path):
        """The balancer is part of the config token: a snapshot taken under
        one strategy refuses to resume under another (the refusal is the
        token mismatch -- it fires before any state is touched)."""
        from repro.errors import CheckpointError

        api.simulate(
            fig5_config(),
            run=RunConfig(steps=6, seed=9, balancer="diffusion"),
            checkpoints=api.CheckpointPolicy(directory=tmp_path, every=2),
            stop_after=2,
        )
        with pytest.raises(CheckpointError, match="different configuration"):
            api.simulate(
                fig5_config(),
                run=RunConfig(steps=6, seed=9, balancer="sfc"),
                checkpoints=api.CheckpointPolicy(directory=tmp_path, resume=True),
            )

    @pytest.mark.parametrize("strategy", ["diffusion", "sfc", "none"])
    def test_rival_kill_and_resume_matches_uninterrupted(self, strategy, tmp_path):
        run = RunConfig(steps=6, seed=9, balancer=strategy)
        full = api.simulate(fig5_config(), run=run)
        api.simulate(
            fig5_config(),
            run=run,
            checkpoints=api.CheckpointPolicy(directory=tmp_path, every=2),
            stop_after=2,
        )
        resumed = api.simulate(
            fig5_config(),
            run=run,
            checkpoints=api.CheckpointPolicy(directory=tmp_path, resume=True),
        )
        assert resumed.meta["balancer"] == strategy
        assert resumed.digest() == full.digest()


class TestRunMetadata:
    @pytest.mark.parametrize("strategy", ["permanent", "diffusion", "sfc", "none"])
    def test_meta_stamps_resolved_strategy(self, strategy):
        result = api.simulate(
            fig5_config(), run=RunConfig(steps=3, seed=5), balancer=strategy
        )
        assert result.meta["balancer"] == strategy

    def test_run_start_event_records_balancer(self):
        from repro.obs import EventLog, Observability

        observability = Observability(events=EventLog())
        api.simulate(
            fig5_config(),
            run=RunConfig(steps=3, seed=5, record_interval=1),
            balancer="diffusion",
            observability=observability,
        )
        start = observability.events.records[0]
        assert start["kind"] == "run.start"
        assert start["dlb"]["balancer"] == "diffusion"
